//! Distributed predictor encodings: the shared-hysteresis skewed
//! predictor.
//!
//! The paper's section 7 asks: *"In our simulations we adopted the
//! standard 2-bit predictor encodings and simply replicated them across 3
//! banks. Do there exist alternative 'distributed' predictor encodings
//! that are more space efficient, and more robust against aliasing?"*
//!
//! This module answers with the design the Alpha EV8 team eventually
//! shipped: split each 2-bit counter into its *direction* bit and its
//! *hysteresis* bit, and let **two adjacent entries of a bank share one
//! hysteresis bit**. A 3-bank predictor then costs
//! `3·(2^n + 2^(n-1)) = 4.5·2^n` bits instead of `6·2^n` — a 25 % saving
//! — while the majority vote still operates on three independently
//! indexed direction bits.
//!
//! Semantics: the logical 2-bit counter of bank `i` at index `x` is
//! `(direction_i[x], hysteresis_i[x >> 1])`. Training applies the
//! standard saturating-counter transition to that pair and writes both
//! halves back; entry pairs interfere only through the low-order
//! hysteresis half (the space/robustness tradeoff the question
//! anticipates).

use crate::counter::CounterKind;
use crate::error::ConfigError;
use crate::gskew::UpdatePolicy;
use crate::history::GlobalHistory;
use crate::predictor::{BranchPredictor, Outcome, Prediction};
use crate::skew::skew_index;
use crate::vector::InfoVector;

/// Bit-vector table of single bits (direction or hysteresis).
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitTable {
    bits: Vec<bool>,
}

impl BitTable {
    fn new(entries_log2: u32, initial: bool) -> Self {
        BitTable {
            bits: vec![initial; 1 << entries_log2],
        }
    }

    #[inline]
    fn get(&self, idx: u64) -> bool {
        self.bits[idx as usize & (self.bits.len() - 1)]
    }

    #[inline]
    fn set(&mut self, idx: u64, value: bool) {
        let len = self.bits.len();
        self.bits[idx as usize & (len - 1)] = value;
    }

    fn reset(&mut self, initial: bool) {
        self.bits.fill(initial);
    }
}

/// Apply one 2-bit saturating-counter step to a (direction, hysteresis)
/// pair. Encoding: value = direction*2 + hysteresis, so 0..=1 predict
/// not-taken, 2..=3 predict taken, exactly like [`crate::counter`].
#[inline]
fn step(direction: bool, hysteresis: bool, outcome: Outcome) -> (bool, bool) {
    let value = (u8::from(direction) << 1) | u8::from(hysteresis);
    let next = match outcome {
        Outcome::Taken => (value + 1).min(3),
        Outcome::NotTaken => value.saturating_sub(1),
    };
    (next & 0b10 != 0, next & 0b01 != 0)
}

/// A 3-bank skewed predictor with per-bank direction bits and half-size
/// hysteresis tables (one hysteresis bit per pair of direction entries).
///
/// ```
/// use bpred_core::distributed::SharedHysteresisGskew;
/// use bpred_core::predictor::{BranchPredictor, Outcome};
///
/// let mut p = SharedHysteresisGskew::new(12, 8)?;
/// // Per bank: 4K direction bits + 2K hysteresis bits:
/// assert_eq!(p.storage_bits(), 3 * (4096 + 2048));
/// let _ = p.predict(0x1000);
/// p.update(0x1000, Outcome::Taken);
/// # Ok::<(), bpred_core::error::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedHysteresisGskew {
    direction: Vec<BitTable>,
    hysteresis: Vec<BitTable>,
    history: GlobalHistory,
    n: u32,
    policy: UpdatePolicy,
}

impl SharedHysteresisGskew {
    /// Three `2^entries_log2`-bit direction banks, each with a half-size
    /// hysteresis table (one bit per entry pair), partial update.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `entries_log2` is out of `2..=30` or
    /// `history_bits` exceeds 64.
    pub fn new(entries_log2: u32, history_bits: u32) -> Result<Self, ConfigError> {
        Self::with_policy(entries_log2, history_bits, UpdatePolicy::Partial)
    }

    /// As [`SharedHysteresisGskew::new`] with an explicit update policy.
    ///
    /// # Errors
    ///
    /// See [`SharedHysteresisGskew::new`].
    pub fn with_policy(
        entries_log2: u32,
        history_bits: u32,
        policy: UpdatePolicy,
    ) -> Result<Self, ConfigError> {
        if !(2..=30).contains(&entries_log2) {
            return Err(ConfigError::invalid(
                "entries_log2",
                entries_log2,
                "must be in 2..=30",
            ));
        }
        if history_bits > 64 {
            return Err(ConfigError::invalid(
                "history_bits",
                history_bits,
                "must be at most 64",
            ));
        }
        Ok(SharedHysteresisGskew {
            // Boot weakly taken: direction 1, hysteresis 0 (value 2).
            direction: (0..3).map(|_| BitTable::new(entries_log2, true)).collect(),
            hysteresis: (0..3)
                .map(|_| BitTable::new(entries_log2 - 1, false))
                .collect(),
            history: GlobalHistory::new(history_bits),
            n: entries_log2,
            policy,
        })
    }

    #[inline]
    fn indices(&self, pc: u64) -> [u64; 3] {
        let packed = InfoVector::new(pc, self.history.value(), self.history.len()).packed();
        [
            skew_index(0, packed, self.n),
            skew_index(1, packed, self.n),
            skew_index(2, packed, self.n),
        ]
    }

    /// The counter kind this structure emulates.
    pub fn counter_kind(&self) -> CounterKind {
        CounterKind::TwoBit
    }
}

impl BranchPredictor for SharedHysteresisGskew {
    fn predict(&mut self, pc: u64) -> Prediction {
        let idx = self.indices(pc);
        let taken = (0..3).filter(|&b| self.direction[b].get(idx[b])).count();
        Prediction::of(Outcome::from(taken >= 2))
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        let idx = self.indices(pc);
        let votes: Vec<bool> = (0..3).map(|b| self.direction[b].get(idx[b])).collect();
        let overall = Outcome::from(votes.iter().filter(|&&v| v).count() >= 2);
        for bank in 0..3 {
            let vote = Outcome::from(votes[bank]);
            let train = match self.policy {
                UpdatePolicy::Total => true,
                UpdatePolicy::Partial => overall != outcome || vote == outcome,
            };
            if !train {
                continue;
            }
            // Two adjacent direction entries share one hysteresis bit.
            let hyst_idx = idx[bank] >> 1;
            let (dir, hyst) = step(votes[bank], self.hysteresis[bank].get(hyst_idx), outcome);
            self.direction[bank].set(idx[bank], dir);
            self.hysteresis[bank].set(hyst_idx, hyst);
        }
        self.history.push(outcome);
    }

    fn record_unconditional(&mut self, _pc: u64) {
        self.history.push(Outcome::Taken);
    }

    fn name(&self) -> String {
        format!(
            "shgskew 3x{}+{}hyst h={} {}",
            1u64 << self.n,
            1u64 << (self.n - 1),
            self.history.len(),
            self.policy
        )
    }

    fn storage_bits(&self) -> u64 {
        // Per bank: 2^n direction bits + 2^(n-1) hysteresis bits.
        3 * ((1u64 << self.n) + (1u64 << (self.n - 1)))
    }

    fn reset(&mut self) {
        for table in &mut self.direction {
            table.reset(true);
        }
        for table in &mut self.hysteresis {
            table.reset(false);
        }
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_step_matches_sat_counter() {
        use crate::counter::SatCounter;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut reference = SatCounter::new(CounterKind::TwoBit);
        // Start the pair at the reference's boot value (1 = weakly NT):
        let (mut dir, mut hyst) = (false, true);
        for _ in 0..200 {
            let outcome = Outcome::from(rng.gen_bool(0.5));
            reference.train(outcome);
            let (d, h) = step(dir, hyst, outcome);
            dir = d;
            hyst = h;
            let value = (u8::from(dir) << 1) | u8::from(hyst);
            assert_eq!(value, reference.value(), "pair encoding diverged");
        }
    }

    #[test]
    fn learns_biased_branches() {
        let mut p = SharedHysteresisGskew::new(8, 4).unwrap();
        for _ in 0..16 {
            p.update(0x1000, Outcome::Taken);
            p.update(0x2000, Outcome::NotTaken);
        }
        // Predict under whatever history remains: retrain-free check via
        // a couple more rounds with prediction sampling.
        let mut right = 0;
        for _ in 0..16 {
            right += u32::from(p.predict(0x1000).outcome == Outcome::Taken);
            p.update(0x1000, Outcome::Taken);
            right += u32::from(p.predict(0x2000).outcome == Outcome::NotTaken);
            p.update(0x2000, Outcome::NotTaken);
        }
        assert!(right >= 28, "got {right}/32");
    }

    #[test]
    fn storage_is_three_quarters_of_full_2bit() {
        let shared = SharedHysteresisGskew::new(12, 8).unwrap();
        let full = crate::gskew::Gskew::standard(12, 8).unwrap();
        assert_eq!(shared.storage_bits() * 4, full.storage_bits() * 3);
    }

    #[test]
    fn boots_weakly_taken() {
        let mut p = SharedHysteresisGskew::new(8, 4).unwrap();
        assert_eq!(p.predict(0x1234).outcome, Outcome::Taken);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut p = SharedHysteresisGskew::new(8, 4).unwrap();
        for i in 0..200u64 {
            p.update(0x1000 + 4 * (i % 11), Outcome::from(i % 2 == 0));
        }
        p.reset();
        assert_eq!(p, SharedHysteresisGskew::new(8, 4).unwrap());
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(SharedHysteresisGskew::new(1, 4).is_err());
        assert!(SharedHysteresisGskew::new(8, 65).is_err());
    }

    #[test]
    fn policy_is_respected() {
        let partial = SharedHysteresisGskew::new(8, 4).unwrap();
        let total = SharedHysteresisGskew::with_policy(8, 4, UpdatePolicy::Total).unwrap();
        assert!(partial.name().contains("partial"));
        assert!(total.name().contains("total"));
    }
}
