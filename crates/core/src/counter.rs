//! Saturating prediction counters and flat counter tables.
//!
//! The paper studies both 1-bit automatons (last-outcome) and the classic
//! 2-bit saturating counter (Smith, 1981). [`SatCounter`] is the value-level
//! automaton; [`CounterTable`] is the dense array of such automatons that
//! backs every tag-less predictor bank in this crate.

use crate::predictor::Outcome;
use std::fmt;

/// The width of the per-entry prediction automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CounterKind {
    /// A 1-bit automaton: predict the last outcome.
    OneBit,
    /// The classic 2-bit saturating counter.
    TwoBit,
    /// A saturating counter of arbitrary width (3..=7 bits).
    ///
    /// Wider counters are hypothesized in the paper's "distributed predictor
    /// encodings" future-work question; they are provided so that the
    /// ablation harness can sweep counter width.
    Wide(u8),
}

impl CounterKind {
    /// Number of state bits per counter.
    #[inline]
    pub fn bits(self) -> u8 {
        match self {
            CounterKind::OneBit => 1,
            CounterKind::TwoBit => 2,
            CounterKind::Wide(b) => b,
        }
    }

    /// Largest representable counter value (`2^bits - 1`).
    #[inline]
    pub fn max_value(self) -> u8 {
        ((1u16 << self.bits()) - 1) as u8
    }

    /// The conventional weakly-not-taken initial value (`max/2`, i.e. the
    /// highest state that still predicts not-taken).
    #[inline]
    pub fn neutral(self) -> u8 {
        self.max_value() >> 1
    }

    /// The lowest value that predicts taken (weakly taken).
    #[inline]
    pub fn weakly_taken(self) -> u8 {
        self.neutral() + 1
    }

    /// Construct a kind from a bit width.
    ///
    /// # Errors
    ///
    /// Returns `None` when `bits` is 0 or larger than 7.
    pub fn from_bits(bits: u8) -> Option<CounterKind> {
        match bits {
            1 => Some(CounterKind::OneBit),
            2 => Some(CounterKind::TwoBit),
            3..=7 => Some(CounterKind::Wide(bits)),
            _ => None,
        }
    }
}

impl fmt::Display for CounterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

/// A single saturating up/down counter.
///
/// The counter predicts taken when its value is in the upper half of its
/// range (most-significant bit set). On a taken outcome it increments,
/// saturating at `2^bits - 1`; on a not-taken outcome it decrements,
/// saturating at 0.
///
/// ```
/// use bpred_core::counter::{CounterKind, SatCounter};
/// use bpred_core::predictor::Outcome;
///
/// let mut c = SatCounter::new(CounterKind::TwoBit);
/// assert_eq!(c.predict(), Outcome::NotTaken); // starts weakly not-taken
/// c.train(Outcome::Taken);
/// assert_eq!(c.predict(), Outcome::Taken);    // now weakly taken
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    kind: CounterKind,
    value: u8,
}

impl SatCounter {
    /// A counter initialized to the weakly-not-taken neutral state.
    #[inline]
    pub fn new(kind: CounterKind) -> Self {
        SatCounter {
            kind,
            value: kind.neutral(),
        }
    }

    /// A counter whose initial state immediately predicts `outcome` weakly.
    ///
    /// Used by the tagged predictors when allocating an entry for a freshly
    /// seen substream.
    #[inline]
    pub fn seeded(kind: CounterKind, outcome: Outcome) -> Self {
        let value = match outcome {
            Outcome::Taken => kind.weakly_taken(),
            Outcome::NotTaken => kind.neutral(),
        };
        SatCounter { kind, value }
    }

    /// The automaton width.
    #[inline]
    pub fn kind(&self) -> CounterKind {
        self.kind
    }

    /// The raw counter value.
    #[inline]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// The direction this counter currently predicts.
    #[inline]
    pub fn predict(&self) -> Outcome {
        Outcome::from(self.value > self.kind.neutral())
    }

    /// Train the counter with an observed outcome.
    #[inline]
    pub fn train(&mut self, outcome: Outcome) {
        self.value = step(self.value, self.kind.max_value(), outcome);
    }

    /// `true` when the counter is saturated in the direction it predicts
    /// (strongly taken or strongly not-taken).
    #[inline]
    pub fn is_strong(&self) -> bool {
        self.value == 0 || self.value == self.kind.max_value()
    }
}

impl Default for SatCounter {
    fn default() -> Self {
        SatCounter::new(CounterKind::TwoBit)
    }
}

#[inline]
fn step(value: u8, max: u8, outcome: Outcome) -> u8 {
    match outcome {
        Outcome::Taken => {
            if value < max {
                value + 1
            } else {
                value
            }
        }
        Outcome::NotTaken => value.saturating_sub(1),
    }
}

/// A dense, power-of-two-sized array of saturating counters.
///
/// This is the storage of one tag-less predictor bank. Counters are stored
/// as bytes for simulation speed; [`CounterTable::storage_bits`] reports the
/// hardware cost (`entries * kind.bits()`).
///
/// Fresh tables boot in the *weakly taken* state: a cold tag-less
/// predictor then behaves like the static always-taken predictor the
/// paper uses as its miss fallback, instead of pessimistically predicting
/// not-taken for every unseen branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterTable {
    kind: CounterKind,
    mask: u64,
    cells: Vec<u8>,
}

impl CounterTable {
    /// Create a table of `2^entries_log2` counters, all weakly taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries_log2 > 30` (a 1-Gi-entry table is assumed to be a
    /// configuration mistake).
    pub fn new(entries_log2: u32, kind: CounterKind) -> Self {
        assert!(
            entries_log2 <= 30,
            "counter table of 2^{entries_log2} entries is unreasonably large"
        );
        let len = 1usize << entries_log2;
        CounterTable {
            kind,
            mask: (len as u64) - 1,
            cells: vec![kind.weakly_taken(); len],
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always `false`: tables have at least one entry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `log2` of the number of entries.
    #[inline]
    pub fn entries_log2(&self) -> u32 {
        self.cells.len().trailing_zeros()
    }

    /// The automaton width used by every entry.
    #[inline]
    pub fn kind(&self) -> CounterKind {
        self.kind
    }

    /// Predict from entry `index` (wrapped into range).
    #[inline]
    pub fn predict(&self, index: u64) -> Outcome {
        let v = self.cells[(index & self.mask) as usize];
        Outcome::from(v > self.kind.neutral())
    }

    /// Train entry `index` with `outcome`.
    #[inline]
    pub fn train(&mut self, index: u64, outcome: Outcome) {
        let cell = &mut self.cells[(index & self.mask) as usize];
        *cell = step(*cell, self.kind.max_value(), outcome);
    }

    /// Raw value of entry `index`, for tests and diagnostics.
    #[inline]
    pub fn value(&self, index: u64) -> u8 {
        self.cells[(index & self.mask) as usize]
    }

    /// Overwrite entry `index` with a raw value, saturating to the legal
    /// range. Intended for tests and for seeding experiments.
    #[inline]
    pub fn set_value(&mut self, index: u64, value: u8) {
        self.cells[(index & self.mask) as usize] = value.min(self.kind.max_value());
    }

    /// Hardware storage cost in bits.
    #[inline]
    pub fn storage_bits(&self) -> u64 {
        self.cells.len() as u64 * u64::from(self.kind.bits())
    }

    /// Reset every entry to the boot (weakly taken) state.
    pub fn reset(&mut self) {
        self.cells.fill(self.kind.weakly_taken());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_bit_accounting() {
        assert_eq!(CounterKind::OneBit.bits(), 1);
        assert_eq!(CounterKind::TwoBit.bits(), 2);
        assert_eq!(CounterKind::Wide(5).bits(), 5);
        assert_eq!(CounterKind::OneBit.max_value(), 1);
        assert_eq!(CounterKind::TwoBit.max_value(), 3);
        assert_eq!(CounterKind::TwoBit.neutral(), 1);
        assert_eq!(CounterKind::TwoBit.weakly_taken(), 2);
    }

    #[test]
    fn kind_from_bits_bounds() {
        assert_eq!(CounterKind::from_bits(0), None);
        assert_eq!(CounterKind::from_bits(1), Some(CounterKind::OneBit));
        assert_eq!(CounterKind::from_bits(2), Some(CounterKind::TwoBit));
        assert_eq!(CounterKind::from_bits(3), Some(CounterKind::Wide(3)));
        assert_eq!(CounterKind::from_bits(8), None);
    }

    #[test]
    fn one_bit_counter_tracks_last_outcome() {
        let mut c = SatCounter::new(CounterKind::OneBit);
        for &o in &[
            Outcome::Taken,
            Outcome::NotTaken,
            Outcome::Taken,
            Outcome::Taken,
            Outcome::NotTaken,
        ] {
            c.train(o);
            assert_eq!(c.predict(), o, "1-bit predicts exactly the last outcome");
        }
    }

    #[test]
    fn two_bit_counter_hysteresis() {
        // A loop branch: taken many times, then one exit. The 2-bit counter
        // should still predict taken on the next loop entry; 1-bit flips.
        let mut two = SatCounter::new(CounterKind::TwoBit);
        let mut one = SatCounter::new(CounterKind::OneBit);
        for _ in 0..10 {
            two.train(Outcome::Taken);
            one.train(Outcome::Taken);
        }
        two.train(Outcome::NotTaken);
        one.train(Outcome::NotTaken);
        assert_eq!(two.predict(), Outcome::Taken, "hysteresis retained");
        assert_eq!(one.predict(), Outcome::NotTaken, "1-bit flipped");
    }

    #[test]
    fn counter_saturates_at_both_ends() {
        let mut c = SatCounter::new(CounterKind::TwoBit);
        for _ in 0..100 {
            c.train(Outcome::Taken);
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_strong());
        for _ in 0..100 {
            c.train(Outcome::NotTaken);
        }
        assert_eq!(c.value(), 0);
        assert!(c.is_strong());
    }

    #[test]
    fn seeded_counter_predicts_seed() {
        let t = SatCounter::seeded(CounterKind::TwoBit, Outcome::Taken);
        assert_eq!(t.predict(), Outcome::Taken);
        assert!(!t.is_strong(), "seed is weak");
        let n = SatCounter::seeded(CounterKind::TwoBit, Outcome::NotTaken);
        assert_eq!(n.predict(), Outcome::NotTaken);
    }

    #[test]
    fn table_indexing_wraps() {
        let mut t = CounterTable::new(4, CounterKind::TwoBit);
        assert_eq!(t.len(), 16);
        t.train(3, Outcome::Taken);
        t.train(3 + 16, Outcome::Taken); // same entry modulo table size
        assert_eq!(t.predict(3), Outcome::Taken);
        assert_eq!(t.value(3), 3.min(t.kind().max_value()));
    }

    #[test]
    fn table_storage_bits() {
        let t = CounterTable::new(12, CounterKind::TwoBit);
        assert_eq!(t.storage_bits(), 4096 * 2);
        let t = CounterTable::new(10, CounterKind::OneBit);
        assert_eq!(t.storage_bits(), 1024);
    }

    #[test]
    fn table_boots_and_resets_weakly_taken() {
        let mut t = CounterTable::new(4, CounterKind::TwoBit);
        for i in 0..16 {
            assert_eq!(t.predict(i), Outcome::Taken, "cold table predicts taken");
            t.train(i, Outcome::NotTaken);
            t.train(i, Outcome::NotTaken);
        }
        t.reset();
        for i in 0..16 {
            assert_eq!(t.value(i), CounterKind::TwoBit.weakly_taken());
        }
    }

    #[test]
    fn wide_counter_range() {
        let mut c = SatCounter::new(CounterKind::Wide(4));
        assert_eq!(c.value(), 7);
        for _ in 0..20 {
            c.train(Outcome::Taken);
        }
        assert_eq!(c.value(), 15);
        c.train(Outcome::NotTaken);
        assert_eq!(c.value(), 14);
        assert_eq!(c.predict(), Outcome::Taken);
    }
}
