//! # bpred-core — conditional branch predictors, including the skewed branch predictor
//!
//! This crate implements the primary contribution of Michaud, Seznec and
//! Uhlig, *"Trading Conflict and Capacity Aliasing in Conditional Branch
//! Predictors"* (ISCA 1997): the **skewed branch predictor** (`gskew`) and
//! its **enhanced** variant (`e-gskew`), together with every reference
//! predictor the paper compares against and the building blocks they share.
//!
//! ## Layout
//!
//! * [`counter`] — 1-bit, 2-bit and n-bit saturating prediction counters and
//!   the flat [`counter::CounterTable`] used by all tag-less predictors.
//! * [`history`] — the global branch history register.
//! * [`index`] — the classic tag-less index functions: bimodal bit
//!   truncation, *gshare* (XOR, with the paper's footnote-1 alignment rule)
//!   and *gselect* (concatenation).
//! * [`skew`] — the inter-bank dispersion functions `H`, `H⁻¹` and
//!   `f0`,`f1`,`f2` from the skewed-associative cache work, generalized to
//!   five banks.
//! * [`predictor`] — the [`predictor::BranchPredictor`] trait and shared
//!   plumbing.
//! * [`bimodal`], [`gshare`], [`gselect`] — single-bank reference schemes.
//! * [`gskew`] — the skewed branch predictor (section 4 of the paper) and
//!   the enhanced skewed branch predictor (section 6), with total and
//!   partial update policies.
//! * [`ideal`] — the infinite, unaliased predictor of section 3.1.
//! * [`assoc`] — tagged fully-associative (LRU) and set-associative
//!   predictor tables (section 3.3's "costly" alternative, used as the
//!   capacity-aliasing yardstick in figure 8).
//! * [`hybrid`] — McFarling-style combining predictor and the
//!   2bc-gskew arrangement (the paper's "future work", later the Alpha EV8
//!   predictor).
//! * [`agree`], [`bimode`] — the two contemporary anti-aliasing designs
//!   (Sprangle et al., ISCA'97; Lee et al., MICRO'97), included as
//!   comparison points in the same design space.
//! * [`pas`] — per-address two-level prediction and its skewed variant
//!   (section 7's "the same technique could be applied to per-address
//!   history schemes").
//! * [`distributed`] — the shared-hysteresis skewed predictor, answering
//!   section 7's "distributed predictor encodings" question with the
//!   split-counter design the Alpha EV8 later shipped.
//! * [`spec`] — textual predictor specifications (`"gskew:n=12,h=8"`)
//!   used by the CLI and experiment harness.
//!
//! ## Quick start
//!
//! ```
//! use bpred_core::prelude::*;
//!
//! // A 3x1K-entry skewed predictor, 8 bits of global history,
//! // 2-bit counters, partial update.
//! let mut pred = Gskew::builder()
//!     .bank_entries_log2(10)
//!     .history_bits(8)
//!     .build()
//!     .expect("valid configuration");
//!
//! // Drive it: predict, then reveal the outcome.
//! let pc = 0x4000_1000;
//! let p = pred.predict(pc);
//! pred.update(pc, Outcome::Taken);
//! assert!(matches!(p.outcome, Outcome::Taken | Outcome::NotTaken));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agree;
pub mod assoc;
pub mod bimodal;
pub mod bimode;
pub mod counter;
pub mod distributed;
pub mod error;
pub mod gselect;
pub mod gshare;
pub mod gskew;
pub mod history;
pub mod hybrid;
pub mod ideal;
pub mod index;
mod onebank;
pub mod pas;
pub mod predictor;
pub mod skew;
pub mod spec;
pub mod statics;
pub mod vector;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::agree::Agree;
    pub use crate::assoc::{FullyAssociative, SetAssociative};
    pub use crate::bimodal::Bimodal;
    pub use crate::bimode::BiMode;
    pub use crate::counter::{CounterKind, CounterTable, SatCounter};
    pub use crate::distributed::SharedHysteresisGskew;
    pub use crate::error::ConfigError;
    pub use crate::gselect::Gselect;
    pub use crate::gshare::Gshare;
    pub use crate::gskew::{Gskew, GskewBuilder, UpdatePolicy};
    pub use crate::history::GlobalHistory;
    pub use crate::hybrid::{McFarling, TwoBcGskew};
    pub use crate::ideal::Ideal;
    pub use crate::index::IndexFunction;
    pub use crate::pas::{Pas, SkewedPas};
    pub use crate::predictor::{BranchPredictor, Outcome, Prediction};
    pub use crate::spec::parse_spec;
    pub use crate::statics::{AlwaysNotTaken, AlwaysTaken};
    pub use crate::vector::InfoVector;
}

pub use predictor::{BranchPredictor, Outcome, Prediction};
