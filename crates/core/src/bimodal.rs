//! The bimodal predictor: one table of counters indexed by the branch
//! address alone (Smith, 1981; the `address mod 2^n` scheme).

use crate::counter::CounterKind;
use crate::error::ConfigError;
use crate::index::IndexFunction;
use crate::onebank::OneBank;
use crate::predictor::{BranchPredictor, Outcome, Prediction};

/// A direct-mapped, tag-less table of saturating counters indexed by the
/// low-order branch address bits.
///
/// This is the `h = 0` degenerate point of the history-length sweeps
/// (figures 7 and 12), and the address-indexed bank 0 of the enhanced
/// skewed predictor uses the same indexing.
///
/// ```
/// use bpred_core::prelude::*;
///
/// let mut p = Bimodal::new(10, CounterKind::TwoBit)?;
/// let pc = 0x400;
/// p.update(pc, Outcome::Taken);
/// p.update(pc, Outcome::Taken);
/// assert_eq!(p.predict(pc).outcome, Outcome::Taken);
/// # Ok::<(), bpred_core::error::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bimodal {
    inner: OneBank,
}

impl Bimodal {
    /// A bimodal predictor with `2^entries_log2` counters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `entries_log2` is 0 or above 30.
    pub fn new(entries_log2: u32, kind: CounterKind) -> Result<Self, ConfigError> {
        Ok(Bimodal {
            inner: OneBank::new(entries_log2, 0, kind, IndexFunction::Bimodal)?,
        })
    }

    /// `log2` of the table size.
    pub fn entries_log2(&self) -> u32 {
        self.inner.entries_log2()
    }

    /// Counter width.
    pub fn counter_kind(&self) -> CounterKind {
        self.inner.counter_kind()
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&mut self, pc: u64) -> Prediction {
        self.inner.predict(pc)
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        self.inner.update(pc, outcome);
    }

    fn name(&self) -> String {
        format!(
            "bimodal {} {}",
            1u64 << self.inner.entries_log2(),
            self.inner.counter_kind()
        )
    }

    fn storage_bits(&self) -> u64 {
        self.inner.storage_bits()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Bimodal::new(8, CounterKind::TwoBit).unwrap();
        let pc = 0x1000;
        for _ in 0..4 {
            p.update(pc, Outcome::Taken);
        }
        assert_eq!(p.predict(pc).outcome, Outcome::Taken);
    }

    #[test]
    fn different_addresses_use_different_entries() {
        let mut p = Bimodal::new(8, CounterKind::TwoBit).unwrap();
        let a = 0x1000;
        let b = 0x1004;
        for _ in 0..4 {
            p.update(a, Outcome::Taken);
            p.update(b, Outcome::NotTaken);
        }
        assert_eq!(p.predict(a).outcome, Outcome::Taken);
        assert_eq!(p.predict(b).outcome, Outcome::NotTaken);
    }

    #[test]
    fn aliased_addresses_interfere() {
        // Two addresses 2^(n+2) bytes apart map to the same entry: the
        // basic aliasing phenomenon the paper studies.
        let mut p = Bimodal::new(4, CounterKind::TwoBit).unwrap();
        let a = 0x1000;
        let b = a + (1 << (4 + 2));
        for _ in 0..4 {
            p.update(a, Outcome::Taken);
        }
        assert_eq!(
            p.predict(b).outcome,
            Outcome::Taken,
            "b reads a's counter (destructive aliasing candidate)"
        );
    }

    #[test]
    fn history_is_ignored() {
        let mut p = Bimodal::new(8, CounterKind::TwoBit).unwrap();
        let pc = 0x2000;
        p.update(0x3000, Outcome::Taken);
        let before = p.predict(pc);
        p.record_unconditional(0x4000);
        assert_eq!(p.predict(pc), before);
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Bimodal::new(0, CounterKind::TwoBit).is_err());
        assert!(Bimodal::new(31, CounterKind::TwoBit).is_err());
    }

    #[test]
    fn name_and_storage() {
        let p = Bimodal::new(10, CounterKind::TwoBit).unwrap();
        assert_eq!(p.name(), "bimodal 1024 2-bit");
        assert_eq!(p.storage_bits(), 2048);
    }

    #[test]
    fn reset_forgets_training() {
        let mut p = Bimodal::new(8, CounterKind::TwoBit).unwrap();
        let pc = 0x1000;
        for _ in 0..4 {
            p.update(pc, Outcome::NotTaken);
        }
        assert_eq!(p.predict(pc).outcome, Outcome::NotTaken);
        p.reset();
        // Boot state is weakly taken (static always-taken behaviour).
        assert_eq!(p.predict(pc).outcome, Outcome::Taken);
    }
}
