//! Tagged associative predictor tables.
//!
//! Section 3.3 of the paper points out that removing conflicts the way
//! caches do requires tags identifying `(address, history)` pairs — tags
//! that are disproportionately wide next to a 2-bit counter. These
//! structures exist in this crate as *yardsticks*, not proposals:
//!
//! * [`FullyAssociative`] — the N-entry fully-associative LRU table used in
//!   figure 8 ("a 3×N-entry gskewed predictor with partial update delivers
//!   approximately the same performance as an N-entry fully-associative LRU
//!   predictor"). On a miss it falls back to a static *always taken*
//!   prediction, exactly as in the paper's figure 8 experiment.
//! * [`SetAssociative`] — the intermediate design the paper alludes to but
//!   does not evaluate; provided for the associativity ablation.

use crate::counter::{CounterKind, SatCounter};
use crate::error::ConfigError;
use crate::history::GlobalHistory;
use crate::index::IndexFunction;
use crate::predictor::{BranchPredictor, Outcome, Prediction};
use crate::vector::InfoVector;
use std::collections::HashMap;

/// Modeled tag width in bits for storage accounting: a 30-bit partial
/// address tag, as a generous real-hardware estimate.
const ADDR_TAG_BITS: u64 = 30;

const NIL: usize = usize::MAX;

/// The static prediction returned when a tagged table misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MissPolicy {
    /// Predict taken on a miss (the paper's figure 8 choice).
    #[default]
    AlwaysTaken,
    /// Predict not-taken on a miss.
    AlwaysNotTaken,
}

impl MissPolicy {
    #[inline]
    fn outcome(self) -> Outcome {
        match self {
            MissPolicy::AlwaysTaken => Outcome::Taken,
            MissPolicy::AlwaysNotTaken => Outcome::NotTaken,
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    key: (u64, u64),
    counter: SatCounter,
    prev: usize,
    next: usize,
}

/// A fully-associative, LRU-replaced predictor table tagged with complete
/// `(address, history)` pairs.
///
/// All operations are O(1): a hash map locates entries, and an intrusive
/// doubly-linked list over a slab maintains recency order.
///
/// ```
/// use bpred_core::prelude::*;
///
/// let mut p = FullyAssociative::new(1024, 4, CounterKind::TwoBit)?;
/// let pc = 0x1000;
/// assert!(p.predict(pc).novel, "cold table misses");
/// p.update(pc, Outcome::NotTaken);
/// # Ok::<(), bpred_core::error::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FullyAssociative {
    capacity: usize,
    map: HashMap<(u64, u64), usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    history: GlobalHistory,
    kind: CounterKind,
    miss_policy: MissPolicy,
}

impl FullyAssociative {
    /// A table of `capacity` entries with `history_bits` of global history.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `capacity` is zero or `history_bits`
    /// exceeds 64.
    pub fn new(capacity: usize, history_bits: u32, kind: CounterKind) -> Result<Self, ConfigError> {
        if capacity == 0 {
            return Err(ConfigError::invalid(
                "capacity",
                capacity,
                "must be nonzero",
            ));
        }
        if history_bits > 64 {
            return Err(ConfigError::invalid(
                "history_bits",
                history_bits,
                "must be at most 64",
            ));
        }
        Ok(FullyAssociative {
            capacity,
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            history: GlobalHistory::new(history_bits),
            kind,
            miss_policy: MissPolicy::AlwaysTaken,
        })
    }

    /// Change the static prediction used on a miss.
    pub fn with_miss_policy(mut self, policy: MissPolicy) -> Self {
        self.miss_policy = policy;
        self
    }

    /// Table capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// History register length.
    pub fn history_bits(&self) -> u32 {
        self.history.len()
    }

    #[inline]
    fn key(&self, pc: u64) -> (u64, u64) {
        InfoVector::new(pc, self.history.value(), self.history.len()).pair()
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head == i {
            return;
        }
        self.unlink(i);
        self.push_front(i);
    }

    fn insert(&mut self, key: (u64, u64), counter: SatCounter) {
        let slot = if self.map.len() >= self.capacity {
            // Evict the least recently used entry.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            self.map.remove(&self.nodes[victim].key);
            self.nodes[victim].key = key;
            self.nodes[victim].counter = counter;
            victim
        } else if let Some(slot) = self.free.pop() {
            self.nodes[slot].key = key;
            self.nodes[slot].counter = counter;
            slot
        } else {
            self.nodes.push(Node {
                key,
                counter,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.push_front(slot);
        self.map.insert(key, slot);
    }
}

impl BranchPredictor for FullyAssociative {
    fn predict(&mut self, pc: u64) -> Prediction {
        match self.map.get(&self.key(pc)) {
            Some(&i) => Prediction::of(self.nodes[i].counter.predict()),
            None => Prediction::novel(self.miss_policy.outcome()),
        }
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        let key = self.key(pc);
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].counter.train(outcome);
            self.touch(i);
        } else {
            self.insert(key, SatCounter::seeded(self.kind, outcome));
        }
        self.history.push(outcome);
    }

    fn record_unconditional(&mut self, _pc: u64) {
        self.history.push(Outcome::Taken);
    }

    fn name(&self) -> String {
        format!(
            "fa-lru {} h={} {}",
            self.capacity,
            self.history.len(),
            self.kind
        )
    }

    fn storage_bits(&self) -> u64 {
        // tag + counter per entry, plus log2(capacity) recency bits.
        let lru_bits = usize::BITS - (self.capacity - 1).leading_zeros();
        self.capacity as u64
            * (ADDR_TAG_BITS
                + u64::from(self.history.len())
                + u64::from(self.kind.bits())
                + u64::from(lru_bits))
    }

    fn reset(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.history.clear();
    }
}

#[derive(Debug, Clone)]
struct Way {
    key: (u64, u64),
    counter: SatCounter,
    stamp: u64,
}

/// A set-associative, LRU-replaced predictor table tagged with complete
/// `(address, history)` pairs.
///
/// Sets are selected with a gshare-style hash of the pair so that set
/// conflicts mirror those of the equivalent direct-mapped table; within a
/// set, replacement is true LRU via timestamps.
#[derive(Debug, Clone)]
pub struct SetAssociative {
    sets_log2: u32,
    ways: usize,
    table: Vec<Vec<Way>>,
    history: GlobalHistory,
    kind: CounterKind,
    miss_policy: MissPolicy,
    tick: u64,
}

impl SetAssociative {
    /// A table of `2^sets_log2` sets of `ways` entries each.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `sets_log2` is out of `1..=30`, `ways` is
    /// zero, or `history_bits` exceeds 64.
    pub fn new(
        sets_log2: u32,
        ways: usize,
        history_bits: u32,
        kind: CounterKind,
    ) -> Result<Self, ConfigError> {
        if sets_log2 == 0 || sets_log2 > 30 {
            return Err(ConfigError::invalid(
                "sets_log2",
                sets_log2,
                "must be in 1..=30",
            ));
        }
        if ways == 0 {
            return Err(ConfigError::invalid("ways", ways, "must be nonzero"));
        }
        if history_bits > 64 {
            return Err(ConfigError::invalid(
                "history_bits",
                history_bits,
                "must be at most 64",
            ));
        }
        Ok(SetAssociative {
            sets_log2,
            ways,
            table: vec![Vec::new(); 1 << sets_log2],
            history: GlobalHistory::new(history_bits),
            kind,
            miss_policy: MissPolicy::AlwaysTaken,
            tick: 0,
        })
    }

    /// Change the static prediction used on a miss.
    pub fn with_miss_policy(mut self, policy: MissPolicy) -> Self {
        self.miss_policy = policy;
        self
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.ways << self.sets_log2
    }

    #[inline]
    fn locate(&self, pc: u64) -> (usize, (u64, u64)) {
        let v = InfoVector::new(pc, self.history.value(), self.history.len());
        let set = IndexFunction::Gshare.index(&v, self.sets_log2) as usize;
        (set, v.pair())
    }
}

impl BranchPredictor for SetAssociative {
    fn predict(&mut self, pc: u64) -> Prediction {
        let (set, key) = self.locate(pc);
        match self.table[set].iter().find(|w| w.key == key) {
            Some(w) => Prediction::of(w.counter.predict()),
            None => Prediction::novel(self.miss_policy.outcome()),
        }
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        let (set, key) = self.locate(pc);
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let kind = self.kind;
        let set = &mut self.table[set];
        if let Some(w) = set.iter_mut().find(|w| w.key == key) {
            w.counter.train(outcome);
            w.stamp = tick;
        } else if set.len() < ways {
            set.push(Way {
                key,
                counter: SatCounter::seeded(kind, outcome),
                stamp: tick,
            });
        } else {
            // Replace the least recently used way.
            let victim = set
                .iter_mut()
                .min_by_key(|w| w.stamp)
                .expect("nonzero ways");
            victim.key = key;
            victim.counter = SatCounter::seeded(kind, outcome);
            victim.stamp = tick;
        }
        self.history.push(outcome);
    }

    fn record_unconditional(&mut self, _pc: u64) {
        self.history.push(Outcome::Taken);
    }

    fn name(&self) -> String {
        format!(
            "setassoc {}x{}w h={} {}",
            1u64 << self.sets_log2,
            self.ways,
            self.history.len(),
            self.kind
        )
    }

    fn storage_bits(&self) -> u64 {
        let lru_bits = usize::BITS - (self.ways - 1).leading_zeros();
        self.capacity() as u64
            * (ADDR_TAG_BITS
                + u64::from(self.history.len())
                + u64::from(self.kind.bits())
                + u64::from(lru_bits))
    }

    fn reset(&mut self) {
        for set in &mut self.table {
            set.clear();
        }
        self.history.clear();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fa_hits_after_insert() {
        let mut p = FullyAssociative::new(4, 0, CounterKind::TwoBit).unwrap();
        p.update(0x1000, Outcome::NotTaken);
        let pred = p.predict(0x1000);
        assert!(!pred.novel);
        assert_eq!(pred.outcome, Outcome::NotTaken);
    }

    #[test]
    fn fa_miss_predicts_always_taken() {
        let mut p = FullyAssociative::new(4, 0, CounterKind::TwoBit).unwrap();
        let pred = p.predict(0x9999_0000);
        assert!(pred.novel);
        assert_eq!(pred.outcome, Outcome::Taken, "figure 8 static fallback");
        let mut q = FullyAssociative::new(4, 0, CounterKind::TwoBit)
            .unwrap()
            .with_miss_policy(MissPolicy::AlwaysNotTaken);
        assert_eq!(q.predict(0x1000).outcome, Outcome::NotTaken);
    }

    #[test]
    fn fa_evicts_least_recently_used() {
        let mut p = FullyAssociative::new(2, 0, CounterKind::TwoBit).unwrap();
        p.update(0x1000, Outcome::Taken); // A
        p.update(0x2000, Outcome::Taken); // B
        p.update(0x1000, Outcome::Taken); // touch A -> LRU is B
        p.update(0x3000, Outcome::Taken); // C evicts B
        assert!(!p.predict(0x1000).novel, "A still resident");
        assert!(p.predict(0x2000).novel, "B evicted");
        assert!(!p.predict(0x3000).novel, "C resident");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn fa_capacity_never_exceeded() {
        let mut p = FullyAssociative::new(8, 2, CounterKind::TwoBit).unwrap();
        for i in 0..1000u64 {
            p.update(0x1000 + 4 * i, Outcome::from(i % 2 == 0));
            assert!(p.len() <= 8);
        }
    }

    #[test]
    fn fa_distinguishes_histories() {
        let mut p = FullyAssociative::new(16, 2, CounterKind::TwoBit).unwrap();
        // Same pc under different histories occupies different entries.
        p.update(0x1000, Outcome::Taken); // hist 00 -> 01
        p.update(0x1000, Outcome::Taken); // hist 01 -> 11
        p.update(0x1000, Outcome::Taken); // hist 11 -> 11
        assert!(p.len() >= 2);
    }

    #[test]
    fn fa_counter_trains_on_hits() {
        let mut p = FullyAssociative::new(4, 0, CounterKind::TwoBit).unwrap();
        p.update(0x1000, Outcome::Taken);
        assert_eq!(p.predict(0x1000).outcome, Outcome::Taken);
        p.update(0x1000, Outcome::NotTaken);
        // weakly-taken trained down once -> neutral (predicts not-taken)
        assert_eq!(p.predict(0x1000).outcome, Outcome::NotTaken);
    }

    #[test]
    fn fa_reset_and_reuse() {
        let mut p = FullyAssociative::new(4, 2, CounterKind::TwoBit).unwrap();
        for i in 0..100u64 {
            p.update(4 * i, Outcome::Taken);
        }
        p.reset();
        assert!(p.is_empty());
        assert!(p.predict(0).novel);
        p.update(0, Outcome::Taken);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn fa_storage_accounts_tags() {
        let p = FullyAssociative::new(1024, 4, CounterKind::TwoBit).unwrap();
        // Per entry: 30 tag + 4 hist + 2 counter + 10 LRU = 46 bits.
        assert_eq!(p.storage_bits(), 1024 * 46);
    }

    #[test]
    fn sa_basic_hit_and_miss() {
        let mut p = SetAssociative::new(4, 2, 0, CounterKind::TwoBit).unwrap();
        assert!(p.predict(0x1000).novel);
        p.update(0x1000, Outcome::NotTaken);
        assert_eq!(p.predict(0x1000).outcome, Outcome::NotTaken);
        assert!(!p.predict(0x1000).novel);
    }

    #[test]
    fn sa_lru_within_set() {
        // Force three keys into the same set of a 2-way table; the first
        // (least recently used) is the one replaced.
        let mut p = SetAssociative::new(1, 2, 0, CounterKind::TwoBit).unwrap();
        // With 1 set bit, addresses 0x0, 0x8, 0x10 (word-aligned pcs 0, 8, 16)
        // may fall in either set; use pcs that share the single set bit.
        let a = 0x0;
        let b = 0x8;
        let c = 0x10;
        let (sa, _) = p.locate(a);
        let (sb, _) = p.locate(b);
        let (sc, _) = p.locate(c);
        // 0x0>>2=0, 0x8>>2=2, 0x10>>2=4: all even -> set bit 0.
        assert_eq!(sa, sb);
        assert_eq!(sb, sc);
        p.update(a, Outcome::Taken);
        p.update(b, Outcome::Taken);
        p.update(a, Outcome::Taken); // touch a
        p.update(c, Outcome::Taken); // evicts b
        assert!(!p.predict(a).novel);
        assert!(p.predict(b).novel);
        assert!(!p.predict(c).novel);
    }

    #[test]
    fn sa_capacity() {
        let p = SetAssociative::new(4, 4, 0, CounterKind::TwoBit).unwrap();
        assert_eq!(p.capacity(), 64);
        assert_eq!(p.ways(), 4);
    }

    #[test]
    fn config_validation() {
        assert!(FullyAssociative::new(0, 0, CounterKind::TwoBit).is_err());
        assert!(FullyAssociative::new(4, 65, CounterKind::TwoBit).is_err());
        assert!(SetAssociative::new(0, 2, 0, CounterKind::TwoBit).is_err());
        assert!(SetAssociative::new(4, 0, 0, CounterKind::TwoBit).is_err());
    }

    #[test]
    fn names() {
        let p = FullyAssociative::new(256, 4, CounterKind::TwoBit).unwrap();
        assert_eq!(p.name(), "fa-lru 256 h=4 2-bit");
        let q = SetAssociative::new(6, 4, 8, CounterKind::OneBit).unwrap();
        assert_eq!(q.name(), "setassoc 64x4w h=8 1-bit");
    }
}
