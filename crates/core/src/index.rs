//! Tag-less predictor index functions: bimodal, *gshare* and *gselect*.
//!
//! Given an [`InfoVector`] and a table of `2^n` entries, each function maps
//! the vector to an `n`-bit table index:
//!
//! * **bimodal** — bit truncation of the branch address, `addr mod 2^n`
//!   (no history);
//! * **gshare** — XOR of address and history bits (McFarling). Following
//!   footnote 1 of the paper, when the history is shorter than the index the
//!   history bits are XORed with the *higher-order* end of the low-order
//!   address bits;
//! * **gselect** — concatenation of low-order address bits and history bits
//!   (GAs in Yeh and Patt's terminology).

use crate::vector::InfoVector;
use std::fmt;

/// A hashing function mapping `(address, history)` pairs onto a `2^n`-entry
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexFunction {
    /// Address bit truncation (ignores history).
    Bimodal,
    /// Address XOR history, history aligned to the high-order end
    /// (footnote 1).
    Gshare,
    /// Concatenation: low `n-k` address bits above the `k` history bits.
    Gselect,
}

impl IndexFunction {
    /// Compute the `n`-bit index for vector `v`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 30.
    #[inline]
    pub fn index(self, v: &InfoVector, n: u32) -> u64 {
        assert!(n > 0 && n <= 30, "index width {n} out of range 1..=30");
        let mask = (1u64 << n) - 1;
        let k = v.hist_bits();
        match self {
            IndexFunction::Bimodal => v.addr() & mask,
            IndexFunction::Gshare => {
                let h = if k <= n {
                    // Footnote 1: align short history with the high-order
                    // end of the n low-order address bits.
                    v.hist() << (n - k)
                } else {
                    // Longer-than-index history: XOR-fold n-bit chunks so
                    // every history bit still contributes.
                    fold(v.hist(), k, n)
                };
                (v.addr() ^ h) & mask
            }
            IndexFunction::Gselect => {
                if k >= n {
                    // Degenerate case the paper calls out: with a 12-bit
                    // history and small tables, gselect uses few or no
                    // address bits.
                    v.hist() & mask
                } else {
                    ((v.addr() << k) | v.hist()) & mask
                }
            }
        }
    }

    /// Parse from the names used in predictor spec strings.
    pub fn from_name(name: &str) -> Option<IndexFunction> {
        match name {
            "bimodal" => Some(IndexFunction::Bimodal),
            "gshare" => Some(IndexFunction::Gshare),
            "gselect" => Some(IndexFunction::Gselect),
            _ => None,
        }
    }
}

impl fmt::Display for IndexFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IndexFunction::Bimodal => "bimodal",
            IndexFunction::Gshare => "gshare",
            IndexFunction::Gselect => "gselect",
        })
    }
}

/// XOR-fold the low `from` bits of `x` down to `to` bits.
#[inline]
fn fold(mut x: u64, from: u32, to: u32) -> u64 {
    debug_assert!(to > 0 && from > to);
    let mask = (1u64 << to) - 1;
    let mut acc = 0u64;
    let mut remaining = from;
    while remaining > 0 {
        acc ^= x & mask;
        x >>= to;
        remaining = remaining.saturating_sub(to);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(pc: u64, hist: u64, k: u32) -> InfoVector {
        InfoVector::new(pc, hist, k)
    }

    #[test]
    fn bimodal_truncates_address() {
        let f = IndexFunction::Bimodal;
        let v = vec_of(0x12345678, 0b1111, 4);
        assert_eq!(f.index(&v, 8), (0x12345678 >> 2) & 0xff);
    }

    #[test]
    fn bimodal_ignores_history() {
        let f = IndexFunction::Bimodal;
        let a = vec_of(0x1000, 0b0000, 4);
        let b = vec_of(0x1000, 0b1111, 4);
        assert_eq!(f.index(&a, 10), f.index(&b, 10));
    }

    #[test]
    fn gshare_aligns_short_history_high() {
        // n = 8, k = 4: history must land in bits 4..8 of the index.
        let f = IndexFunction::Gshare;
        let base = vec_of(0, 0, 4);
        let hist = vec_of(0, 0b1111, 4);
        assert_eq!(f.index(&base, 8), 0);
        assert_eq!(f.index(&hist, 8), 0b1111_0000);
    }

    #[test]
    fn gshare_equal_lengths_is_plain_xor() {
        let f = IndexFunction::Gshare;
        let v = vec_of(0b1010_1100 << 2, 0b0110_0011, 8);
        assert_eq!(f.index(&v, 8), 0b1010_1100 ^ 0b0110_0011);
    }

    #[test]
    fn gshare_folds_long_history() {
        // n = 4, k = 8: both history nibbles must contribute.
        let f = IndexFunction::Gshare;
        let v = vec_of(0, 0b1001_0110, 8);
        assert_eq!(f.index(&v, 4), 0b1001 ^ 0b0110);
    }

    #[test]
    fn gselect_concatenates() {
        // n = 8, k = 4: index = (addr_low4 << 4) | hist.
        let f = IndexFunction::Gselect;
        let v = vec_of(0b1011 << 2, 0b0101, 4);
        assert_eq!(f.index(&v, 8), 0b1011_0101);
    }

    #[test]
    fn gselect_long_history_drops_address() {
        let f = IndexFunction::Gselect;
        let a = vec_of(0x1000, 0xABC, 12);
        let b = vec_of(0x2000, 0xABC, 12);
        assert_eq!(f.index(&a, 10), f.index(&b, 10));
        assert_eq!(f.index(&a, 10), 0xABC & 0x3FF);
    }

    #[test]
    fn gshare_and_gselect_conflict_on_different_pairs() {
        // The observation behind figure 3: the pairs that collide under one
        // mapping differ from the pairs that collide under the other.
        let f_sh = IndexFunction::Gshare;
        let f_se = IndexFunction::Gselect;
        let n = 4;
        // Two vectors that gshare aliases (same XOR) but gselect separates.
        let v = vec_of(0b0011 << 2, 0b0101, 4);
        let w = vec_of(0b1100 << 2, 0b1010, 4);
        assert_eq!(f_sh.index(&v, n), f_sh.index(&w, n));
        assert_ne!(f_se.index(&v, n), f_se.index(&w, n));
    }

    #[test]
    fn all_functions_stay_in_range() {
        for f in [
            IndexFunction::Bimodal,
            IndexFunction::Gshare,
            IndexFunction::Gselect,
        ] {
            for n in [1u32, 4, 12, 20] {
                for pc in [0u64, 0x7fff_fffc, 0xdead_beef] {
                    for k in [0u32, 4, 12, 24] {
                        let v = vec_of(pc, 0x00ff_f0f0, k);
                        assert!(f.index(&v, n) < (1 << n));
                    }
                }
            }
        }
    }

    #[test]
    fn from_name_roundtrip() {
        for f in [
            IndexFunction::Bimodal,
            IndexFunction::Gshare,
            IndexFunction::Gselect,
        ] {
            assert_eq!(IndexFunction::from_name(&f.to_string()), Some(f));
        }
        assert_eq!(IndexFunction::from_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_index_panics() {
        IndexFunction::Bimodal.index(&vec_of(0, 0, 0), 0);
    }
}
