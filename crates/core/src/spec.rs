//! Textual predictor specifications.
//!
//! The CLI and the experiment harness describe predictors as compact spec
//! strings of the form `name:key=value,key=value`. Example specs:
//!
//! ```text
//! gshare:n=14,h=12              16K-entry gshare, 12 bits of history
//! gskew:n=12,h=8                3x4K gskew, partial update (defaults)
//! gskew:n=12,h=8,update=total   ... with total update
//! egskew:n=12,h=11              enhanced gskew
//! gskew:n=12,h=8,banks=5        5-bank ablation
//! bimodal:n=14                  bimodal
//! ideal:h=12,ctr=1              unaliased predictor, 1-bit automatons
//! falru:cap=4096,h=4            fully-associative LRU tagged table
//! setassoc:n=10,ways=4,h=4      4-way set-associative tagged table
//! mcfarling:n=12,h=10           gshare+bimodal combining predictor
//! 2bcgskew:n=12,h=12            EV8-style hybrid
//! always-taken                  static baseline
//! ```
//!
//! Recognized keys (unknown keys are an error): `n` (log2 entries per
//! table/bank), `h` (history bits), `ctr` (counter bits), `banks`,
//! `update` (`partial`/`total`), `skew` (`on`/`off`, the
//! identical-indexing ablation), `cap` (entry count for `falru`), `ways`,
//! `miss` (`taken`/`nottaken`), `bias` (agree bias-table log2), `choice`
//! (bimode choice-table log2), `bht`/`l` (per-address first-level log2 /
//! local history bits).

//! Additional families beyond the paper's: `agree:n=12,h=8`,
//! `bimode:n=12,h=8`, `pas:bht=10,l=8,n=12`, `spas:bht=10,l=8,n=10`.

use crate::agree::Agree;
use crate::assoc::{FullyAssociative, MissPolicy, SetAssociative};
use crate::bimodal::Bimodal;
use crate::bimode::BiMode;
use crate::counter::CounterKind;
use crate::distributed::SharedHysteresisGskew;
use crate::error::ConfigError;
use crate::gselect::Gselect;
use crate::gshare::Gshare;
use crate::gskew::{Gskew, UpdatePolicy};
use crate::hybrid::{McFarling, TwoBcGskew};
use crate::ideal::Ideal;
use crate::pas::{Pas, SkewedPas};
use crate::predictor::BranchPredictor;
use crate::statics::{AlwaysNotTaken, AlwaysTaken};
use std::collections::HashMap;

/// Parsed key=value parameters of a spec string.
#[derive(Debug, Clone, Default)]
struct Params {
    map: HashMap<String, String>,
}

impl Params {
    fn parse(body: &str) -> Result<Self, ConfigError> {
        let mut map = HashMap::new();
        for item in body.split(',').filter(|s| !s.is_empty()) {
            let (k, v) = item
                .split_once('=')
                .ok_or_else(|| ConfigError::Parse(format!("expected key=value, got `{item}`")))?;
            if map
                .insert(k.trim().to_string(), v.trim().to_string())
                .is_some()
            {
                return Err(ConfigError::Parse(format!("duplicate key `{k}`")));
            }
        }
        Ok(Params { map })
    }

    fn u32(&mut self, key: &str, default: u32) -> Result<u32, ConfigError> {
        match self.map.remove(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ConfigError::Parse(format!("`{key}` must be an integer, got `{v}`"))),
        }
    }

    fn usize(&mut self, key: &str, default: usize) -> Result<usize, ConfigError> {
        match self.map.remove(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ConfigError::Parse(format!("`{key}` must be an integer, got `{v}`"))),
        }
    }

    fn counter(&mut self, default: CounterKind) -> Result<CounterKind, ConfigError> {
        match self.map.remove("ctr") {
            None => Ok(default),
            Some(v) => {
                let bits: u8 = v.parse().map_err(|_| {
                    ConfigError::Parse(format!("`ctr` must be an integer, got `{v}`"))
                })?;
                CounterKind::from_bits(bits)
                    .ok_or_else(|| ConfigError::invalid("ctr", bits, "must be in 1..=7"))
            }
        }
    }

    fn update_policy(&mut self) -> Result<UpdatePolicy, ConfigError> {
        match self.map.remove("update") {
            None => Ok(UpdatePolicy::Partial),
            Some(v) => UpdatePolicy::from_name(&v).ok_or_else(|| {
                ConfigError::Parse(format!("`update` must be partial|total, got `{v}`"))
            }),
        }
    }

    fn miss_policy(&mut self) -> Result<MissPolicy, ConfigError> {
        match self.map.remove("miss").as_deref() {
            None | Some("taken") => Ok(MissPolicy::AlwaysTaken),
            Some("nottaken") => Ok(MissPolicy::AlwaysNotTaken),
            Some(v) => Err(ConfigError::Parse(format!(
                "`miss` must be taken|nottaken, got `{v}`"
            ))),
        }
    }

    fn finish(self) -> Result<(), ConfigError> {
        if let Some(key) = self.map.keys().next() {
            return Err(ConfigError::Parse(format!("unknown key `{key}`")));
        }
        Ok(())
    }
}

/// A structured predictor description: the parsed form of a spec string,
/// before any table is allocated.
///
/// Splitting [`parse_spec`] into [`PredictorSpec::parse`] (cheap, pure)
/// and [`PredictorSpec::build`] (allocates the predictor) lets callers
/// inspect *what* a spec asks for without paying for it — the simulation
/// kernels in `bpred-sim` match on this enum to pick a monomorphized fast
/// path for the tag-less table predictors and fall back to
/// [`build`](PredictorSpec::build) for everything else.
///
/// Parameter *range* validation stays in the predictor constructors, so
/// `parse` accepts e.g. `gshare:n=0` and the error surfaces at `build`,
/// exactly as it did when parsing and construction were fused.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field meanings are the spec-string keys documented above
pub enum PredictorSpec {
    /// `bimodal`: address-indexed counter table.
    Bimodal { n: u32, ctr: CounterKind },
    /// `gshare`: address XOR history.
    Gshare { n: u32, h: u32, ctr: CounterKind },
    /// `gselect`: address/history concatenation.
    Gselect { n: u32, h: u32, ctr: CounterKind },
    /// `gskew` / `egskew`: the skewed predictor family. `enhanced` is the
    /// e-gskew bank-0 address indexing; `skewing: false` is the
    /// identical-indexing ablation (`skew=off`).
    Gskew {
        n: u32,
        h: u32,
        banks: usize,
        ctr: CounterKind,
        update: UpdatePolicy,
        enhanced: bool,
        skewing: bool,
    },
    /// `agree`: biasing-bit agree predictor.
    Agree {
        n: u32,
        h: u32,
        bias: u32,
        ctr: CounterKind,
    },
    /// `bimode`: choice-steered taken/not-taken tables.
    BiMode {
        n: u32,
        h: u32,
        choice: u32,
        ctr: CounterKind,
    },
    /// `pas`: per-address two-level predictor.
    Pas {
        bht: u32,
        l: u32,
        n: u32,
        ctr: CounterKind,
    },
    /// `spas`: skewed per-address predictor.
    Spas {
        bht: u32,
        l: u32,
        n: u32,
        ctr: CounterKind,
        update: UpdatePolicy,
    },
    /// `ideal`: the unaliased (infinite-table) predictor.
    Ideal { h: u32, ctr: CounterKind },
    /// `falru`: fully-associative tagged LRU table.
    Falru {
        cap: usize,
        h: u32,
        ctr: CounterKind,
        miss: MissPolicy,
    },
    /// `setassoc`: set-associative tagged table.
    SetAssoc {
        n: u32,
        ways: usize,
        h: u32,
        ctr: CounterKind,
        miss: MissPolicy,
    },
    /// `mcfarling`: bimodal+gshare combining predictor.
    McFarling { n: u32, h: u32, ctr: CounterKind },
    /// `shgskew`: shared-hysteresis gskew.
    Shgskew {
        n: u32,
        h: u32,
        update: UpdatePolicy,
    },
    /// `2bcgskew`: EV8-style hybrid.
    TwoBcGskew { n: u32, h: u32 },
    /// `always-taken`.
    AlwaysTaken,
    /// `always-nottaken`.
    AlwaysNotTaken,
}

impl PredictorSpec {
    /// Parse a spec string into its structured form without building the
    /// predictor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for unknown predictor names and malformed,
    /// unknown or non-numeric keys. Out-of-range *values* (`gshare:n=0`)
    /// parse fine and fail at [`build`](Self::build).
    pub fn parse(spec: &str) -> Result<PredictorSpec, ConfigError> {
        let (name, body) = match spec.split_once(':') {
            Some((n, b)) => (n.trim(), b),
            None => (spec.trim(), ""),
        };
        let mut p = Params::parse(body)?;
        let parsed = match name {
            "bimodal" => {
                let n = p.u32("n", 12)?;
                let ctr = p.counter(CounterKind::TwoBit)?;
                p.finish()?;
                PredictorSpec::Bimodal { n, ctr }
            }
            "gshare" => {
                let n = p.u32("n", 12)?;
                let h = p.u32("h", 8)?;
                let ctr = p.counter(CounterKind::TwoBit)?;
                p.finish()?;
                PredictorSpec::Gshare { n, h, ctr }
            }
            "gselect" => {
                let n = p.u32("n", 12)?;
                let h = p.u32("h", 8)?;
                let ctr = p.counter(CounterKind::TwoBit)?;
                p.finish()?;
                PredictorSpec::Gselect { n, h, ctr }
            }
            "gskew" | "egskew" => {
                let n = p.u32("n", 12)?;
                let h = p.u32("h", 8)?;
                let banks = p.usize("banks", 3)?;
                let ctr = p.counter(CounterKind::TwoBit)?;
                let update = p.update_policy()?;
                let skewing = match p.map.remove("skew").as_deref() {
                    None | Some("on") => true,
                    Some("off") => false,
                    Some(v) => {
                        return Err(ConfigError::Parse(format!(
                            "`skew` must be on|off, got `{v}`"
                        )))
                    }
                };
                p.finish()?;
                PredictorSpec::Gskew {
                    n,
                    h,
                    banks,
                    ctr,
                    update,
                    enhanced: name == "egskew",
                    skewing,
                }
            }
            "agree" => {
                let n = p.u32("n", 12)?;
                let h = p.u32("h", 8)?;
                let bias = p.u32("bias", 0)?;
                let ctr = p.counter(CounterKind::TwoBit)?;
                p.finish()?;
                let bias = if bias == 0 { n } else { bias };
                PredictorSpec::Agree { n, h, bias, ctr }
            }
            "bimode" => {
                let n = p.u32("n", 12)?;
                let h = p.u32("h", 8)?;
                let choice = p.u32("choice", 0)?;
                let ctr = p.counter(CounterKind::TwoBit)?;
                p.finish()?;
                let choice = if choice == 0 { n } else { choice };
                PredictorSpec::BiMode { n, h, choice, ctr }
            }
            "pas" => {
                let bht = p.u32("bht", 10)?;
                let l = p.u32("l", 8)?;
                let n = p.u32("n", 12)?;
                let ctr = p.counter(CounterKind::TwoBit)?;
                p.finish()?;
                PredictorSpec::Pas { bht, l, n, ctr }
            }
            "spas" => {
                let bht = p.u32("bht", 10)?;
                let l = p.u32("l", 8)?;
                let n = p.u32("n", 10)?;
                let ctr = p.counter(CounterKind::TwoBit)?;
                let update = p.update_policy()?;
                p.finish()?;
                PredictorSpec::Spas {
                    bht,
                    l,
                    n,
                    ctr,
                    update,
                }
            }
            "ideal" => {
                let h = p.u32("h", 8)?;
                let ctr = p.counter(CounterKind::TwoBit)?;
                p.finish()?;
                PredictorSpec::Ideal { h, ctr }
            }
            "falru" => {
                let cap = p.usize("cap", 4096)?;
                let h = p.u32("h", 8)?;
                let ctr = p.counter(CounterKind::TwoBit)?;
                let miss = p.miss_policy()?;
                p.finish()?;
                PredictorSpec::Falru { cap, h, ctr, miss }
            }
            "setassoc" => {
                let n = p.u32("n", 10)?;
                let ways = p.usize("ways", 4)?;
                let h = p.u32("h", 8)?;
                let ctr = p.counter(CounterKind::TwoBit)?;
                let miss = p.miss_policy()?;
                p.finish()?;
                PredictorSpec::SetAssoc {
                    n,
                    ways,
                    h,
                    ctr,
                    miss,
                }
            }
            "mcfarling" => {
                let n = p.u32("n", 12)?;
                let h = p.u32("h", 8)?;
                let ctr = p.counter(CounterKind::TwoBit)?;
                p.finish()?;
                PredictorSpec::McFarling { n, h, ctr }
            }
            "shgskew" => {
                let n = p.u32("n", 12)?;
                let h = p.u32("h", 8)?;
                let update = p.update_policy()?;
                p.finish()?;
                PredictorSpec::Shgskew { n, h, update }
            }
            "2bcgskew" => {
                let n = p.u32("n", 12)?;
                let h = p.u32("h", 12)?;
                p.finish()?;
                PredictorSpec::TwoBcGskew { n, h }
            }
            "always-taken" => {
                p.finish()?;
                PredictorSpec::AlwaysTaken
            }
            "always-nottaken" => {
                p.finish()?;
                PredictorSpec::AlwaysNotTaken
            }
            other => return Err(ConfigError::UnknownPredictor(other.to_string())),
        };
        Ok(parsed)
    }

    /// Allocate the predictor this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a parameter is out of its legal range
    /// (constructor validation).
    pub fn build(&self) -> Result<Box<dyn BranchPredictor>, ConfigError> {
        let boxed: Box<dyn BranchPredictor> = match *self {
            PredictorSpec::Bimodal { n, ctr } => Box::new(Bimodal::new(n, ctr)?),
            PredictorSpec::Gshare { n, h, ctr } => Box::new(Gshare::new(n, h, ctr)?),
            PredictorSpec::Gselect { n, h, ctr } => Box::new(Gselect::new(n, h, ctr)?),
            PredictorSpec::Gskew {
                n,
                h,
                banks,
                ctr,
                update,
                enhanced,
                skewing,
            } => Box::new(
                Gskew::builder()
                    .banks(banks)
                    .bank_entries_log2(n)
                    .history_bits(h)
                    .counter(ctr)
                    .update_policy(update)
                    .enhanced(enhanced)
                    .identical_indexing(!skewing)
                    .build()?,
            ),
            PredictorSpec::Agree { n, h, bias, ctr } => Box::new(Agree::new(n, h, bias, ctr)?),
            PredictorSpec::BiMode { n, h, choice, ctr } => {
                Box::new(BiMode::new(n, h, choice, ctr)?)
            }
            PredictorSpec::Pas { bht, l, n, ctr } => Box::new(Pas::new(bht, l, n, ctr)?),
            PredictorSpec::Spas {
                bht,
                l,
                n,
                ctr,
                update,
            } => Box::new(SkewedPas::new(bht, l, n, ctr, update)?),
            PredictorSpec::Ideal { h, ctr } => Box::new(Ideal::new(h, ctr)?),
            PredictorSpec::Falru { cap, h, ctr, miss } => {
                Box::new(FullyAssociative::new(cap, h, ctr)?.with_miss_policy(miss))
            }
            PredictorSpec::SetAssoc {
                n,
                ways,
                h,
                ctr,
                miss,
            } => Box::new(SetAssociative::new(n, ways, h, ctr)?.with_miss_policy(miss)),
            PredictorSpec::McFarling { n, h, ctr } => Box::new(McFarling::new(
                Box::new(Bimodal::new(n, ctr)?),
                Box::new(Gshare::new(n, h, ctr)?),
                n,
            )?),
            PredictorSpec::Shgskew { n, h, update } => {
                Box::new(SharedHysteresisGskew::with_policy(n, h, update)?)
            }
            PredictorSpec::TwoBcGskew { n, h } => Box::new(TwoBcGskew::new(n, h)?),
            PredictorSpec::AlwaysTaken => Box::new(AlwaysTaken::new()),
            PredictorSpec::AlwaysNotTaken => Box::new(AlwaysNotTaken::new()),
        };
        Ok(boxed)
    }
}

/// Build a predictor from a spec string:
/// [`PredictorSpec::parse`] followed by [`PredictorSpec::build`].
///
/// # Errors
///
/// Returns [`ConfigError`] for unknown predictor names, malformed or
/// unknown keys, and out-of-range parameter values.
///
/// ```
/// use bpred_core::spec::parse_spec;
///
/// let p = parse_spec("gskew:n=12,h=8")?;
/// assert_eq!(p.name(), "gskew 3x4096 h=8 2-bit partial");
/// # Ok::<(), bpred_core::error::ConfigError>(())
/// ```
pub fn parse_spec(spec: &str) -> Result<Box<dyn BranchPredictor>, ConfigError> {
    PredictorSpec::parse(spec)?.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_predictor_name() {
        for spec in [
            "bimodal:n=10",
            "gshare:n=12,h=8",
            "gselect:n=12,h=6",
            "gskew:n=10,h=8",
            "gskew:n=10,h=8,banks=5,update=total",
            "egskew:n=10,h=11",
            "ideal:h=4,ctr=1",
            "falru:cap=512,h=4",
            "setassoc:n=8,ways=4,h=4,miss=nottaken",
            "mcfarling:n=10,h=8",
            "2bcgskew:n=10,h=10",
            "always-taken",
            "always-nottaken",
            "agree:n=10,h=6",
            "agree:n=10,h=6,bias=8",
            "bimode:n=10,h=6,choice=9",
            "pas:bht=8,l=6,n=10",
            "spas:bht=8,l=6,n=8,update=total",
            "shgskew:n=10,h=6",
            "shgskew:n=10,h=6,update=total",
            "gskew:n=10,h=4,skew=off",
        ] {
            let p = parse_spec(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn defaults_are_sane() {
        let p = parse_spec("gskew").unwrap();
        assert_eq!(p.name(), "gskew 3x4096 h=8 2-bit partial");
    }

    #[test]
    fn rejects_unknown_name() {
        assert!(matches!(
            parse_spec("tage:n=12"),
            Err(ConfigError::UnknownPredictor(_))
        ));
    }

    #[test]
    fn rejects_unknown_key() {
        let e = match parse_spec("gshare:n=12,bogus=1") {
            Err(e) => e,
            Ok(_) => panic!("unknown key accepted"),
        };
        assert!(e.to_string().contains("bogus"), "{e}");
    }

    #[test]
    fn rejects_malformed_pairs() {
        assert!(parse_spec("gshare:n").is_err());
        assert!(parse_spec("gshare:n=abc").is_err());
        assert!(parse_spec("gshare:n=12,n=13").is_err());
    }

    #[test]
    fn rejects_out_of_range_values() {
        assert!(parse_spec("gshare:n=0").is_err());
        assert!(parse_spec("gshare:ctr=9").is_err());
        assert!(parse_spec("gskew:banks=2").is_err());
        assert!(parse_spec("gskew:update=sometimes").is_err());
        assert!(parse_spec("falru:cap=0").is_err());
        assert!(parse_spec("falru:miss=maybe").is_err());
    }

    #[test]
    fn spec_controls_update_policy() {
        let p = parse_spec("gskew:n=10,h=4,update=total").unwrap();
        assert!(p.name().contains("total"));
        let q = parse_spec("gskew:n=10,h=4").unwrap();
        assert!(q.name().contains("partial"));
    }

    #[test]
    fn skew_off_is_the_identical_indexing_ablation() {
        let p = parse_spec("gskew:n=10,h=4,skew=off").unwrap();
        assert!(p.name().ends_with("same-index"));
        assert!(parse_spec("gskew:skew=sideways").is_err());
    }

    #[test]
    fn agree_bias_defaults_to_counter_size() {
        let p = parse_spec("agree:n=11,h=6").unwrap();
        assert!(p.name().contains("bias=2048"), "{}", p.name());
    }

    #[test]
    fn egskew_is_enhanced() {
        let p = parse_spec("egskew:n=10,h=11").unwrap();
        assert!(p.name().starts_with("egskew"));
    }

    #[test]
    fn structured_parse_carries_every_knob() {
        assert_eq!(
            PredictorSpec::parse("gskew:n=10,h=6,banks=5,update=total,skew=off").unwrap(),
            PredictorSpec::Gskew {
                n: 10,
                h: 6,
                banks: 5,
                ctr: CounterKind::TwoBit,
                update: UpdatePolicy::Total,
                enhanced: false,
                skewing: false,
            }
        );
        assert_eq!(
            PredictorSpec::parse("egskew:n=12,h=11").unwrap(),
            PredictorSpec::Gskew {
                n: 12,
                h: 11,
                banks: 3,
                ctr: CounterKind::TwoBit,
                update: UpdatePolicy::Partial,
                enhanced: true,
                skewing: true,
            }
        );
        assert_eq!(
            PredictorSpec::parse("gshare:n=14,h=4,ctr=1").unwrap(),
            PredictorSpec::Gshare {
                n: 14,
                h: 4,
                ctr: CounterKind::OneBit,
            }
        );
    }

    #[test]
    fn out_of_range_values_parse_but_fail_to_build() {
        // Range validation lives in the constructors: `parse` is happy,
        // `build` reports the same error `parse_spec` always did.
        let spec = PredictorSpec::parse("gshare:n=0").unwrap();
        assert!(spec.build().is_err());
        let spec = PredictorSpec::parse("gskew:banks=2").unwrap();
        assert!(spec.build().is_err());
    }

    #[test]
    fn structured_build_matches_fused_parse() {
        for spec in ["gshare:n=12,h=8", "gskew:n=10,h=4", "mcfarling:n=10,h=8"] {
            let fused = parse_spec(spec).unwrap();
            let staged = PredictorSpec::parse(spec).unwrap().build().unwrap();
            assert_eq!(fused.name(), staged.name());
            assert_eq!(fused.storage_bits(), staged.storage_bits());
        }
    }
}
