//! Trivial static predictors, used as baselines and as miss fallbacks.

use crate::predictor::{BranchPredictor, Outcome, Prediction};

/// Predicts every branch taken. The paper uses this as the static fallback
/// for tagged-table misses (figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AlwaysTaken;

impl AlwaysTaken {
    /// Construct the predictor.
    pub fn new() -> Self {
        AlwaysTaken
    }
}

impl BranchPredictor for AlwaysTaken {
    fn predict(&mut self, _pc: u64) -> Prediction {
        Prediction::of(Outcome::Taken)
    }
    fn update(&mut self, _pc: u64, _outcome: Outcome) {}
    fn name(&self) -> String {
        "always-taken".into()
    }
    fn storage_bits(&self) -> u64 {
        0
    }
    fn reset(&mut self) {}
}

/// Predicts every branch not taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AlwaysNotTaken;

impl AlwaysNotTaken {
    /// Construct the predictor.
    pub fn new() -> Self {
        AlwaysNotTaken
    }
}

impl BranchPredictor for AlwaysNotTaken {
    fn predict(&mut self, _pc: u64) -> Prediction {
        Prediction::of(Outcome::NotTaken)
    }
    fn update(&mut self, _pc: u64, _outcome: Outcome) {}
    fn name(&self) -> String {
        "always-not-taken".into()
    }
    fn storage_bits(&self) -> u64 {
        0
    }
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statics_never_learn() {
        let mut t = AlwaysTaken::new();
        let mut n = AlwaysNotTaken::new();
        for i in 0..10u64 {
            t.update(i * 4, Outcome::NotTaken);
            n.update(i * 4, Outcome::Taken);
        }
        assert_eq!(t.predict(0).outcome, Outcome::Taken);
        assert_eq!(n.predict(0).outcome, Outcome::NotTaken);
        assert_eq!(t.storage_bits(), 0);
        assert_eq!(n.storage_bits(), 0);
    }

    #[test]
    fn names() {
        assert_eq!(AlwaysTaken::new().name(), "always-taken");
        assert_eq!(AlwaysNotTaken::new().name(), "always-not-taken");
    }
}
