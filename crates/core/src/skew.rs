//! Inter-bank skewing functions `H`, `H⁻¹` and the family `f0, f1, f2`.
//!
//! These are the functions of section 4.2 of the paper, originally proposed
//! for the skewed-associative cache (Seznec & Bodin, PARLE '93). A skewed
//! predictor indexes each of its banks with a *different* function of the
//! same information vector, so that two vectors colliding in one bank are
//! dispersed across different entries of the other banks.
//!
//! With the packed vector decomposed into bit substrings `(V3, V2, V1)`
//! (`V1`, `V2` the two lowest `n`-bit strings):
//!
//! ```text
//! H (y_n, .., y_1) = (y_n ^ y_1, y_n, y_{n-1}, .., y_2)      // LFSR step
//! f0(V3, V2, V1)   = H(V1) ^ H⁻¹(V2) ^ V2
//! f1(V3, V2, V1)   = H(V1) ^ H⁻¹(V2) ^ V1
//! f2(V3, V2, V1)   = H⁻¹(V1) ^ H(V2) ^ V2
//! ```
//!
//! The property that matters (and which the tests verify by rank
//! computation over GF(2)): **if two distinct vectors map to the same entry
//! in one bank, they do not conflict in any other bank unless their low
//! `2n` bits are identical.** Because every `f_i` is linear over GF(2),
//! this is exactly the statement that the combined map
//! `(V2, V1) ↦ (f_i, f_j)` is injective.
//!
//! A subtlety the paper glosses over: the combined map has full rank only
//! when `n ≢ 2 (mod 3)`. At `n ≡ 2 (mod 3)` its kernel has dimension 2, so
//! exactly 3 nonzero difference patterns (out of `2^2n - 1`) collide in two
//! banks at once — a fraction `≈ 2^(2-2n)`, which is why the property is
//! effectively universal at every realistic bank size.
//! [`dispersion_kernel_dim`] exposes the exact kernel dimension.
//!
//! Banks 3 and 4 (for the 5-bank ablation of section 5.1) are not specified
//! in the paper; we extend the family with two more functions built from the
//! same primitives. Their pairwise kernels are verified to be just as small
//! by the same rank test.

/// Maximum supported bank index width.
pub const MAX_INDEX_BITS: u32 = 30;

/// Number of distinct skewing functions provided.
pub const NUM_SKEW_FUNCTIONS: usize = 5;

#[inline]
fn mask(n: u32) -> u64 {
    (1u64 << n) - 1
}

/// One step of the `n`-bit LFSR-style mixing function `H`.
///
/// `H(y_n, .., y_1) = (y_n ^ y_1, y_n, y_{n-1}, .., y_3, y_2)`: the word is
/// shifted right by one and the vacated most-significant bit receives
/// `y_n ^ y_1`.
///
/// # Panics
///
/// Panics if `n < 2` or `n > MAX_INDEX_BITS`, or if `x` has bits above `n`.
#[inline]
pub fn h(x: u64, n: u32) -> u64 {
    debug_assert!((2..=MAX_INDEX_BITS).contains(&n), "h: n={n} out of range");
    debug_assert_eq!(x & !mask(n), 0, "h: operand wider than {n} bits");
    let msb = (x >> (n - 1)) & 1;
    let lsb = x & 1;
    (x >> 1) | ((msb ^ lsb) << (n - 1))
}

/// The inverse of [`h`]: `h_inv(h(x, n), n) == x`.
///
/// # Panics
///
/// Same preconditions as [`h`].
#[inline]
pub fn h_inv(x: u64, n: u32) -> u64 {
    debug_assert!(
        (2..=MAX_INDEX_BITS).contains(&n),
        "h_inv: n={n} out of range"
    );
    debug_assert_eq!(x & !mask(n), 0, "h_inv: operand wider than {n} bits");
    let b_n = (x >> (n - 1)) & 1;
    let b_n1 = (x >> (n - 2)) & 1;
    ((x << 1) & mask(n)) | (b_n ^ b_n1)
}

/// Apply [`h`] `times` times.
#[inline]
fn h_pow(mut x: u64, n: u32, times: u32) -> u64 {
    for _ in 0..times {
        x = h(x, n);
    }
    x
}

/// Apply [`h_inv`] `times` times.
#[inline]
fn h_inv_pow(mut x: u64, n: u32, times: u32) -> u64 {
    for _ in 0..times {
        x = h_inv(x, n);
    }
    x
}

/// The `n`-bit index of `packed` in bank `bank` (0-based).
///
/// `packed` is the binary representation of the information vector
/// `(V3, V2, V1)`; only the low `2n` bits participate (`V3` is ignored, as
/// in the paper).
///
/// Banks 0–2 are exactly the paper's `f0`, `f1`, `f2`; banks 3 and 4 extend
/// the family for the 5-bank ablation.
///
/// # Panics
///
/// Panics if `bank >= NUM_SKEW_FUNCTIONS` or `n` is out of `2..=30`.
///
/// ```
/// use bpred_core::skew::skew_index;
///
/// let v = 0b1101_0110_1010;
/// let i0 = skew_index(0, v, 6);
/// let i1 = skew_index(1, v, 6);
/// assert!(i0 < 64 && i1 < 64);
/// ```
#[inline]
pub fn skew_index(bank: usize, packed: u64, n: u32) -> u64 {
    assert!(
        (2..=MAX_INDEX_BITS).contains(&n),
        "skew_index: n={n} out of range 2..=30"
    );
    let m = mask(n);
    let v1 = packed & m;
    let v2 = (packed >> n) & m;
    match bank {
        0 => h(v1, n) ^ h_inv(v2, n) ^ v2,
        1 => h(v1, n) ^ h_inv(v2, n) ^ v1,
        2 => h_inv(v1, n) ^ h(v2, n) ^ v2,
        3 => h_inv(v1, n) ^ h(v2, n) ^ v1,
        4 => h_pow(v1, n, 2) ^ h_inv_pow(v2, n, 2) ^ v2,
        _ => panic!("skew bank {bank} not in 0..{NUM_SKEW_FUNCTIONS}"),
    }
}

/// The collision image of a *difference* vector under bank `bank`.
///
/// Because every `f_i` is linear over GF(2), `f_i(V) == f_i(W)` iff
/// `collision_image(bank, V ^ W, n) == 0`. Exposed for the aliasing
/// analyses and the dispersion-property tests.
#[inline]
pub fn collision_image(bank: usize, diff: u64, n: u32) -> u64 {
    skew_index(bank, diff, n)
}

/// Check the inter-bank dispersion property between two banks by rank
/// computation over GF(2).
///
/// Returns `true` when the only difference vector `(X, Y)` (low `2n` bits)
/// that collides in *both* banks is zero — i.e. the combined linear map
/// `(X, Y) -> (c_i, c_j)` has full rank `2n`.
pub fn banks_disperse(bank_i: usize, bank_j: usize, n: u32) -> bool {
    dispersion_kernel_dim(bank_i, bank_j, n) == 0
}

/// Dimension of the space of difference vectors that collide in *both*
/// banks simultaneously.
///
/// 0 means perfect dispersion (the paper's property holds exactly);
/// dimension `d > 0` means a fraction `2^(d-2n)` of difference patterns
/// double-collide. For the paper's `f0..f2` this is 0 when
/// `n ≢ 2 (mod 3)` and 2 otherwise.
pub fn dispersion_kernel_dim(bank_i: usize, bank_j: usize, n: u32) -> usize {
    assert_ne!(bank_i, bank_j, "dispersion is a property of distinct banks");
    // Build the 2n x 2n matrix column by column from basis vectors, then
    // compute its rank by Gaussian elimination on u64 rows.
    let dims = (2 * n) as usize;
    let mut rows: Vec<u64> = Vec::with_capacity(dims);
    for bit in 0..dims {
        let basis = 1u64 << bit;
        let ci = collision_image(bank_i, basis, n);
        let cj = collision_image(bank_j, basis, n);
        // Column vector of the map for this basis element, packed as
        // (c_j << n) | c_i. Transpose is irrelevant for rank.
        rows.push((cj << n) | ci);
    }
    dims - rank_gf2(&mut rows)
}

/// Rank of a set of GF(2) row vectors (each a u64 bitmask).
fn rank_gf2(rows: &mut [u64]) -> usize {
    let mut rank = 0;
    for bit in (0..64).rev() {
        let Some(pivot) = (rank..rows.len()).find(|&r| rows[r] >> bit & 1 == 1) else {
            continue;
        };
        rows.swap(rank, pivot);
        let lead = rows[rank];
        for (r, row) in rows.iter_mut().enumerate() {
            if r != rank && (*row >> bit) & 1 == 1 {
                *row ^= lead;
            }
        }
        rank += 1;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_matches_bit_level_definition() {
        // n = 4, y = (y4,y3,y2,y1) = 0b1011 -> (y4^y1, y4, y3, y2) = (1^1,1,0,1) = 0b0101
        assert_eq!(h(0b1011, 4), 0b0101);
        // y = 0b1000 -> (1^0, 1, 0, 0) = 0b1100
        assert_eq!(h(0b1000, 4), 0b1100);
        // y = 0b0001 -> (0^1, 0, 0, 0) = 0b1000
        assert_eq!(h(0b0001, 4), 0b1000);
    }

    #[test]
    fn h_inv_inverts_h_exhaustively_small_n() {
        for n in 2..=12u32 {
            for x in 0..(1u64 << n) {
                assert_eq!(h_inv(h(x, n), n), x, "n={n} x={x:#b}");
                assert_eq!(h(h_inv(x, n), n), x, "n={n} x={x:#b}");
            }
        }
    }

    #[test]
    fn h_is_a_bijection_small_n() {
        for n in 2..=10u32 {
            let mut seen = vec![false; 1 << n];
            for x in 0..(1u64 << n) {
                let y = h(x, n) as usize;
                assert!(!seen[y], "h not injective at n={n}");
                seen[y] = true;
            }
        }
    }

    #[test]
    fn skew_functions_are_distinct() {
        // On a random-ish sample, no two banks compute the same function.
        let n = 10;
        for i in 0..NUM_SKEW_FUNCTIONS {
            for j in (i + 1)..NUM_SKEW_FUNCTIONS {
                let differs = (0..4096u64)
                    .map(|s| s.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .any(|v| {
                        let v = v & ((1 << (2 * n)) - 1);
                        skew_index(i, v, n) != skew_index(j, v, n)
                    });
                assert!(differs, "banks {i} and {j} compute identical functions");
            }
        }
    }

    #[test]
    fn skew_index_ignores_v3() {
        let n = 8;
        let low = 0xABCDu64 & ((1 << 16) - 1);
        for bank in 0..3 {
            assert_eq!(
                skew_index(bank, low, n),
                skew_index(bank, low | (0xFFF << 16), n),
                "V3 must not influence bank {bank}"
            );
        }
    }

    #[test]
    fn paper_banks_disperse_at_experiment_sizes() {
        // The paper's property, verified by rank: a difference vector that
        // collides in one of f0,f1,f2 cannot collide in another unless its
        // low 2n bits are zero. Holds exactly when n % 3 != 2; at
        // n % 3 == 2 the kernel has dimension exactly 2 (3 nonzero
        // double-colliding patterns out of 2^2n - 1, i.e. negligible).
        for n in 3..=20u32 {
            for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
                let dim = dispersion_kernel_dim(i, j, n);
                if n % 3 == 2 {
                    assert_eq!(dim, 2, "banks {i},{j} at n={n}");
                } else {
                    assert_eq!(dim, 0, "banks {i},{j} fail dispersion at n={n}");
                }
            }
        }
    }

    #[test]
    fn extension_banks_keep_kernels_tiny() {
        // Banks 3 and 4 are our extension for the 5-bank ablation; verify
        // that every pairwise kernel stays negligible (dim <= 3) at the
        // sizes the ablation sweeps.
        for n in [6u32, 8, 10, 12, 14, 16] {
            for i in 0..NUM_SKEW_FUNCTIONS {
                for j in (i + 1)..NUM_SKEW_FUNCTIONS {
                    let dim = dispersion_kernel_dim(i, j, n);
                    assert!(
                        dim <= 3,
                        "banks {i},{j} kernel dim {dim} too large at n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn dispersion_brute_force_matches_rank_small_n() {
        // Cross-check the linear-algebra machinery against brute force.
        for n in [3u32, 4, 6] {
            for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
                let mut kernel_count = 0u64;
                for d in 0..(1u64 << (2 * n)) {
                    if collision_image(i, d, n) == 0 && collision_image(j, d, n) == 0 {
                        kernel_count += 1;
                    }
                }
                let dim = dispersion_kernel_dim(i, j, n);
                assert_eq!(kernel_count, 1u64 << dim, "n={n} pair=({i},{j})");
            }
        }
    }

    #[test]
    fn collision_image_is_linear() {
        let n = 12;
        let m = (1u64 << (2 * n)) - 1;
        let a = 0x5A5A_5A5A & m;
        let b = 0x1234_CAFE & m;
        for bank in 0..NUM_SKEW_FUNCTIONS {
            assert_eq!(
                skew_index(bank, a, n) ^ skew_index(bank, b, n),
                collision_image(bank, a ^ b, n),
                "bank {bank} not linear"
            );
        }
    }

    #[test]
    fn indices_stay_in_range() {
        for n in [2u32, 7, 13, 30] {
            for bank in 0..NUM_SKEW_FUNCTIONS {
                for seed in 0..64u64 {
                    let v = seed.wrapping_mul(0xD1B5_4A32_D192_ED03);
                    let v = if n >= 30 {
                        v & ((1 << 60) - 1)
                    } else {
                        v & ((1 << (2 * n)) - 1)
                    };
                    assert!(skew_index(bank, v, n) < (1 << n));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not in 0..")]
    fn out_of_range_bank_panics() {
        skew_index(5, 0, 8);
    }

    #[test]
    fn rank_gf2_known_cases() {
        assert_eq!(rank_gf2(&mut [0b1, 0b10, 0b100]), 3);
        assert_eq!(rank_gf2(&mut [0b11, 0b10, 0b01]), 2);
        assert_eq!(rank_gf2(&mut [0, 0, 0]), 0);
        assert_eq!(rank_gf2(&mut [0b101, 0b101]), 1);
    }
}
