//! Hybrid predictors: the McFarling combining predictor and 2bc-gskew.
//!
//! Section 7 of the paper suggests applying skewing inside hybrid schemes
//! as future work. Both structures here realize that suggestion:
//!
//! * [`McFarling`] combines any two component predictors with a meta table
//!   of 2-bit counters (McFarling, 1993) — e.g. gshare + bimodal, or
//!   gskew + bimodal.
//! * [`TwoBcGskew`] is the arrangement eventually adopted (in refined form)
//!   by the Alpha EV8: a bimodal bank, two skew-indexed global banks with
//!   different history lengths, and a meta bank choosing between the
//!   bimodal prediction and the 3-way majority. Our update rules follow the
//!   published EV8 description in simplified form: on a correct overall
//!   prediction only agreeing tables are strengthened (partial update); on
//!   a misprediction all participating tables are trained; the meta table
//!   is trained whenever the bimodal and majority predictions disagree.

use crate::counter::{CounterKind, CounterTable};
use crate::error::ConfigError;
use crate::history::GlobalHistory;
use crate::predictor::{BranchPredictor, Outcome, Prediction};
use crate::skew::skew_index;
use crate::vector::InfoVector;
use std::fmt;

/// A combining predictor: two components and a meta-predictor choosing
/// between them per branch address.
///
/// The meta table holds 2-bit counters indexed by the branch address; a
/// high counter selects component 1, a low counter component 0. The meta
/// counter is trained only when the components disagree.
///
/// ```
/// use bpred_core::prelude::*;
///
/// let gshare = Gshare::new(10, 8, CounterKind::TwoBit)?;
/// let bimodal = Bimodal::new(10, CounterKind::TwoBit)?;
/// let mut p = McFarling::new(Box::new(bimodal), Box::new(gshare), 10)?;
/// let _ = p.predict(0x1000);
/// p.update(0x1000, Outcome::Taken);
/// # Ok::<(), bpred_core::error::ConfigError>(())
/// ```
pub struct McFarling {
    c0: Box<dyn BranchPredictor>,
    c1: Box<dyn BranchPredictor>,
    meta: CounterTable,
    meta_n: u32,
}

impl McFarling {
    /// Combine `c0` and `c1` with a `2^meta_entries_log2`-entry meta table.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `meta_entries_log2` is 0 or above 30.
    pub fn new(
        c0: Box<dyn BranchPredictor>,
        c1: Box<dyn BranchPredictor>,
        meta_entries_log2: u32,
    ) -> Result<Self, ConfigError> {
        if meta_entries_log2 == 0 || meta_entries_log2 > 30 {
            return Err(ConfigError::invalid(
                "meta_entries_log2",
                meta_entries_log2,
                "must be in 1..=30",
            ));
        }
        Ok(McFarling {
            c0,
            c1,
            meta: CounterTable::new(meta_entries_log2, CounterKind::TwoBit),
            meta_n: meta_entries_log2,
        })
    }

    #[inline]
    fn meta_index(&self, pc: u64) -> u64 {
        (pc >> 2) & ((1 << self.meta_n) - 1)
    }

    /// Which component the meta table currently selects for `pc`.
    pub fn selects_component_1(&self, pc: u64) -> bool {
        self.meta.predict(self.meta_index(pc)).is_taken()
    }
}

impl fmt::Debug for McFarling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("McFarling")
            .field("c0", &self.c0.name())
            .field("c1", &self.c1.name())
            .field("meta_entries", &(1u64 << self.meta_n))
            .finish()
    }
}

impl BranchPredictor for McFarling {
    fn predict(&mut self, pc: u64) -> Prediction {
        if self.selects_component_1(pc) {
            self.c1.predict(pc)
        } else {
            self.c0.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        let p0 = self.c0.predict(pc).outcome;
        let p1 = self.c1.predict(pc).outcome;
        if p0 != p1 {
            // Train the chooser toward whichever component was right.
            self.meta
                .train(self.meta_index(pc), Outcome::from(p1 == outcome));
        }
        self.c0.update(pc, outcome);
        self.c1.update(pc, outcome);
    }

    fn record_unconditional(&mut self, pc: u64) {
        self.c0.record_unconditional(pc);
        self.c1.record_unconditional(pc);
    }

    fn name(&self) -> String {
        format!("mcfarling[{} | {}]", self.c0.name(), self.c1.name())
    }

    fn storage_bits(&self) -> u64 {
        self.c0.storage_bits() + self.c1.storage_bits() + self.meta.storage_bits()
    }

    fn reset(&mut self) {
        self.c0.reset();
        self.c1.reset();
        self.meta.reset();
    }
}

/// The 2bc-gskew predictor: bimodal + two skewed global banks + meta.
///
/// All four banks have `2^n` entries of 2-bit counters. The G0 bank uses a
/// shortened history (`h/2` bits) and the G1 bank the full `h` bits; both
/// are indexed with skewing functions, the bimodal and meta banks with
/// address truncation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoBcGskew {
    bim: CounterTable,
    g0: CounterTable,
    g1: CounterTable,
    meta: CounterTable,
    n: u32,
    history: GlobalHistory,
    short_bits: u32,
}

impl TwoBcGskew {
    /// A 4x`2^n`-entry 2bc-gskew with `history_bits` of global history.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `n` is out of `2..=30` or `history_bits`
    /// exceeds 64.
    pub fn new(n: u32, history_bits: u32) -> Result<Self, ConfigError> {
        if !(2..=30).contains(&n) {
            return Err(ConfigError::invalid("n", n, "must be in 2..=30"));
        }
        if history_bits > 64 {
            return Err(ConfigError::invalid(
                "history_bits",
                history_bits,
                "must be at most 64",
            ));
        }
        let kind = CounterKind::TwoBit;
        Ok(TwoBcGskew {
            bim: CounterTable::new(n, kind),
            g0: CounterTable::new(n, kind),
            g1: CounterTable::new(n, kind),
            meta: CounterTable::new(n, kind),
            n,
            history: GlobalHistory::new(history_bits),
            short_bits: history_bits / 2,
        })
    }

    #[inline]
    fn addr_index(&self, pc: u64) -> u64 {
        (pc >> 2) & ((1 << self.n) - 1)
    }

    #[inline]
    fn indices(&self, pc: u64) -> (u64, u64, u64) {
        let hist = self.history.value();
        let short = InfoVector::new(pc, hist, self.short_bits);
        let long = InfoVector::new(pc, hist, self.history.len());
        (
            self.addr_index(pc),
            skew_index(1, short.packed(), self.n),
            skew_index(2, long.packed(), self.n),
        )
    }

    #[inline]
    fn components(&self, pc: u64) -> (Outcome, Outcome, Outcome, bool) {
        let (ib, i0, i1) = self.indices(pc);
        let bim = self.bim.predict(ib);
        let g0 = self.g0.predict(i0);
        let g1 = self.g1.predict(i1);
        let use_gskew = self.meta.predict(ib).is_taken();
        (bim, g0, g1, use_gskew)
    }

    #[inline]
    fn majority(a: Outcome, b: Outcome, c: Outcome) -> Outcome {
        let taken = [a, b, c].iter().filter(|o| o.is_taken()).count();
        Outcome::from(taken >= 2)
    }
}

impl BranchPredictor for TwoBcGskew {
    fn predict(&mut self, pc: u64) -> Prediction {
        let (bim, g0, g1, use_gskew) = self.components(pc);
        let majority = Self::majority(bim, g0, g1);
        Prediction::of(if use_gskew { majority } else { bim })
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        let (ib, i0, i1) = self.indices(pc);
        let (bim, g0, g1, use_gskew) = self.components(pc);
        let majority = Self::majority(bim, g0, g1);
        let overall = if use_gskew { majority } else { bim };

        // Train the meta chooser when the two candidate predictions differ.
        if majority != bim {
            self.meta.train(ib, Outcome::from(majority == outcome));
        }

        if overall == outcome {
            // Partial update: strengthen only the agreeing tables.
            if bim == outcome {
                self.bim.train(ib, outcome);
            }
            if g0 == outcome {
                self.g0.train(i0, outcome);
            }
            if g1 == outcome {
                self.g1.train(i1, outcome);
            }
        } else {
            self.bim.train(ib, outcome);
            self.g0.train(i0, outcome);
            self.g1.train(i1, outcome);
        }
        self.history.push(outcome);
    }

    fn record_unconditional(&mut self, _pc: u64) {
        self.history.push(Outcome::Taken);
    }

    fn name(&self) -> String {
        format!("2bcgskew 4x{} h={}", 1u64 << self.n, self.history.len())
    }

    fn storage_bits(&self) -> u64 {
        self.bim.storage_bits()
            + self.g0.storage_bits()
            + self.g1.storage_bits()
            + self.meta.storage_bits()
    }

    fn reset(&mut self) {
        self.bim.reset();
        self.g0.reset();
        self.g1.reset();
        self.meta.reset();
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bimodal::Bimodal;
    use crate::gshare::Gshare;

    fn mcf() -> McFarling {
        McFarling::new(
            Box::new(Bimodal::new(8, CounterKind::TwoBit).unwrap()),
            Box::new(Gshare::new(8, 4, CounterKind::TwoBit).unwrap()),
            8,
        )
        .unwrap()
    }

    #[test]
    fn mcfarling_learns_biased_branch() {
        let mut p = mcf();
        for _ in 0..8 {
            p.update(0x1000, Outcome::Taken);
        }
        assert_eq!(p.predict(0x1000).outcome, Outcome::Taken);
    }

    #[test]
    fn mcfarling_meta_moves_toward_better_component() {
        let mut p = mcf();
        // Alternating branch: gshare (with history) learns it, bimodal
        // oscillates. The meta table should migrate toward component 1.
        let mut o = Outcome::Taken;
        for _ in 0..200 {
            p.update(0x2000, o);
            o = o.flipped();
        }
        assert!(
            p.selects_component_1(0x2000),
            "chooser should pick the history-based component for an alternating branch"
        );
        // And the overall prediction should now be correct.
        let mut correct = 0;
        for _ in 0..20 {
            if p.predict(0x2000).outcome == o {
                correct += 1;
            }
            p.update(0x2000, o);
            o = o.flipped();
        }
        assert!(correct >= 18, "got {correct}/20");
    }

    #[test]
    fn mcfarling_storage_sums_components() {
        let p = mcf();
        assert_eq!(p.storage_bits(), 256 * 2 + 256 * 2 + 256 * 2);
    }

    #[test]
    fn mcfarling_rejects_bad_meta() {
        let r = McFarling::new(
            Box::new(Bimodal::new(8, CounterKind::TwoBit).unwrap()),
            Box::new(Bimodal::new(8, CounterKind::TwoBit).unwrap()),
            0,
        );
        assert!(r.is_err());
    }

    #[test]
    fn mcfarling_propagates_unconditionals_to_components() {
        let mut a = McFarling::new(
            Box::new(Gshare::new(8, 4, CounterKind::TwoBit).unwrap()),
            Box::new(Gshare::new(8, 4, CounterKind::TwoBit).unwrap()),
            8,
        )
        .unwrap();
        // Same updates with and without an interleaved unconditional: the
        // history-sensitive components must diverge.
        let drive = |p: &mut McFarling, uncond: bool| {
            p.update(0x100, Outcome::Taken);
            if uncond {
                p.record_unconditional(0x200);
            }
            // Not-taken training against the weakly-taken boot state, so
            // trained entries are distinguishable from untouched ones.
            for _ in 0..4 {
                p.update(0x300, Outcome::NotTaken);
            }
            p.predict(0x304).outcome
        };
        let mut b = McFarling::new(
            Box::new(Gshare::new(8, 4, CounterKind::TwoBit).unwrap()),
            Box::new(Gshare::new(8, 4, CounterKind::TwoBit).unwrap()),
            8,
        )
        .unwrap();
        let _ = drive(&mut a, false);
        let _ = drive(&mut b, true);
        // The two meta tables saw identical agreement patterns, but the
        // component tables were trained at different indices; probe a pc
        // whose counter was trained only in one of them.
        let mut diverged = false;
        for pc in (0x0..0x400u64).step_by(4) {
            if a.predict(pc) != b.predict(pc) {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "unconditional history shift had no effect");
    }

    #[test]
    fn mcfarling_reset_restores_initial_behavior() {
        let mut p = mcf();
        let fresh_prediction = p.predict(0x1234);
        for i in 0..200u64 {
            p.update(0x1000 + 4 * (i % 13), Outcome::from(i % 3 == 0));
        }
        p.reset();
        assert_eq!(p.predict(0x1234), fresh_prediction);
    }

    #[test]
    fn mcfarling_name_lists_components() {
        let p = mcf();
        let name = p.name();
        assert!(name.contains("bimodal"), "{name}");
        assert!(name.contains("gshare"), "{name}");
    }

    #[test]
    fn twobc_learns_biased_branch() {
        let mut p = TwoBcGskew::new(8, 8).unwrap();
        for _ in 0..8 {
            p.update(0x1000, Outcome::Taken);
        }
        assert_eq!(p.predict(0x1000).outcome, Outcome::Taken);
    }

    #[test]
    fn twobc_learns_alternating_branch() {
        let mut p = TwoBcGskew::new(10, 8).unwrap();
        let mut o = Outcome::Taken;
        for _ in 0..300 {
            p.update(0x2000, o);
            o = o.flipped();
        }
        let mut correct = 0;
        for _ in 0..40 {
            if p.predict(0x2000).outcome == o {
                correct += 1;
            }
            p.update(0x2000, o);
            o = o.flipped();
        }
        assert!(correct >= 36, "got {correct}/40");
    }

    #[test]
    fn twobc_storage_and_name() {
        let p = TwoBcGskew::new(10, 12).unwrap();
        assert_eq!(p.storage_bits(), 4 * 1024 * 2);
        assert_eq!(p.name(), "2bcgskew 4x1024 h=12");
    }

    #[test]
    fn twobc_reset() {
        let mut p = TwoBcGskew::new(8, 8).unwrap();
        for i in 0..100u64 {
            p.update(0x1000 + 4 * (i % 9), Outcome::from(i % 2 == 0));
        }
        let fresh = TwoBcGskew::new(8, 8).unwrap();
        p.reset();
        assert_eq!(p, fresh);
    }

    #[test]
    fn twobc_rejects_bad_config() {
        assert!(TwoBcGskew::new(1, 8).is_err());
        assert!(TwoBcGskew::new(10, 65).is_err());
    }
}
