//! The *gshare* predictor (McFarling, 1993): global history XORed with the
//! branch address. The paper's standard single-bank baseline.

use crate::counter::CounterKind;
use crate::error::ConfigError;
use crate::index::IndexFunction;
use crate::onebank::OneBank;
use crate::predictor::{BranchPredictor, Outcome, Prediction};

/// A single-bank, tag-less gshare predictor.
///
/// When the history is shorter than the index, history bits are XORed with
/// the *high-order* end of the low-order address bits (footnote 1 of the
/// paper).
///
/// ```
/// use bpred_core::prelude::*;
///
/// let mut p = Gshare::new(12, 8, CounterKind::TwoBit)?;
/// let pc = 0x4000_0040;
/// let _ = p.predict(pc);
/// p.update(pc, Outcome::Taken);
/// # Ok::<(), bpred_core::error::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gshare {
    inner: OneBank,
}

impl Gshare {
    /// A gshare predictor with `2^entries_log2` counters and `history_bits`
    /// bits of global history.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `entries_log2` is 0 or above 30, or if
    /// `history_bits` exceeds 64.
    pub fn new(
        entries_log2: u32,
        history_bits: u32,
        kind: CounterKind,
    ) -> Result<Self, ConfigError> {
        Ok(Gshare {
            inner: OneBank::new(entries_log2, history_bits, kind, IndexFunction::Gshare)?,
        })
    }

    /// `log2` of the table size.
    pub fn entries_log2(&self) -> u32 {
        self.inner.entries_log2()
    }

    /// History register length.
    pub fn history_bits(&self) -> u32 {
        self.inner.history_bits()
    }

    /// Counter width.
    pub fn counter_kind(&self) -> CounterKind {
        self.inner.counter_kind()
    }
}

impl BranchPredictor for Gshare {
    fn predict(&mut self, pc: u64) -> Prediction {
        self.inner.predict(pc)
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        self.inner.update(pc, outcome);
    }

    fn record_unconditional(&mut self, pc: u64) {
        self.inner.record_unconditional(pc);
    }

    fn name(&self) -> String {
        format!(
            "gshare {} h={} {}",
            1u64 << self.inner.entries_log2(),
            self.inner.history_bits(),
            self.inner.counter_kind()
        )
    }

    fn storage_bits(&self) -> u64 {
        self.inner.storage_bits()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Train an alternating branch whose direction is fully determined by
    /// the previous outcome; a history-indexed predictor learns it, a
    /// bimodal one cannot.
    #[test]
    fn learns_history_correlated_pattern() {
        let mut p = Gshare::new(10, 4, CounterKind::TwoBit).unwrap();
        let pc = 0x1000;
        // Pattern T,N,T,N,...: after warmup, every prediction is correct.
        let mut last = Outcome::NotTaken;
        for _ in 0..64 {
            last = last.flipped();
            p.update(pc, last);
        }
        let mut correct = 0;
        for _ in 0..32 {
            last = last.flipped();
            if p.predict(pc).outcome == last {
                correct += 1;
            }
            p.update(pc, last);
        }
        assert_eq!(correct, 32, "alternating pattern should be fully learned");
    }

    #[test]
    fn unconditional_branches_shift_history() {
        let mut a = Gshare::new(10, 4, CounterKind::TwoBit).unwrap();
        let mut b = a.clone();
        // Same conditional stream, but `b` also sees an unconditional jump:
        // as in the paper, it shifts into the global history, so the two
        // predictors' states diverge.
        a.update(0x100, Outcome::NotTaken);
        b.update(0x100, Outcome::NotTaken);
        assert_eq!(a, b);
        b.record_unconditional(0x200);
        assert_ne!(a, b, "unconditional branch must shift history");
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Gshare::new(0, 4, CounterKind::TwoBit).is_err());
        assert!(Gshare::new(10, 65, CounterKind::TwoBit).is_err());
    }

    #[test]
    fn name_mentions_parameters() {
        let p = Gshare::new(14, 12, CounterKind::TwoBit).unwrap();
        assert_eq!(p.name(), "gshare 16384 h=12 2-bit");
        assert_eq!(p.storage_bits(), 16384 * 2);
    }

    #[test]
    fn reset_clears_tables_and_history() {
        let mut p = Gshare::new(8, 8, CounterKind::TwoBit).unwrap();
        for i in 0..100u64 {
            p.update(0x1000 + 4 * (i % 7), Outcome::Taken);
        }
        p.reset();
        let q = Gshare::new(8, 8, CounterKind::TwoBit).unwrap();
        assert_eq!(p.predict(0x1000).outcome, {
            let mut q = q;
            q.predict(0x1000).outcome
        });
    }
}
