//! The ideal, unaliased predictor of section 3.1: a conceptually infinite
//! table with one automaton per `(address, history)` pair.
//!
//! Used to measure the intrinsic prediction accuracy of a history length
//! (Table 2) and as the base rate of the analytical extrapolation
//! (figure 11). Following the paper, the first encounter of a pair is
//! flagged [`Prediction::novel`] and is *not* charged as a misprediction by
//! the simulation engine.

use crate::counter::{CounterKind, SatCounter};
use crate::error::ConfigError;
use crate::history::GlobalHistory;
use crate::predictor::{BranchPredictor, Outcome, Prediction};
use crate::vector::InfoVector;
use std::collections::HashMap;

/// An infinite-capacity, conflict-free predictor.
///
/// ```
/// use bpred_core::prelude::*;
///
/// let mut p = Ideal::new(4, CounterKind::TwoBit)?;
/// let pc = 0x1000;
/// assert!(p.predict(pc).novel, "first encounter of the substream");
/// p.update(pc, Outcome::Taken);
/// # Ok::<(), bpred_core::error::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ideal {
    map: HashMap<(u64, u64), SatCounter>,
    history: GlobalHistory,
    kind: CounterKind,
    /// Count of distinct `(address, history)` pairs ever seen.
    distinct_pairs: u64,
}

impl Ideal {
    /// An unaliased predictor using `history_bits` of global history.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `history_bits` exceeds 64.
    pub fn new(history_bits: u32, kind: CounterKind) -> Result<Self, ConfigError> {
        if history_bits > 64 {
            return Err(ConfigError::invalid(
                "history_bits",
                history_bits,
                "must be at most 64",
            ));
        }
        Ok(Ideal {
            map: HashMap::new(),
            history: GlobalHistory::new(history_bits),
            kind,
            distinct_pairs: 0,
        })
    }

    /// Number of distinct `(address, history)` pairs encountered so far —
    /// the numerator of the paper's compulsory-aliasing ratio.
    pub fn distinct_pairs(&self) -> u64 {
        self.distinct_pairs
    }

    /// History register length.
    pub fn history_bits(&self) -> u32 {
        self.history.len()
    }

    #[inline]
    fn key(&self, pc: u64) -> (u64, u64) {
        InfoVector::new(pc, self.history.value(), self.history.len()).pair()
    }
}

impl BranchPredictor for Ideal {
    fn predict(&mut self, pc: u64) -> Prediction {
        match self.map.get(&self.key(pc)) {
            Some(counter) => Prediction::of(counter.predict()),
            None => Prediction::novel(Outcome::NotTaken),
        }
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        let key = self.key(pc);
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().train(outcome),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.distinct_pairs += 1;
                e.insert(SatCounter::seeded(self.kind, outcome));
            }
        }
        self.history.push(outcome);
    }

    fn record_unconditional(&mut self, _pc: u64) {
        self.history.push(Outcome::Taken);
    }

    fn name(&self) -> String {
        format!("ideal h={} {}", self.history.len(), self.kind)
    }

    fn storage_bits(&self) -> u64 {
        // Conceptually infinite; report the bits actually allocated.
        self.map.len() as u64 * u64::from(self.kind.bits())
    }

    fn reset(&mut self) {
        self.map.clear();
        self.history.clear();
        self.distinct_pairs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_aliases() {
        // Two branches that would collide in any small table get separate
        // automatons here.
        let mut p = Ideal::new(0, CounterKind::TwoBit).unwrap();
        for _ in 0..4 {
            p.update(0x1000, Outcome::Taken);
            p.update(0x1000 + (1 << 20), Outcome::NotTaken);
        }
        assert_eq!(p.predict(0x1000).outcome, Outcome::Taken);
        assert_eq!(p.predict(0x1000 + (1 << 20)).outcome, Outcome::NotTaken);
    }

    #[test]
    fn first_encounter_is_novel() {
        let mut p = Ideal::new(4, CounterKind::TwoBit).unwrap();
        assert!(p.predict(0x1000).novel);
        p.update(0x1000, Outcome::Taken);
        // Same pc but the history changed, so the pair is again novel.
        assert!(p.predict(0x1000).novel);
    }

    #[test]
    fn same_pair_is_not_novel() {
        let mut p = Ideal::new(0, CounterKind::TwoBit).unwrap();
        p.update(0x1000, Outcome::Taken);
        assert!(!p.predict(0x1000).novel, "h=0 keeps the pair stable");
    }

    #[test]
    fn seeding_predicts_first_outcome() {
        let mut p = Ideal::new(0, CounterKind::TwoBit).unwrap();
        p.update(0x1000, Outcome::Taken);
        assert_eq!(p.predict(0x1000).outcome, Outcome::Taken);
        p.reset();
        p.update(0x1000, Outcome::NotTaken);
        assert_eq!(p.predict(0x1000).outcome, Outcome::NotTaken);
    }

    #[test]
    fn distinct_pairs_counts_substreams() {
        let mut p = Ideal::new(2, CounterKind::TwoBit).unwrap();
        // Branch at fixed pc with alternating outcome: histories cycle
        // through 01,10 after warmup; plus the two initial states.
        let mut o = Outcome::Taken;
        for _ in 0..20 {
            p.update(0x1000, o);
            o = o.flipped();
        }
        assert!(p.distinct_pairs() >= 2);
        assert!(p.distinct_pairs() <= 4, "at most 4 histories of 2 bits");
    }

    #[test]
    fn substream_separation_by_history() {
        // The same static branch behaves differently under different
        // histories; the ideal predictor learns both perfectly.
        let mut p = Ideal::new(1, CounterKind::OneBit).unwrap();
        // Outcome = previous outcome flipped (alternating): under history
        // `1` the branch is not-taken, under history `0` it is taken.
        let mut o = Outcome::Taken;
        for _ in 0..8 {
            p.update(0x1000, o);
            o = o.flipped();
        }
        let mut correct = 0;
        for _ in 0..8 {
            if p.predict(0x1000).outcome == o {
                correct += 1;
            }
            p.update(0x1000, o);
            o = o.flipped();
        }
        assert_eq!(correct, 8);
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = Ideal::new(4, CounterKind::TwoBit).unwrap();
        p.update(0x1000, Outcome::Taken);
        p.reset();
        assert_eq!(p.distinct_pairs(), 0);
        assert!(p.predict(0x1000).novel);
        assert_eq!(p.storage_bits(), 0);
    }
}
