//! Per-address (local-history) two-level predictors, and their skewed
//! variant.
//!
//! Section 7 of the paper: "The same technique could be applied to remove
//! aliasing in other prediction methods, including per-address history
//! schemes". This module provides the substrate for that claim:
//!
//! * [`Pas`] — a classic PAs-style two-level predictor (Yeh & Patt): a
//!   tag-less branch-history table of per-branch local histories, and a
//!   pattern table indexed by the concatenation of address and local
//!   history. Being direct-mapped and tag-less, both levels alias.
//! * [`SkewedPas`] — the future-work variant: the same first level, but
//!   three pattern banks indexed with the inter-bank skewing functions
//!   over the `(address, local history)` vector, majority-voted, with
//!   partial update — gskew's recipe transplanted to local histories.

use crate::counter::{CounterKind, CounterTable};
use crate::error::ConfigError;
use crate::gskew::UpdatePolicy;
use crate::index::IndexFunction;
use crate::predictor::{BranchPredictor, Outcome, Prediction};
use crate::skew::skew_index;
use crate::vector::InfoVector;

/// The first level shared by both variants: a table of per-branch local
/// history registers, indexed by address truncation (tag-less, so two
/// branches may share a history register — first-level aliasing).
#[derive(Debug, Clone, PartialEq, Eq)]
struct BranchHistoryTable {
    histories: Vec<u64>,
    n: u32,
    local_bits: u32,
}

impl BranchHistoryTable {
    fn new(entries_log2: u32, local_bits: u32) -> Result<Self, ConfigError> {
        if entries_log2 == 0 || entries_log2 > 30 {
            return Err(ConfigError::invalid(
                "bht_entries_log2",
                entries_log2,
                "must be in 1..=30",
            ));
        }
        if local_bits == 0 || local_bits > 32 {
            return Err(ConfigError::invalid(
                "local_bits",
                local_bits,
                "must be in 1..=32",
            ));
        }
        Ok(BranchHistoryTable {
            histories: vec![0; 1 << entries_log2],
            n: entries_log2,
            local_bits,
        })
    }

    #[inline]
    fn slot(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.n) - 1)) as usize
    }

    #[inline]
    fn history(&self, pc: u64) -> u64 {
        self.histories[self.slot(pc)]
    }

    #[inline]
    fn push(&mut self, pc: u64, outcome: Outcome) {
        let slot = self.slot(pc);
        let mask = (1u64 << self.local_bits) - 1;
        self.histories[slot] = ((self.histories[slot] << 1) | u64::from(outcome.is_taken())) & mask;
    }

    fn storage_bits(&self) -> u64 {
        self.histories.len() as u64 * u64::from(self.local_bits)
    }

    fn reset(&mut self) {
        self.histories.fill(0);
    }
}

/// A PAs-style local-history predictor with a single direct-mapped
/// pattern table.
///
/// ```
/// use bpred_core::pas::Pas;
/// use bpred_core::counter::CounterKind;
/// use bpred_core::predictor::{BranchPredictor, Outcome};
///
/// let mut p = Pas::new(10, 8, 12, CounterKind::TwoBit)?;
/// // An alternating branch is learned from its own local history alone.
/// for i in 0..64 {
///     p.update(0x1000, if i % 2 == 0 { Outcome::Taken } else { Outcome::NotTaken });
/// }
/// # Ok::<(), bpred_core::error::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pas {
    bht: BranchHistoryTable,
    table: CounterTable,
    n: u32,
}

impl Pas {
    /// A PAs predictor: `2^bht_entries_log2` local histories of
    /// `local_bits` bits, and a `2^entries_log2`-entry pattern table.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on out-of-range sizes.
    pub fn new(
        bht_entries_log2: u32,
        local_bits: u32,
        entries_log2: u32,
        kind: CounterKind,
    ) -> Result<Self, ConfigError> {
        if entries_log2 == 0 || entries_log2 > 30 {
            return Err(ConfigError::invalid(
                "entries_log2",
                entries_log2,
                "must be in 1..=30",
            ));
        }
        Ok(Pas {
            bht: BranchHistoryTable::new(bht_entries_log2, local_bits)?,
            table: CounterTable::new(entries_log2, kind),
            n: entries_log2,
        })
    }

    #[inline]
    fn index(&self, pc: u64) -> u64 {
        let v = InfoVector::new(pc, self.bht.history(pc), self.bht.local_bits);
        // PAs concatenates address bits above the local history.
        IndexFunction::Gselect.index(&v, self.n)
    }
}

impl BranchPredictor for Pas {
    fn predict(&mut self, pc: u64) -> Prediction {
        Prediction::of(self.table.predict(self.index(pc)))
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        let idx = self.index(pc);
        self.table.train(idx, outcome);
        self.bht.push(pc, outcome);
    }

    fn name(&self) -> String {
        format!(
            "pas bht={}x{} table={} {}",
            self.bht.histories.len(),
            self.bht.local_bits,
            1u64 << self.n,
            self.table.kind()
        )
    }

    fn storage_bits(&self) -> u64 {
        self.bht.storage_bits() + self.table.storage_bits()
    }

    fn reset(&mut self) {
        self.bht.reset();
        self.table.reset();
    }
}

/// The skewed per-address predictor: three pattern banks indexed by the
/// `f0..f2` skewing functions over `(address, local history)`, majority
/// vote, and (by default) partial update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkewedPas {
    bht: BranchHistoryTable,
    banks: Vec<CounterTable>,
    n: u32,
    policy: UpdatePolicy,
}

impl SkewedPas {
    /// A skewed PAs: `2^bht_entries_log2` local histories of `local_bits`
    /// bits, and three `2^bank_entries_log2`-entry pattern banks.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on out-of-range sizes.
    pub fn new(
        bht_entries_log2: u32,
        local_bits: u32,
        bank_entries_log2: u32,
        kind: CounterKind,
        policy: UpdatePolicy,
    ) -> Result<Self, ConfigError> {
        if !(2..=30).contains(&bank_entries_log2) {
            return Err(ConfigError::invalid(
                "bank_entries_log2",
                bank_entries_log2,
                "must be in 2..=30",
            ));
        }
        Ok(SkewedPas {
            bht: BranchHistoryTable::new(bht_entries_log2, local_bits)?,
            banks: (0..3)
                .map(|_| CounterTable::new(bank_entries_log2, kind))
                .collect(),
            n: bank_entries_log2,
            policy,
        })
    }

    #[inline]
    fn packed(&self, pc: u64) -> u64 {
        InfoVector::new(pc, self.bht.history(pc), self.bht.local_bits).packed()
    }
}

impl BranchPredictor for SkewedPas {
    fn predict(&mut self, pc: u64) -> Prediction {
        let packed = self.packed(pc);
        let taken = self
            .banks
            .iter()
            .enumerate()
            .filter(|(b, t)| t.predict(skew_index(*b, packed, self.n)).is_taken())
            .count();
        Prediction::of(Outcome::from(2 * taken > self.banks.len()))
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        let packed = self.packed(pc);
        let indices: Vec<u64> = (0..self.banks.len())
            .map(|b| skew_index(b, packed, self.n))
            .collect();
        let votes: Vec<Outcome> = self
            .banks
            .iter()
            .zip(&indices)
            .map(|(t, &i)| t.predict(i))
            .collect();
        let taken = votes.iter().filter(|o| o.is_taken()).count();
        let overall = Outcome::from(2 * taken > votes.len());
        for ((bank, &idx), &vote) in self.banks.iter_mut().zip(&indices).zip(&votes) {
            let train = match self.policy {
                UpdatePolicy::Total => true,
                UpdatePolicy::Partial => overall != outcome || vote == outcome,
            };
            if train {
                bank.train(idx, outcome);
            }
        }
        self.bht.push(pc, outcome);
    }

    fn name(&self) -> String {
        format!(
            "spas bht={}x{} 3x{} {} {}",
            self.bht.histories.len(),
            self.bht.local_bits,
            1u64 << self.n,
            self.banks[0].kind(),
            self.policy
        )
    }

    fn storage_bits(&self) -> u64 {
        self.bht.storage_bits()
            + self
                .banks
                .iter()
                .map(CounterTable::storage_bits)
                .sum::<u64>()
    }

    fn reset(&mut self) {
        self.bht.reset();
        for bank in &mut self.banks {
            bank.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut dyn BranchPredictor, pc: u64, pattern: &[bool], reps: usize) -> f64 {
        let mut wrong = 0u64;
        let mut total = 0u64;
        for rep in 0..reps {
            for &taken in pattern {
                let outcome = Outcome::from(taken);
                if rep > reps / 2 {
                    total += 1;
                    if p.predict(pc).outcome != outcome {
                        wrong += 1;
                    }
                }
                p.update(pc, outcome);
            }
        }
        wrong as f64 / total.max(1) as f64
    }

    #[test]
    fn pas_learns_local_patterns() {
        let mut p = Pas::new(8, 8, 12, CounterKind::TwoBit).unwrap();
        // A period-3 pattern is invisible to a bimodal predictor but
        // trivial from local history.
        let miss = drive(&mut p, 0x1000, &[true, true, false], 60);
        assert_eq!(miss, 0.0, "period-3 pattern fully learned");
    }

    #[test]
    fn skewed_pas_learns_local_patterns() {
        let mut p = SkewedPas::new(8, 8, 10, CounterKind::TwoBit, UpdatePolicy::Partial).unwrap();
        let miss = drive(&mut p, 0x1000, &[true, false, false, true], 60);
        assert_eq!(miss, 0.0);
    }

    #[test]
    fn local_histories_are_per_address() {
        let mut p = Pas::new(8, 4, 12, CounterKind::TwoBit).unwrap();
        // Interleave two branches with different periodic patterns; local
        // histories keep them separate.
        let mut wrong = 0;
        for i in 0..400u32 {
            let a_out = Outcome::from(i % 2 == 0);
            let b_out = Outcome::from(i % 3 == 0);
            if i > 200 {
                wrong += u32::from(p.predict(0x1000).outcome != a_out);
                wrong += u32::from(p.predict(0x1004).outcome != b_out);
            }
            p.update(0x1000, a_out);
            p.update(0x1004, b_out);
        }
        assert_eq!(wrong, 0);
    }

    #[test]
    fn first_level_aliasing_exists() {
        // Two branches 2^(n+2) apart share a BHT slot: their histories
        // intermingle, the first-level aliasing the tag-less BHT implies.
        let mut p = Pas::new(4, 4, 12, CounterKind::TwoBit).unwrap();
        let a = 0x1000;
        let b = a + (1 << (4 + 2));
        assert_eq!(p.bht.slot(a), p.bht.slot(b));
        p.update(a, Outcome::Taken);
        assert_eq!(p.bht.history(b), 0b1, "b sees a's history bit");
    }

    #[test]
    fn storage_and_names() {
        let p = Pas::new(10, 8, 12, CounterKind::TwoBit).unwrap();
        assert_eq!(p.storage_bits(), 1024 * 8 + 4096 * 2);
        assert_eq!(p.name(), "pas bht=1024x8 table=4096 2-bit");
        let s = SkewedPas::new(10, 8, 10, CounterKind::TwoBit, UpdatePolicy::Partial).unwrap();
        assert_eq!(s.storage_bits(), 1024 * 8 + 3 * 1024 * 2);
        assert_eq!(s.name(), "spas bht=1024x8 3x1024 2-bit partial");
    }

    #[test]
    fn unconditional_branches_do_not_touch_local_history() {
        let mut p = Pas::new(8, 4, 10, CounterKind::TwoBit).unwrap();
        let before = p.clone();
        p.record_unconditional(0x1000);
        assert_eq!(p, before);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut p = SkewedPas::new(8, 6, 8, CounterKind::TwoBit, UpdatePolicy::Partial).unwrap();
        for i in 0..100u64 {
            p.update(0x1000 + 4 * (i % 9), Outcome::from(i % 2 == 0));
        }
        p.reset();
        let fresh = SkewedPas::new(8, 6, 8, CounterKind::TwoBit, UpdatePolicy::Partial).unwrap();
        assert_eq!(p, fresh);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(Pas::new(0, 8, 12, CounterKind::TwoBit).is_err());
        assert!(Pas::new(8, 0, 12, CounterKind::TwoBit).is_err());
        assert!(Pas::new(8, 33, 12, CounterKind::TwoBit).is_err());
        assert!(Pas::new(8, 8, 0, CounterKind::TwoBit).is_err());
        assert!(SkewedPas::new(8, 8, 1, CounterKind::TwoBit, UpdatePolicy::Partial).is_err());
    }
}
