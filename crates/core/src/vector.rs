//! The information vector `V` that identifies a branch substream.
//!
//! Section 4.2 of the paper fixes the vector of information used to divide
//! branches into substreams as the concatenation of the branch address and
//! the `k` bits of global history: `V = (a_N .. a_2, h_k .. h_1)`. Branch
//! addresses are instruction-aligned, so the two low address bits carry no
//! information and are dropped.

use std::fmt;

/// A branch substream identifier: `(address, history)` with the packed form
/// used by the skewing functions.
///
/// ```
/// use bpred_core::vector::InfoVector;
///
/// let v = InfoVector::new(0x4000_1008, 0b1011, 4);
/// // address bits a_N..a_2 sit above the 4 history bits:
/// assert_eq!(v.packed(), ((0x4000_1008u64 >> 2) << 4) | 0b1011);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InfoVector {
    addr: u64,
    hist: u64,
    hist_bits: u32,
}

impl InfoVector {
    /// Build the vector for the branch at `pc` under `hist_bits` bits of
    /// global history `hist`.
    ///
    /// `hist` is truncated to `hist_bits`; `pc` is right-shifted by 2
    /// (instruction alignment, `a_2` is the lowest useful bit).
    #[inline]
    pub fn new(pc: u64, hist: u64, hist_bits: u32) -> Self {
        let mask = if hist_bits == 0 {
            0
        } else if hist_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << hist_bits) - 1
        };
        InfoVector {
            addr: pc >> 2,
            hist: hist & mask,
            hist_bits,
        }
    }

    /// The word-aligned address component `a_N..a_2`.
    #[inline]
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// The history component `h_k..h_1`.
    #[inline]
    pub fn hist(&self) -> u64 {
        self.hist
    }

    /// Number of history bits in the vector.
    #[inline]
    pub fn hist_bits(&self) -> u32 {
        self.hist_bits
    }

    /// The packed binary representation `(a_N..a_2, h_k..h_1)`.
    ///
    /// High address bits that do not fit in 64 bits after the shift are
    /// discarded; with word-aligned addresses below 2^40 and history lengths
    /// up to 24 bits (far beyond anything the paper evaluates) the packing
    /// is exact.
    #[inline]
    pub fn packed(&self) -> u64 {
        if self.hist_bits >= 64 {
            self.hist
        } else {
            (self.addr << self.hist_bits) | self.hist
        }
    }

    /// The `(address, history)` pair as a tuple, the tag identity used by
    /// the tagged table simulations of section 3.
    #[inline]
    pub fn pair(&self) -> (u64, u64) {
        (self.addr, self.hist)
    }
}

impl fmt::Display for InfoVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(addr={:#x}, hist={:0width$b})",
            self.addr << 2,
            self.hist,
            width = self.hist_bits as usize
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_address_above_history() {
        let v = InfoVector::new(0x1000, 0b11, 2);
        assert_eq!(v.addr(), 0x400);
        assert_eq!(v.hist(), 0b11);
        assert_eq!(v.packed(), (0x400 << 2) | 0b11);
    }

    #[test]
    fn zero_history_packs_address_only() {
        let v = InfoVector::new(0x1004, 0b1111, 0);
        assert_eq!(v.hist(), 0);
        assert_eq!(v.packed(), 0x1004 >> 2);
    }

    #[test]
    fn history_truncated_to_declared_bits() {
        let v = InfoVector::new(0, 0b110101, 3);
        assert_eq!(v.hist(), 0b101);
    }

    #[test]
    fn alignment_bits_dropped() {
        let a = InfoVector::new(0x4000, 0, 4);
        let b = InfoVector::new(0x4001, 0, 4);
        let c = InfoVector::new(0x4004, 0, 4);
        assert_eq!(a, b, "low two pc bits carry no information");
        assert_ne!(a, c);
    }

    #[test]
    fn pair_matches_components() {
        let v = InfoVector::new(0x8000, 0b1010, 4);
        assert_eq!(v.pair(), (0x2000, 0b1010));
    }
}
