//! The *agree* predictor (Sprangle, Chappell, Alsup & Patt, ISCA 1997).
//!
//! Published at the same conference as the skewed predictor and attacking
//! the same enemy, the agree predictor re-encodes predictions as
//! *agreement with a per-branch bias bit*. Because most branches agree
//! with their bias most of the time, two substreams sharing a counter
//! usually push it in the *same* (agree) direction — destructive aliasing
//! is converted into neutral or constructive aliasing instead of being
//! dispersed across banks. It is included here as the natural comparison
//! point for gskew in the anti-aliasing design space.
//!
//! Model notes: the original stores the bias bit alongside the branch in
//! the BTB / instruction cache, set on first execution. We model that
//! with a direct-mapped bias-bit table indexed by the branch address plus
//! a valid bit per entry (the BTB-allocation event); bias-table aliasing
//! between branches is therefore modeled too, as it would be in a
//! finite BTB.

use crate::counter::{CounterKind, CounterTable};
use crate::error::ConfigError;
use crate::history::GlobalHistory;
use crate::index::IndexFunction;
use crate::predictor::{BranchPredictor, Outcome, Prediction};
use crate::vector::InfoVector;

/// The agree predictor: gshare-indexed agreement counters over a
/// per-address bias bit.
///
/// ```
/// use bpred_core::agree::Agree;
/// use bpred_core::counter::CounterKind;
/// use bpred_core::predictor::{BranchPredictor, Outcome};
///
/// let mut p = Agree::new(12, 8, 12, CounterKind::TwoBit)?;
/// let _ = p.predict(0x1000);
/// p.update(0x1000, Outcome::Taken);
/// # Ok::<(), bpred_core::error::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agree {
    /// Agreement counters: taken = "agrees with the bias bit".
    counters: CounterTable,
    /// One bias bit per entry, indexed by address truncation.
    bias: Vec<bool>,
    /// Whether the bias bit has been set (BTB-resident).
    bias_valid: Vec<bool>,
    history: GlobalHistory,
    n: u32,
    bias_n: u32,
}

impl Agree {
    /// An agree predictor with `2^entries_log2` agreement counters,
    /// `history_bits` of global history and `2^bias_entries_log2` bias
    /// bits.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if either size is out of `1..=30` or the
    /// history exceeds 64 bits.
    pub fn new(
        entries_log2: u32,
        history_bits: u32,
        bias_entries_log2: u32,
        kind: CounterKind,
    ) -> Result<Self, ConfigError> {
        if entries_log2 == 0 || entries_log2 > 30 {
            return Err(ConfigError::invalid(
                "entries_log2",
                entries_log2,
                "must be in 1..=30",
            ));
        }
        if bias_entries_log2 == 0 || bias_entries_log2 > 30 {
            return Err(ConfigError::invalid(
                "bias_entries_log2",
                bias_entries_log2,
                "must be in 1..=30",
            ));
        }
        if history_bits > 64 {
            return Err(ConfigError::invalid(
                "history_bits",
                history_bits,
                "must be at most 64",
            ));
        }
        Ok(Agree {
            counters: CounterTable::new(entries_log2, kind),
            bias: vec![false; 1 << bias_entries_log2],
            bias_valid: vec![false; 1 << bias_entries_log2],
            history: GlobalHistory::new(history_bits),
            n: entries_log2,
            bias_n: bias_entries_log2,
        })
    }

    #[inline]
    fn bias_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.bias_n) - 1)) as usize
    }

    #[inline]
    fn counter_index(&self, pc: u64) -> u64 {
        let v = InfoVector::new(pc, self.history.value(), self.history.len());
        IndexFunction::Gshare.index(&v, self.n)
    }

    /// The current bias direction for `pc` (default taken when unset,
    /// matching the static always-taken fallback).
    pub fn bias_for(&self, pc: u64) -> Outcome {
        let i = self.bias_index(pc);
        if self.bias_valid[i] {
            Outcome::from(self.bias[i])
        } else {
            Outcome::Taken
        }
    }
}

impl BranchPredictor for Agree {
    fn predict(&mut self, pc: u64) -> Prediction {
        let bias = self.bias_for(pc);
        let agrees = self.counters.predict(self.counter_index(pc)).is_taken();
        Prediction::of(if agrees { bias } else { bias.flipped() })
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        let i = self.bias_index(pc);
        if !self.bias_valid[i] {
            // First execution allocates the bias bit with the outcome —
            // the BTB-fill event of the original design.
            self.bias_valid[i] = true;
            self.bias[i] = outcome.is_taken();
        }
        let bias = Outcome::from(self.bias[i]);
        let idx = self.counter_index(pc);
        self.counters.train(idx, Outcome::from(outcome == bias));
        self.history.push(outcome);
    }

    fn record_unconditional(&mut self, _pc: u64) {
        self.history.push(Outcome::Taken);
    }

    fn name(&self) -> String {
        format!(
            "agree {} h={} bias={} {}",
            1u64 << self.n,
            self.history.len(),
            1u64 << self.bias_n,
            self.counters.kind()
        )
    }

    fn storage_bits(&self) -> u64 {
        // Agreement counters + bias bit and valid bit per bias entry.
        self.counters.storage_bits() + 2 * (1u64 << self.bias_n)
    }

    fn reset(&mut self) {
        self.counters.reset();
        self.bias.fill(false);
        self.bias_valid.fill(false);
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agree() -> Agree {
        Agree::new(8, 4, 8, CounterKind::TwoBit).unwrap()
    }

    #[test]
    fn learns_biased_branches_in_both_directions() {
        // h = 0 keeps the counter index address-only so the prediction
        // read-back is deterministic; pcs use distinct bias slots.
        let mut p = Agree::new(8, 0, 8, CounterKind::TwoBit).unwrap();
        for _ in 0..8 {
            p.update(0x1000, Outcome::Taken);
            p.update(0x1004, Outcome::NotTaken);
        }
        assert_eq!(p.predict(0x1000).outcome, Outcome::Taken);
        assert_eq!(p.predict(0x1004).outcome, Outcome::NotTaken);
    }

    #[test]
    fn bias_bit_is_first_outcome() {
        let mut p = agree();
        p.update(0x1000, Outcome::NotTaken);
        assert_eq!(p.bias_for(0x1000), Outcome::NotTaken);
        // Later taken outcomes don't rewrite the bias bit...
        for _ in 0..8 {
            p.update(0x1000, Outcome::Taken);
        }
        assert_eq!(p.bias_for(0x1000), Outcome::NotTaken);
        // ...but the agreement counters learn to disagree.
        assert_eq!(p.predict(0x1000).outcome, Outcome::Taken);
    }

    #[test]
    fn unset_bias_defaults_taken() {
        let mut p = agree();
        assert_eq!(p.bias_for(0x1234), Outcome::Taken);
        assert_eq!(p.predict(0x1234).outcome, Outcome::Taken);
    }

    #[test]
    fn aliasing_between_agreeing_substreams_is_harmless() {
        // Two branches, both agreeing with their own bias, collide in the
        // agreement table: both push the shared counter toward "agree",
        // so neither mispredicts — the agree predictor's selling point.
        let mut p = Agree::new(2, 0, 8, CounterKind::TwoBit).unwrap();
        let a = 0x1000;
        // Same counter index (h=0 means index = pc-derived; choose pcs
        // colliding modulo 4 entries), different bias slots.
        let b = a + (1 << (2 + 2)) * 16;
        assert_eq!(p.counter_index(a), p.counter_index(b));
        assert_ne!(p.bias_index(a), p.bias_index(b));
        let mut wrong = 0;
        for i in 0..100 {
            for (pc, dir) in [(a, Outcome::Taken), (b, Outcome::NotTaken)] {
                if i > 0 && p.predict(pc).outcome != dir {
                    wrong += 1;
                }
                p.update(pc, dir);
            }
        }
        assert_eq!(wrong, 0, "agree encoding should neutralize this conflict");
    }

    #[test]
    fn storage_accounting() {
        let p = Agree::new(12, 8, 10, CounterKind::TwoBit).unwrap();
        assert_eq!(p.storage_bits(), 4096 * 2 + 2 * 1024);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut p = agree();
        for i in 0..100u64 {
            p.update(0x1000 + 4 * (i % 7), Outcome::from(i % 2 == 0));
        }
        p.reset();
        assert_eq!(p, agree());
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(Agree::new(0, 4, 8, CounterKind::TwoBit).is_err());
        assert!(Agree::new(8, 4, 0, CounterKind::TwoBit).is_err());
        assert!(Agree::new(8, 65, 8, CounterKind::TwoBit).is_err());
    }
}
