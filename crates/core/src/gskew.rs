//! The skewed branch predictor (*gskew*) of section 4 and its *enhanced*
//! variant (*e-gskew*) of section 6.
//!
//! A skewed predictor holds an odd number of tag-less counter banks. Every
//! bank is read in parallel, each through a *different* hashing function of
//! the same `(address, history)` information vector, and the final
//! prediction is a **majority vote**. Two substreams that collide in one
//! bank are extremely unlikely to collide in the others, so a destructive
//! alias in a single bank is outvoted — conflict aliasing is traded for a
//! modest amount of capacity aliasing (the same prediction is stored up to
//! M times).
//!
//! The **enhanced** variant replaces the skewed index of bank 0 with plain
//! address truncation (`address mod 2^n`). When banks 1 and 2 disagree —
//! typically because a long last-use distance has aliased them — bank 0
//! breaks the tie, and an address-only index has a much shorter last-use
//! distance than an (address, history) index, hence a much lower aliasing
//! probability. This removes part of the capacity aliasing at long history
//! lengths.

use crate::counter::{CounterKind, CounterTable};
use crate::error::ConfigError;
use crate::history::GlobalHistory;
use crate::predictor::{BranchPredictor, Outcome, Prediction};
use crate::skew::{skew_index, NUM_SKEW_FUNCTIONS};
use crate::vector::InfoVector;
use std::fmt;

/// How the banks are trained after the outcome is known (section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UpdatePolicy {
    /// Every bank is updated as if it were a sole, conventional predictor.
    Total,
    /// When the overall (majority) prediction is correct, banks that voted
    /// *against* it are left untouched — their counters are presumed to
    /// belong to a different substream, which effectively enlarges the
    /// predictor's capacity. When the overall prediction is wrong, all
    /// banks are trained. This is the policy the paper recommends.
    #[default]
    Partial,
}

impl fmt::Display for UpdatePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UpdatePolicy::Total => "total",
            UpdatePolicy::Partial => "partial",
        })
    }
}

impl UpdatePolicy {
    /// Parse from the names used in predictor spec strings.
    pub fn from_name(name: &str) -> Option<UpdatePolicy> {
        match name {
            "total" => Some(UpdatePolicy::Total),
            "partial" => Some(UpdatePolicy::Partial),
            _ => None,
        }
    }
}

/// The skewed branch predictor.
///
/// Construct one through [`Gskew::builder`]. The plain configuration is the
/// paper's *gskewed*; enabling [`GskewBuilder::enhanced`] gives the
/// *enhanced gskewed* predictor whose bank 0 is indexed by address only.
///
/// ```
/// use bpred_core::prelude::*;
///
/// let mut p = Gskew::builder()
///     .banks(3)
///     .bank_entries_log2(12)       // 3 x 4K entries
///     .history_bits(8)
///     .counter(CounterKind::TwoBit)
///     .update_policy(UpdatePolicy::Partial)
///     .build()?;
/// let pc = 0x0040_2000;
/// let _ = p.predict(pc);
/// p.update(pc, Outcome::Taken);
/// assert_eq!(p.storage_bits(), 3 * 4096 * 2);
/// # Ok::<(), bpred_core::error::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gskew {
    banks: Vec<CounterTable>,
    history: GlobalHistory,
    n: u32,
    policy: UpdatePolicy,
    enhanced: bool,
    identical_indexing: bool,
}

/// Configures and builds a [`Gskew`] predictor.
#[derive(Debug, Clone)]
pub struct GskewBuilder {
    banks: usize,
    entries_log2: u32,
    history_bits: u32,
    kind: CounterKind,
    policy: UpdatePolicy,
    enhanced: bool,
    identical_indexing: bool,
}

impl Default for GskewBuilder {
    fn default() -> Self {
        GskewBuilder {
            banks: 3,
            entries_log2: 12,
            history_bits: 8,
            kind: CounterKind::TwoBit,
            policy: UpdatePolicy::Partial,
            enhanced: false,
            identical_indexing: false,
        }
    }
}

impl GskewBuilder {
    /// Number of predictor banks. Must be odd (majority vote) and between
    /// 3 and 5; the paper found 5 banks barely better than 3.
    pub fn banks(&mut self, banks: usize) -> &mut Self {
        self.banks = banks;
        self
    }

    /// `log2` of the number of entries in *each* bank.
    pub fn bank_entries_log2(&mut self, n: u32) -> &mut Self {
        self.entries_log2 = n;
        self
    }

    /// Global history length in bits.
    pub fn history_bits(&mut self, k: u32) -> &mut Self {
        self.history_bits = k;
        self
    }

    /// Per-entry automaton width (default 2-bit saturating counter).
    pub fn counter(&mut self, kind: CounterKind) -> &mut Self {
        self.kind = kind;
        self
    }

    /// Bank update policy (default [`UpdatePolicy::Partial`]).
    pub fn update_policy(&mut self, policy: UpdatePolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Index bank 0 by address truncation instead of `f0` — the enhanced
    /// skewed branch predictor of section 6.
    pub fn enhanced(&mut self, enhanced: bool) -> &mut Self {
        self.enhanced = enhanced;
        self
    }

    /// **Ablation knob**: index every bank with the *same* function
    /// (`f0`), disabling inter-bank dispersion. All banks then see
    /// identical indices and votes, so the structure degenerates to a
    /// single bank of one-M-th the storage — demonstrating that gskew's
    /// benefit comes from the *distinct* hashing functions, not from
    /// voting redundancy by itself.
    pub fn identical_indexing(&mut self, identical: bool) -> &mut Self {
        self.identical_indexing = identical;
        self
    }

    /// Build the predictor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the bank count is even or out of range,
    /// the bank size is out of `2..=30` bits, or the history is longer than
    /// 64 bits.
    pub fn build(&self) -> Result<Gskew, ConfigError> {
        if self.banks.is_multiple_of(2) || self.banks < 3 || self.banks > NUM_SKEW_FUNCTIONS {
            return Err(ConfigError::invalid(
                "banks",
                self.banks,
                "must be an odd number between 3 and 5",
            ));
        }
        if !(2..=30).contains(&self.entries_log2) {
            return Err(ConfigError::invalid(
                "bank_entries_log2",
                self.entries_log2,
                "must be in 2..=30",
            ));
        }
        if self.history_bits > 64 {
            return Err(ConfigError::invalid(
                "history_bits",
                self.history_bits,
                "must be at most 64",
            ));
        }
        Ok(Gskew {
            banks: (0..self.banks)
                .map(|_| CounterTable::new(self.entries_log2, self.kind))
                .collect(),
            history: GlobalHistory::new(self.history_bits),
            n: self.entries_log2,
            policy: self.policy,
            enhanced: self.enhanced,
            identical_indexing: self.identical_indexing,
        })
    }
}

impl Gskew {
    /// Start configuring a skewed predictor.
    pub fn builder() -> GskewBuilder {
        GskewBuilder::default()
    }

    /// Shorthand for the paper's standard configuration: 3 banks of
    /// `2^entries_log2` 2-bit counters, partial update.
    ///
    /// # Errors
    ///
    /// See [`GskewBuilder::build`].
    pub fn standard(entries_log2: u32, history_bits: u32) -> Result<Self, ConfigError> {
        Gskew::builder()
            .bank_entries_log2(entries_log2)
            .history_bits(history_bits)
            .build()
    }

    /// Shorthand for the enhanced skewed predictor of section 6 in its
    /// standard configuration.
    ///
    /// # Errors
    ///
    /// See [`GskewBuilder::build`].
    pub fn enhanced_standard(entries_log2: u32, history_bits: u32) -> Result<Self, ConfigError> {
        Gskew::builder()
            .bank_entries_log2(entries_log2)
            .history_bits(history_bits)
            .enhanced(true)
            .build()
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// `log2` of per-bank entries.
    pub fn bank_entries_log2(&self) -> u32 {
        self.n
    }

    /// History register length.
    pub fn history_bits(&self) -> u32 {
        self.history.len()
    }

    /// The update policy in force.
    pub fn update_policy(&self) -> UpdatePolicy {
        self.policy
    }

    /// `true` for the enhanced variant (bank 0 indexed by address only).
    pub fn is_enhanced(&self) -> bool {
        self.enhanced
    }

    /// Per-entry automaton width.
    pub fn counter_kind(&self) -> CounterKind {
        self.banks[0].kind()
    }

    /// The table index used by `bank` for the branch at `pc` under the
    /// *current* history. Exposed for the aliasing analyses and tests.
    #[inline]
    pub fn bank_index(&self, bank: usize, pc: u64) -> u64 {
        let v = InfoVector::new(pc, self.history.value(), self.history.len());
        self.bank_index_for(bank, &v)
    }

    #[inline]
    fn bank_index_for(&self, bank: usize, v: &InfoVector) -> u64 {
        if bank == 0 && self.enhanced {
            // Enhanced variant: plain bit truncation of the address.
            v.addr() & ((1 << self.n) - 1)
        } else if self.identical_indexing {
            skew_index(0, v.packed(), self.n)
        } else {
            skew_index(bank, v.packed(), self.n)
        }
    }

    /// The per-bank votes for `pc` under the current history, in bank
    /// order. Exposed so experiments can inspect vote margins.
    pub fn votes(&self, pc: u64) -> Vec<Outcome> {
        let v = InfoVector::new(pc, self.history.value(), self.history.len());
        self.banks
            .iter()
            .enumerate()
            .map(|(b, t)| t.predict(self.bank_index_for(b, &v)))
            .collect()
    }

    /// `true` when every bank currently agrees on the direction for `pc`
    /// — the majority vote's built-in confidence signal (a unanimous vote
    /// is empirically far more reliable than a split one; see the
    /// `ext-confidence` experiment).
    pub fn is_unanimous(&self, pc: u64) -> bool {
        let votes = self.votes(pc);
        votes.iter().all(|&v| v == votes[0])
    }

    #[inline]
    fn majority(votes_taken: usize, banks: usize) -> Outcome {
        Outcome::from(2 * votes_taken > banks)
    }
}

impl BranchPredictor for Gskew {
    fn predict(&mut self, pc: u64) -> Prediction {
        let v = InfoVector::new(pc, self.history.value(), self.history.len());
        let taken = self
            .banks
            .iter()
            .enumerate()
            .filter(|(b, t)| t.predict(self.bank_index_for(*b, &v)).is_taken())
            .count();
        Prediction::of(Self::majority(taken, self.banks.len()))
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        let v = InfoVector::new(pc, self.history.value(), self.history.len());
        let indices: Vec<u64> = (0..self.banks.len())
            .map(|b| self.bank_index_for(b, &v))
            .collect();
        let votes: Vec<Outcome> = self
            .banks
            .iter()
            .zip(&indices)
            .map(|(t, &i)| t.predict(i))
            .collect();
        let taken = votes.iter().filter(|o| o.is_taken()).count();
        let overall = Self::majority(taken, self.banks.len());

        match self.policy {
            UpdatePolicy::Total => {
                for (bank, &idx) in self.banks.iter_mut().zip(&indices) {
                    bank.train(idx, outcome);
                }
            }
            UpdatePolicy::Partial => {
                if overall == outcome {
                    // Overall prediction good: only re-strengthen the banks
                    // that agreed; a disagreeing bank is presumed to serve
                    // another substream and is left alone.
                    for ((bank, &idx), &vote) in self.banks.iter_mut().zip(&indices).zip(&votes) {
                        if vote == outcome {
                            bank.train(idx, outcome);
                        }
                    }
                } else {
                    for (bank, &idx) in self.banks.iter_mut().zip(&indices) {
                        bank.train(idx, outcome);
                    }
                }
            }
        }
        self.history.push(outcome);
    }

    fn record_unconditional(&mut self, _pc: u64) {
        self.history.push(Outcome::Taken);
    }

    fn name(&self) -> String {
        format!(
            "{} {}x{} h={} {} {}{}",
            if self.enhanced { "egskew" } else { "gskew" },
            self.banks.len(),
            1u64 << self.n,
            self.history.len(),
            self.counter_kind(),
            self.policy,
            if self.identical_indexing {
                " same-index"
            } else {
                ""
            }
        )
    }

    fn storage_bits(&self) -> u64 {
        self.banks.iter().map(CounterTable::storage_bits).sum()
    }

    fn reset(&mut self) {
        for bank in &mut self.banks {
            bank.reset();
        }
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: UpdatePolicy) -> Gskew {
        Gskew::builder()
            .bank_entries_log2(6)
            .history_bits(4)
            .update_policy(policy)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert!(Gskew::builder().banks(2).build().is_err());
        assert!(Gskew::builder().banks(7).build().is_err());
        assert!(Gskew::builder().bank_entries_log2(1).build().is_err());
        assert!(Gskew::builder().bank_entries_log2(31).build().is_err());
        assert!(Gskew::builder().history_bits(65).build().is_err());
        assert!(Gskew::builder().banks(5).build().is_ok());
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut p = small(UpdatePolicy::Partial);
        let pc = 0x1040;
        for _ in 0..8 {
            p.update(pc, Outcome::Taken);
        }
        // Re-walk the same history prefix: all banks now agree taken for
        // recently seen (pc, history) points, so majority is taken.
        let before = p.votes(pc);
        assert!(
            before.iter().filter(|o| o.is_taken()).count() >= 2,
            "majority of banks should predict taken, got {before:?}"
        );
    }

    #[test]
    fn majority_vote_arithmetic() {
        assert_eq!(Gskew::majority(0, 3), Outcome::NotTaken);
        assert_eq!(Gskew::majority(1, 3), Outcome::NotTaken);
        assert_eq!(Gskew::majority(2, 3), Outcome::Taken);
        assert_eq!(Gskew::majority(3, 3), Outcome::Taken);
        assert_eq!(Gskew::majority(2, 5), Outcome::NotTaken);
        assert_eq!(Gskew::majority(3, 5), Outcome::Taken);
    }

    #[test]
    fn banks_use_distinct_indices() {
        let p = small(UpdatePolicy::Partial);
        // For most vectors the three banks index different entries.
        let mut distinct = 0;
        for i in 0..100u64 {
            let pc = 0x1000 + i * 4;
            let (a, b, c) = (
                p.bank_index(0, pc),
                p.bank_index(1, pc),
                p.bank_index(2, pc),
            );
            if a != b && b != c && a != c {
                distinct += 1;
            }
        }
        assert!(distinct > 80, "only {distinct}/100 vectors fully dispersed");
    }

    #[test]
    fn enhanced_bank0_ignores_history() {
        let mut p = Gskew::builder()
            .bank_entries_log2(6)
            .history_bits(8)
            .enhanced(true)
            .build()
            .unwrap();
        let pc = 0x2040;
        let i0 = p.bank_index(0, pc);
        let i1 = p.bank_index(1, pc);
        p.update(0x100, Outcome::Taken); // shift history
        assert_eq!(p.bank_index(0, pc), i0, "enhanced bank 0 is address-only");
        assert_ne!(
            p.bank_index(1, pc),
            i1,
            "bank 1 depends on history (with overwhelming probability for this vector)"
        );
    }

    #[test]
    fn plain_bank0_depends_on_history() {
        let mut p = small(UpdatePolicy::Partial);
        let pc = 0x2040;
        let i0 = p.bank_index(0, pc);
        p.update(0x100, Outcome::Taken);
        assert_ne!(p.bank_index(0, pc), i0);
    }

    #[test]
    fn partial_update_spares_dissenting_bank() {
        let mut p = small(UpdatePolicy::Partial);
        let pc = 0x3000;
        // Manually wire bank 2's entry to strongly-not-taken, banks 0 and 1
        // to strongly-taken, so overall = taken.
        let (i0, i1, i2) = (
            p.bank_index(0, pc),
            p.bank_index(1, pc),
            p.bank_index(2, pc),
        );
        p.banks[0].set_value(i0, 3);
        p.banks[1].set_value(i1, 3);
        p.banks[2].set_value(i2, 0);
        p.update(pc, Outcome::Taken); // overall correct
        assert_eq!(p.banks[2].value(i2), 0, "dissenter untouched under partial");
        assert_eq!(p.banks[0].value(i0), 3);
    }

    #[test]
    fn total_update_trains_dissenting_bank() {
        let mut p = small(UpdatePolicy::Total);
        let pc = 0x3000;
        let (i0, i1, i2) = (
            p.bank_index(0, pc),
            p.bank_index(1, pc),
            p.bank_index(2, pc),
        );
        p.banks[0].set_value(i0, 3);
        p.banks[1].set_value(i1, 3);
        p.banks[2].set_value(i2, 0);
        p.update(pc, Outcome::Taken);
        assert_eq!(p.banks[2].value(i2), 1, "dissenter trained under total");
    }

    #[test]
    fn partial_update_trains_all_banks_on_mispredict() {
        let mut p = small(UpdatePolicy::Partial);
        let pc = 0x3000;
        let (i0, i1, i2) = (
            p.bank_index(0, pc),
            p.bank_index(1, pc),
            p.bank_index(2, pc),
        );
        // All banks strongly not-taken; outcome taken => overall wrong.
        p.banks[0].set_value(i0, 0);
        p.banks[1].set_value(i1, 0);
        p.banks[2].set_value(i2, 0);
        p.update(pc, Outcome::Taken);
        assert_eq!(p.banks[0].value(i0), 1);
        assert_eq!(p.banks[1].value(i1), 1);
        assert_eq!(p.banks[2].value(i2), 1);
    }

    #[test]
    fn storage_accounting() {
        let p = Gskew::builder()
            .banks(3)
            .bank_entries_log2(12)
            .build()
            .unwrap();
        assert_eq!(p.storage_bits(), 3 * 4096 * 2);
        let p5 = Gskew::builder()
            .banks(5)
            .bank_entries_log2(10)
            .counter(CounterKind::OneBit)
            .build()
            .unwrap();
        assert_eq!(p5.storage_bits(), 5 * 1024);
    }

    #[test]
    fn names_are_descriptive() {
        let p = Gskew::standard(12, 8).unwrap();
        assert_eq!(p.name(), "gskew 3x4096 h=8 2-bit partial");
        let e = Gskew::enhanced_standard(12, 10).unwrap();
        assert_eq!(e.name(), "egskew 3x4096 h=10 2-bit partial");
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut p = small(UpdatePolicy::Partial);
        for i in 0..200u64 {
            p.update(0x1000 + 4 * (i % 13), Outcome::from(i % 3 == 0));
        }
        let fresh = small(UpdatePolicy::Partial);
        p.reset();
        assert_eq!(p, fresh);
    }

    #[test]
    fn unanimity_reflects_votes() {
        let mut p = small(UpdatePolicy::Partial);
        let pc = 0x3000;
        let (i0, i1, i2) = (
            p.bank_index(0, pc),
            p.bank_index(1, pc),
            p.bank_index(2, pc),
        );
        p.banks[0].set_value(i0, 3);
        p.banks[1].set_value(i1, 3);
        p.banks[2].set_value(i2, 3);
        assert!(p.is_unanimous(pc));
        p.banks[2].set_value(i2, 0);
        assert!(!p.is_unanimous(pc));
    }

    #[test]
    fn five_banks_vote() {
        let mut p = Gskew::builder()
            .banks(5)
            .bank_entries_log2(6)
            .history_bits(4)
            .build()
            .unwrap();
        let pc = 0x1000;
        for _ in 0..8 {
            p.update(pc, Outcome::Taken);
        }
        assert_eq!(p.votes(pc).len(), 5);
    }

    #[test]
    fn identical_indexing_degenerates_to_one_bank() {
        // With every bank reading and training the same entry with the
        // same decision, the 3-bank structure must behave exactly like a
        // single f0-indexed bank — the ablation that isolates the value
        // of inter-bank dispersion.
        use rand::{Rng, SeedableRng};
        let mut same = Gskew::builder()
            .bank_entries_log2(6)
            .history_bits(4)
            .identical_indexing(true)
            .build()
            .unwrap();
        // Reference: one bank, f0 indexing, via a 3-bank gskew whose
        // banks stay in lockstep — compare bank contents after training.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for _ in 0..2_000 {
            let pc = 0x1000 + 4 * rng.gen_range(0..50u64);
            let outcome = Outcome::from(rng.gen_bool(0.6));
            let p = same.predict(pc);
            let votes = same.votes(pc);
            assert!(votes.iter().all(|&v| v == p.outcome), "banks in lockstep");
            same.update(pc, outcome);
        }
        assert_eq!(same.banks[0], same.banks[1]);
        assert_eq!(same.banks[1], same.banks[2]);
        assert!(same.name().ends_with("same-index"));
    }

    #[test]
    fn predict_is_idempotent() {
        let mut p = small(UpdatePolicy::Partial);
        for i in 0..50u64 {
            p.update(0x1000 + 4 * (i % 7), Outcome::from(i % 2 == 0));
        }
        let a = p.predict(0x1010);
        let b = p.predict(0x1010);
        assert_eq!(a, b);
    }
}
