//! The [`BranchPredictor`] trait and the types shared by every predictor.
//!
//! All predictors in this crate are *trace driven*: the simulation engine
//! calls [`BranchPredictor::predict`] for each dynamic conditional branch,
//! then immediately reveals the outcome through
//! [`BranchPredictor::update`]. Unconditional control flow is reported with
//! [`BranchPredictor::record_unconditional`] so that, as in the paper,
//! unconditional branches participate in the global history ("we include
//! unconditional branches as part of the global-history bits").

use std::fmt;

/// The resolved direction of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Outcome {
    /// The branch fell through.
    #[default]
    NotTaken,
    /// The branch was taken.
    Taken,
}

impl Outcome {
    /// Returns `true` for [`Outcome::Taken`].
    #[inline]
    pub fn is_taken(self) -> bool {
        matches!(self, Outcome::Taken)
    }

    /// The opposite direction.
    #[inline]
    pub fn flipped(self) -> Outcome {
        match self {
            Outcome::Taken => Outcome::NotTaken,
            Outcome::NotTaken => Outcome::Taken,
        }
    }
}

impl From<bool> for Outcome {
    #[inline]
    fn from(taken: bool) -> Self {
        if taken {
            Outcome::Taken
        } else {
            Outcome::NotTaken
        }
    }
}

impl From<Outcome> for bool {
    #[inline]
    fn from(o: Outcome) -> bool {
        o.is_taken()
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::Taken => "taken",
            Outcome::NotTaken => "not-taken",
        })
    }
}

/// The result of a prediction lookup.
///
/// `novel` is set by predictors that can detect the *first* occurrence of a
/// branch substream (the ideal unaliased predictor of section 3.1 and the
/// tagged tables of section 3.2). The paper does not charge such compulsory
/// encounters as mispredictions; the simulation engine uses this flag to
/// apply the same accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Prediction {
    /// Predicted direction.
    pub outcome: Outcome,
    /// `true` when the predictor has never seen this substream before.
    pub novel: bool,
}

impl Prediction {
    /// A plain prediction of a previously seen substream.
    #[inline]
    pub fn of(outcome: Outcome) -> Self {
        Prediction {
            outcome,
            novel: false,
        }
    }

    /// A prediction for a substream encountered for the first time.
    #[inline]
    pub fn novel(outcome: Outcome) -> Self {
        Prediction {
            outcome,
            novel: true,
        }
    }
}

impl fmt::Display for Prediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            self.outcome,
            if self.novel { " (novel)" } else { "" }
        )
    }
}

/// A dynamic conditional branch predictor.
///
/// The contract between the engine and a predictor for each dynamic
/// conditional branch at address `pc` is:
///
/// 1. `let p = predictor.predict(pc);`
/// 2. `predictor.update(pc, actual_outcome);`
///
/// [`BranchPredictor::update`] must be called with the *same* `pc` that was
/// just predicted; it both trains the tables (using the history as it was at
/// prediction time) and shifts the actual outcome into the global history.
/// Unconditional branches are reported with
/// [`BranchPredictor::record_unconditional`] and only affect history.
pub trait BranchPredictor {
    /// Predict the direction of the conditional branch at `pc` under the
    /// current global history.
    fn predict(&mut self, pc: u64) -> Prediction;

    /// Reveal the actual outcome of the conditional branch at `pc`, training
    /// the predictor and updating the global history.
    fn update(&mut self, pc: u64, outcome: Outcome);

    /// Report an unconditional transfer of control at `pc`.
    ///
    /// Following the paper, unconditional branches are shifted into the
    /// global history as *taken*; predictors without history ignore this.
    fn record_unconditional(&mut self, _pc: u64) {}

    /// A short human-readable description, e.g. `gskew 3x4096 h=8 partial`.
    fn name(&self) -> String;

    /// The number of storage bits the hardware structure would require.
    ///
    /// For tag-less tables this is `entries * counter_bits`; tagged tables
    /// also charge tag and replacement state. Used for the equal-storage
    /// comparisons of figures 5–8 and 12.
    fn storage_bits(&self) -> u64;

    /// Restore the predictor to its just-constructed state.
    fn reset(&mut self);
}

impl BranchPredictor for Box<dyn BranchPredictor> {
    fn predict(&mut self, pc: u64) -> Prediction {
        (**self).predict(pc)
    }
    fn update(&mut self, pc: u64, outcome: Outcome) {
        (**self).update(pc, outcome)
    }
    fn record_unconditional(&mut self, pc: u64) {
        (**self).record_unconditional(pc)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_roundtrips_through_bool() {
        assert_eq!(Outcome::from(true), Outcome::Taken);
        assert_eq!(Outcome::from(false), Outcome::NotTaken);
        assert!(bool::from(Outcome::Taken));
        assert!(!bool::from(Outcome::NotTaken));
    }

    #[test]
    fn outcome_flips() {
        assert_eq!(Outcome::Taken.flipped(), Outcome::NotTaken);
        assert_eq!(Outcome::NotTaken.flipped(), Outcome::Taken);
        assert_eq!(Outcome::Taken.flipped().flipped(), Outcome::Taken);
    }

    #[test]
    fn outcome_default_is_not_taken() {
        assert_eq!(Outcome::default(), Outcome::NotTaken);
    }

    #[test]
    fn prediction_constructors() {
        let p = Prediction::of(Outcome::Taken);
        assert!(!p.novel);
        assert!(p.outcome.is_taken());
        let q = Prediction::novel(Outcome::NotTaken);
        assert!(q.novel);
        assert!(!q.outcome.is_taken());
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Outcome::Taken.to_string(), "taken");
        assert_eq!(Outcome::NotTaken.to_string(), "not-taken");
        assert_eq!(Prediction::of(Outcome::Taken).to_string(), "taken");
        assert_eq!(
            Prediction::novel(Outcome::NotTaken).to_string(),
            "not-taken (novel)"
        );
    }
}
