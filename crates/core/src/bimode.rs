//! The *bi-mode* predictor (Lee, Chen & Mudge, MICRO 1997).
//!
//! The other contemporary anti-aliasing design: branches are dynamically
//! split into a mostly-taken and a mostly-not-taken population, each with
//! its own gshare-indexed direction bank, and a bimodal *choice* table
//! selects the bank per branch address. Branches colliding inside a bank
//! then usually want the same direction, so the interference is mostly
//! neutral — the same destructive-to-harmless conversion as the agree
//! predictor, without bias bits.

use crate::counter::{CounterKind, CounterTable};
use crate::error::ConfigError;
use crate::history::GlobalHistory;
use crate::index::IndexFunction;
use crate::predictor::{BranchPredictor, Outcome, Prediction};
use crate::vector::InfoVector;

/// The bi-mode predictor: a choice table and two direction banks.
///
/// ```
/// use bpred_core::bimode::BiMode;
/// use bpred_core::counter::CounterKind;
/// use bpred_core::predictor::{BranchPredictor, Outcome};
///
/// let mut p = BiMode::new(12, 8, 12, CounterKind::TwoBit)?;
/// let _ = p.predict(0x1000);
/// p.update(0x1000, Outcome::NotTaken);
/// # Ok::<(), bpred_core::error::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiMode {
    /// Per-address choice counters: taken = "use the taken bank".
    choice: CounterTable,
    /// Direction banks: `[not-taken population, taken population]`.
    banks: [CounterTable; 2],
    history: GlobalHistory,
    n: u32,
    choice_n: u32,
}

impl BiMode {
    /// A bi-mode predictor with two `2^entries_log2`-entry direction
    /// banks, `history_bits` of global history and a
    /// `2^choice_entries_log2`-entry choice table.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if either size is out of `1..=30` or the
    /// history exceeds 64 bits.
    pub fn new(
        entries_log2: u32,
        history_bits: u32,
        choice_entries_log2: u32,
        kind: CounterKind,
    ) -> Result<Self, ConfigError> {
        if entries_log2 == 0 || entries_log2 > 30 {
            return Err(ConfigError::invalid(
                "entries_log2",
                entries_log2,
                "must be in 1..=30",
            ));
        }
        if choice_entries_log2 == 0 || choice_entries_log2 > 30 {
            return Err(ConfigError::invalid(
                "choice_entries_log2",
                choice_entries_log2,
                "must be in 1..=30",
            ));
        }
        if history_bits > 64 {
            return Err(ConfigError::invalid(
                "history_bits",
                history_bits,
                "must be at most 64",
            ));
        }
        Ok(BiMode {
            choice: CounterTable::new(choice_entries_log2, kind),
            banks: [
                CounterTable::new(entries_log2, kind),
                CounterTable::new(entries_log2, kind),
            ],
            history: GlobalHistory::new(history_bits),
            n: entries_log2,
            choice_n: choice_entries_log2,
        })
    }

    #[inline]
    fn choice_index(&self, pc: u64) -> u64 {
        (pc >> 2) & ((1 << self.choice_n) - 1)
    }

    #[inline]
    fn direction_index(&self, pc: u64) -> u64 {
        let v = InfoVector::new(pc, self.history.value(), self.history.len());
        IndexFunction::Gshare.index(&v, self.n)
    }

    #[inline]
    fn components(&self, pc: u64) -> (usize, u64, Outcome) {
        let bank = usize::from(self.choice.predict(self.choice_index(pc)).is_taken());
        let idx = self.direction_index(pc);
        let direction = self.banks[bank].predict(idx);
        (bank, idx, direction)
    }
}

impl BranchPredictor for BiMode {
    fn predict(&mut self, pc: u64) -> Prediction {
        Prediction::of(self.components(pc).2)
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        let (bank, idx, direction) = self.components(pc);
        // Only the selected bank trains — the serialization that keeps the
        // two populations separate.
        self.banks[bank].train(idx, outcome);
        // The choice table trains with the outcome, EXCEPT when it was
        // overridden successfully: selected bank correct while the choice
        // direction itself disagreed with the outcome.
        let choice_direction = Outcome::from(bank == 1);
        let overridden_successfully = direction == outcome && choice_direction != outcome;
        if !overridden_successfully {
            self.choice.train(self.choice_index(pc), outcome);
        }
        self.history.push(outcome);
    }

    fn record_unconditional(&mut self, _pc: u64) {
        self.history.push(Outcome::Taken);
    }

    fn name(&self) -> String {
        format!(
            "bimode 2x{} h={} choice={} {}",
            1u64 << self.n,
            self.history.len(),
            1u64 << self.choice_n,
            self.banks[0].kind()
        )
    }

    fn storage_bits(&self) -> u64 {
        self.banks[0].storage_bits() + self.banks[1].storage_bits() + self.choice.storage_bits()
    }

    fn reset(&mut self) {
        self.choice.reset();
        self.banks[0].reset();
        self.banks[1].reset();
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bimode() -> BiMode {
        BiMode::new(8, 4, 8, CounterKind::TwoBit).unwrap()
    }

    #[test]
    fn learns_biased_branches() {
        // h = 0 keeps the direction index address-only so the read-back
        // is deterministic; distinct choice slots for the two branches.
        let mut p = BiMode::new(8, 0, 8, CounterKind::TwoBit).unwrap();
        for _ in 0..8 {
            p.update(0x1000, Outcome::Taken);
            p.update(0x1004, Outcome::NotTaken);
        }
        assert_eq!(p.predict(0x1000).outcome, Outcome::Taken);
        assert_eq!(p.predict(0x1004).outcome, Outcome::NotTaken);
    }

    #[test]
    fn populations_separate_opposite_biases() {
        // Two opposite-biased branches that collide in the direction
        // banks: the choice table routes them to different banks, so the
        // conflict disappears (the bi-mode selling point).
        let mut p = BiMode::new(2, 0, 10, CounterKind::TwoBit).unwrap();
        let a = 0x1000;
        let b = a + (1 << (2 + 2)) * 64;
        assert_eq!(p.direction_index(a), p.direction_index(b));
        assert_ne!(p.choice_index(a), p.choice_index(b));
        // Warm up the choice table.
        for _ in 0..4 {
            p.update(a, Outcome::Taken);
            p.update(b, Outcome::NotTaken);
        }
        let mut wrong = 0;
        for _ in 0..100 {
            if p.predict(a).outcome != Outcome::Taken {
                wrong += 1;
            }
            p.update(a, Outcome::Taken);
            if p.predict(b).outcome != Outcome::NotTaken {
                wrong += 1;
            }
            p.update(b, Outcome::NotTaken);
        }
        assert_eq!(wrong, 0, "bi-mode should separate the two populations");
    }

    #[test]
    fn choice_not_trained_on_successful_override() {
        let mut p = BiMode::new(8, 0, 8, CounterKind::TwoBit).unwrap();
        let pc = 0x1000;
        // Drive the choice counter to strongly-taken.
        for _ in 0..4 {
            p.update(pc, Outcome::Taken);
        }
        let ci = p.choice_index(pc);
        let strong = p.choice.value(ci);
        // Now train the taken-bank entry toward not-taken until the bank
        // overrides the choice direction successfully; the choice value
        // must stay pinned during successful overrides.
        for _ in 0..6 {
            p.update(pc, Outcome::NotTaken);
        }
        let after = p.choice.value(ci);
        assert!(
            after >= strong.saturating_sub(3),
            "choice should be mostly spared by successful overrides"
        );
        assert_eq!(p.predict(pc).outcome, Outcome::NotTaken, "bank overrides");
    }

    #[test]
    fn storage_accounting_and_name() {
        let p = BiMode::new(12, 8, 10, CounterKind::TwoBit).unwrap();
        assert_eq!(p.storage_bits(), 2 * 4096 * 2 + 1024 * 2);
        assert_eq!(p.name(), "bimode 2x4096 h=8 choice=1024 2-bit");
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut p = bimode();
        for i in 0..100u64 {
            p.update(0x1000 + 4 * (i % 5), Outcome::from(i % 3 == 0));
        }
        p.reset();
        assert_eq!(p, bimode());
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(BiMode::new(0, 4, 8, CounterKind::TwoBit).is_err());
        assert!(BiMode::new(8, 4, 31, CounterKind::TwoBit).is_err());
        assert!(BiMode::new(8, 99, 8, CounterKind::TwoBit).is_err());
    }
}
