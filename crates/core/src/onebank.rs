//! Shared implementation of a single-bank, tag-less, direct-mapped
//! predictor: one counter table, one index function, one global history
//! register. `bimodal`, `gshare` and `gselect` are thin wrappers.

use crate::counter::{CounterKind, CounterTable};
use crate::error::ConfigError;
use crate::history::GlobalHistory;
use crate::index::IndexFunction;
use crate::predictor::{Outcome, Prediction};
use crate::vector::InfoVector;

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct OneBank {
    table: CounterTable,
    history: GlobalHistory,
    func: IndexFunction,
    n: u32,
}

impl OneBank {
    pub(crate) fn new(
        entries_log2: u32,
        history_bits: u32,
        kind: CounterKind,
        func: IndexFunction,
    ) -> Result<Self, ConfigError> {
        if entries_log2 == 0 || entries_log2 > 30 {
            return Err(ConfigError::invalid(
                "entries_log2",
                entries_log2,
                "must be in 1..=30",
            ));
        }
        if history_bits > 64 {
            return Err(ConfigError::invalid(
                "history_bits",
                history_bits,
                "must be at most 64",
            ));
        }
        Ok(OneBank {
            table: CounterTable::new(entries_log2, kind),
            history: GlobalHistory::new(history_bits),
            func,
            n: entries_log2,
        })
    }

    #[inline]
    fn index(&self, pc: u64) -> u64 {
        let v = InfoVector::new(pc, self.history.value(), self.history.len());
        self.func.index(&v, self.n)
    }

    #[inline]
    pub(crate) fn predict(&self, pc: u64) -> Prediction {
        Prediction::of(self.table.predict(self.index(pc)))
    }

    #[inline]
    pub(crate) fn update(&mut self, pc: u64, outcome: Outcome) {
        let idx = self.index(pc);
        self.table.train(idx, outcome);
        self.history.push(outcome);
    }

    #[inline]
    pub(crate) fn record_unconditional(&mut self, _pc: u64) {
        self.history.push(Outcome::Taken);
    }

    pub(crate) fn storage_bits(&self) -> u64 {
        self.table.storage_bits()
    }

    pub(crate) fn reset(&mut self) {
        self.table.reset();
        self.history.clear();
    }

    pub(crate) fn entries_log2(&self) -> u32 {
        self.n
    }

    pub(crate) fn history_bits(&self) -> u32 {
        self.history.len()
    }

    pub(crate) fn counter_kind(&self) -> CounterKind {
        self.table.kind()
    }

    #[cfg(test)]
    pub(crate) fn clear_history_for_test(&mut self) {
        self.history.clear();
    }
}
