//! Error types for predictor configuration and spec parsing.

use std::error::Error;
use std::fmt;

/// An invalid predictor configuration or specification string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A numeric or enumerated parameter is out of its legal range.
    InvalidParam {
        /// Parameter name, e.g. `"bank_entries_log2"`.
        name: &'static str,
        /// The offending value, rendered.
        value: String,
        /// Why the value is rejected.
        reason: &'static str,
    },
    /// The spec string names a predictor this crate does not provide.
    UnknownPredictor(String),
    /// The spec string is syntactically malformed.
    Parse(String),
}

impl ConfigError {
    /// Shorthand constructor for [`ConfigError::InvalidParam`].
    pub fn invalid(name: &'static str, value: impl fmt::Display, reason: &'static str) -> Self {
        ConfigError::InvalidParam {
            name,
            value: value.to_string(),
            reason,
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidParam {
                name,
                value,
                reason,
            } => {
                write!(f, "invalid value `{value}` for `{name}`: {reason}")
            }
            ConfigError::UnknownPredictor(name) => write!(f, "unknown predictor `{name}`"),
            ConfigError::Parse(msg) => write!(f, "malformed predictor spec: {msg}"),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ConfigError::invalid("n", 42, "must be at most 30");
        assert_eq!(
            e.to_string(),
            "invalid value `42` for `n`: must be at most 30"
        );
        assert_eq!(
            ConfigError::UnknownPredictor("foo".into()).to_string(),
            "unknown predictor `foo`"
        );
        assert!(ConfigError::Parse("x".into())
            .to_string()
            .contains("malformed"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(ConfigError::Parse("x".into()));
    }
}
