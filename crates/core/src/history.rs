//! The global branch history register.
//!
//! Global-history schemes key their tables with a shift register containing
//! the directions of the most recent branches. Following the paper,
//! unconditional branches are also shifted in (as taken).

use crate::predictor::Outcome;
use std::fmt;

/// Maximum supported history length in bits.
pub const MAX_HISTORY_BITS: u32 = 64;

/// A global history shift register of up to [`MAX_HISTORY_BITS`] bits.
///
/// Bit 0 is the most recent branch; a taken branch shifts in a 1.
/// A zero-length history is legal and always reads as 0 (this is how the
/// history-length sweeps of figures 7 and 12 include the `h = 0` point,
/// where gshare degenerates to bimodal).
///
/// ```
/// use bpred_core::history::GlobalHistory;
/// use bpred_core::predictor::Outcome;
///
/// let mut h = GlobalHistory::new(4);
/// h.push(Outcome::Taken);
/// h.push(Outcome::NotTaken);
/// h.push(Outcome::Taken);
/// assert_eq!(h.value(), 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct GlobalHistory {
    bits: u64,
    len: u32,
}

impl GlobalHistory {
    /// A cleared history register of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_HISTORY_BITS`.
    pub fn new(len: u32) -> Self {
        assert!(
            len <= MAX_HISTORY_BITS,
            "history length {len} exceeds {MAX_HISTORY_BITS}"
        );
        GlobalHistory { bits: 0, len }
    }

    /// The register length in bits.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` when the register has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current history pattern (low `len` bits).
    #[inline]
    pub fn value(&self) -> u64 {
        self.bits
    }

    /// Shift a branch direction into the register.
    #[inline]
    pub fn push(&mut self, outcome: Outcome) {
        if self.len == 0 {
            return;
        }
        let mask = if self.len == 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        };
        self.bits = ((self.bits << 1) | u64::from(outcome.is_taken())) & mask;
    }

    /// Clear the register.
    #[inline]
    pub fn clear(&mut self) {
        self.bits = 0;
    }
}

impl fmt::Display for GlobalHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 0 {
            return f.write_str("<empty>");
        }
        write!(f, "{:0width$b}", self.bits, width = self.len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_most_recent_into_bit0() {
        let mut h = GlobalHistory::new(8);
        h.push(Outcome::Taken);
        assert_eq!(h.value(), 0b1);
        h.push(Outcome::NotTaken);
        assert_eq!(h.value(), 0b10);
        h.push(Outcome::Taken);
        assert_eq!(h.value(), 0b101);
    }

    #[test]
    fn register_truncates_to_length() {
        let mut h = GlobalHistory::new(3);
        for _ in 0..10 {
            h.push(Outcome::Taken);
        }
        assert_eq!(h.value(), 0b111);
        h.push(Outcome::NotTaken);
        assert_eq!(h.value(), 0b110);
    }

    #[test]
    fn zero_length_history_is_always_zero() {
        let mut h = GlobalHistory::new(0);
        h.push(Outcome::Taken);
        h.push(Outcome::Taken);
        assert_eq!(h.value(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn full_width_history_works() {
        let mut h = GlobalHistory::new(64);
        for _ in 0..128 {
            h.push(Outcome::Taken);
        }
        assert_eq!(h.value(), u64::MAX);
        h.push(Outcome::NotTaken);
        assert_eq!(h.value(), u64::MAX - 1);
    }

    #[test]
    fn clear_resets_pattern_not_length() {
        let mut h = GlobalHistory::new(5);
        h.push(Outcome::Taken);
        h.clear();
        assert_eq!(h.value(), 0);
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn display_pads_to_length() {
        let mut h = GlobalHistory::new(4);
        h.push(Outcome::Taken);
        assert_eq!(h.to_string(), "0001");
        assert_eq!(GlobalHistory::new(0).to_string(), "<empty>");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn too_long_history_panics() {
        let _ = GlobalHistory::new(65);
    }
}
