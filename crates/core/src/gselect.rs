//! The *gselect* predictor: low-order address bits concatenated with the
//! global history (GAs in Yeh and Patt's terminology).

use crate::counter::CounterKind;
use crate::error::ConfigError;
use crate::index::IndexFunction;
use crate::onebank::OneBank;
use crate::predictor::{BranchPredictor, Outcome, Prediction};

/// A single-bank, tag-less gselect predictor.
///
/// The index concatenates `n - k` low-order address bits above the `k`
/// history bits. As the paper notes, with long histories and small tables
/// gselect retains very few address bits (e.g. only 4 address bits for a
/// 64K-entry table with a 12-bit history), which is why it aliases more
/// than gshare in figures 1 and 2.
///
/// ```
/// use bpred_core::prelude::*;
///
/// let mut p = Gselect::new(12, 6, CounterKind::TwoBit)?;
/// let pc = 0x4000_0040;
/// let _ = p.predict(pc);
/// p.update(pc, Outcome::NotTaken);
/// # Ok::<(), bpred_core::error::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gselect {
    inner: OneBank,
}

impl Gselect {
    /// A gselect predictor with `2^entries_log2` counters and
    /// `history_bits` bits of global history.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `entries_log2` is 0 or above 30, or if
    /// `history_bits` exceeds 64.
    pub fn new(
        entries_log2: u32,
        history_bits: u32,
        kind: CounterKind,
    ) -> Result<Self, ConfigError> {
        Ok(Gselect {
            inner: OneBank::new(entries_log2, history_bits, kind, IndexFunction::Gselect)?,
        })
    }

    /// `log2` of the table size.
    pub fn entries_log2(&self) -> u32 {
        self.inner.entries_log2()
    }

    /// History register length.
    pub fn history_bits(&self) -> u32 {
        self.inner.history_bits()
    }

    /// Counter width.
    pub fn counter_kind(&self) -> CounterKind {
        self.inner.counter_kind()
    }
}

impl BranchPredictor for Gselect {
    fn predict(&mut self, pc: u64) -> Prediction {
        self.inner.predict(pc)
    }

    fn update(&mut self, pc: u64, outcome: Outcome) {
        self.inner.update(pc, outcome);
    }

    fn record_unconditional(&mut self, pc: u64) {
        self.inner.record_unconditional(pc);
    }

    fn name(&self) -> String {
        format!(
            "gselect {} h={} {}",
            1u64 << self.inner.entries_log2(),
            self.inner.history_bits(),
            self.inner.counter_kind()
        )
    }

    fn storage_bits(&self) -> u64 {
        self.inner.storage_bits()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
impl Gselect {
    /// Test hook: clear only the history register, keeping table contents.
    fn reset_history_for_test(&mut self) {
        self.inner.clear_history_for_test();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_history_correlated_pattern() {
        let mut p = Gselect::new(10, 4, CounterKind::TwoBit).unwrap();
        let pc = 0x1000;
        let mut last = Outcome::NotTaken;
        for _ in 0..64 {
            last = last.flipped();
            p.update(pc, last);
        }
        let mut correct = 0;
        for _ in 0..32 {
            last = last.flipped();
            if p.predict(pc).outcome == last {
                correct += 1;
            }
            p.update(pc, last);
        }
        assert_eq!(correct, 32);
    }

    #[test]
    fn long_history_discards_address_bits() {
        // With k >= n the index is pure history: two different branches
        // under the same history always collide — the gselect weakness.
        let mut p = Gselect::new(8, 8, CounterKind::TwoBit).unwrap();
        for _ in 0..4 {
            p.update(0x1000, Outcome::Taken);
            // Restore the same history state before touching the alias:
            // one taken update shifts in a single 1; do a full period of 8.
        }
        // Rather than reconstructing history by hand, check the index
        // function property directly through prediction equality of a
        // freshly reset predictor (history = 0 for both lookups).
        let mut q = Gselect::new(8, 8, CounterKind::TwoBit).unwrap();
        q.update(0x1000, Outcome::Taken); // trains entry for hist=0
        q.reset();
        q.update(0x2000, Outcome::Taken); // same entry: hist=0 again
        q.reset();
        // Train strongly through one address; read through the other.
        for _ in 0..2 {
            q.update(0x1000, Outcome::Taken);
            q.reset_history_for_test();
        }
        assert_eq!(q.predict(0x2000).outcome, Outcome::Taken);
    }

    #[test]
    fn name_and_storage() {
        let p = Gselect::new(14, 12, CounterKind::TwoBit).unwrap();
        assert_eq!(p.name(), "gselect 16384 h=12 2-bit");
        assert_eq!(p.storage_bits(), 16384 * 2);
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Gselect::new(0, 4, CounterKind::TwoBit).is_err());
        assert!(Gselect::new(10, 200, CounterKind::TwoBit).is_err());
    }
}
