//! Acceptance pins for campaign artifacts and regression diffing
//! (ISSUE 2). Lives in its own integration-test binary so the
//! process-global resume context exercised by `tests/resume.rs` can
//! never leak into these runs.

use bpred_results::campaign::{diff, CampaignArtifact};
use bpred_sim::campaign;
use bpred_sim::experiments::ExperimentOpts;

#[test]
fn campaign_artifact_roundtrips_and_diffs_clean() {
    // No store attached: the campaign itself must not require one.
    let mut opts = ExperimentOpts::quick();
    opts.len_override = Some(10_000);
    let quick = campaign::find("quick").unwrap();
    let a = campaign::run(quick, &opts);
    assert_eq!(a.name, "quick");
    assert_eq!(a.experiments.len(), quick.experiments.len());
    assert!(a.experiments.iter().all(|e| !e.tables.is_empty()));

    // Artifact -> pretty JSON -> artifact is lossless, and identical
    // artifacts diff clean at zero tolerance.
    let reparsed = CampaignArtifact::parse(&a.to_pretty_string()).unwrap();
    assert_eq!(reparsed, a);
    let d = diff(&a, &reparsed, 0.0);
    assert!(d.is_clean());
    assert!(d.cells_compared > 0);

    // A perturbed numeric cell beyond tolerance is reported per cell.
    let mut perturbed = a.clone();
    let cell = perturbed.experiments[0].tables[0]
        .rows
        .get_mut(0)
        .and_then(|row| row.get_mut(1))
        .expect("fig5 has at least one data cell");
    let bumped: f64 = cell.parse::<f64>().expect("data cell is numeric") + 1.0;
    *cell = format!("{bumped:.2}");
    let d = diff(&a, &perturbed, 0.25);
    assert_eq!(d.regressions.len(), 1);
    assert!(d.regressions[0].delta.unwrap() > 0.25);
    // ... and within tolerance it passes.
    assert!(diff(&a, &perturbed, 2.0).is_clean());
}

#[test]
fn campaign_is_deterministic_across_runs() {
    let mut opts = ExperimentOpts::quick();
    opts.len_override = Some(10_000);
    opts.threads = 2;
    let quick = campaign::find("quick").unwrap();
    let first = campaign::run(quick, &opts);
    opts.threads = 1;
    let second = campaign::run(quick, &opts);
    assert_eq!(
        first.to_pretty_string(),
        second.to_pretty_string(),
        "artifacts are byte-identical regardless of thread count"
    );
}
