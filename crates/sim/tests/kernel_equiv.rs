//! Property tests: the monomorphized kernels are bit-identical to the
//! `dyn` engine on random specs and seeded workloads, and `run_specs`
//! falls back to the `dyn` path for specs without a kernel.

use bpred_core::spec::{parse_spec, PredictorSpec};
use bpred_sim::engine::{self, NovelPolicy};
use bpred_sim::kernel::{run_specs, PredictorKernel};
use bpred_trace::cache;
use bpred_trace::soa::TraceColumns;
use bpred_trace::workload::IbsBenchmark;
use proptest::{prop_assert, prop_assert_eq};

/// A random kernel-eligible spec string built from raw draws.
fn spec_from(family: u8, n: u32, h: u32, wide: bool, total: bool, skew_off: bool) -> String {
    match family % 4 {
        0 => format!("bimodal:n={n}"),
        1 => format!("gshare:n={n},h={h}"),
        2 => format!("gselect:n={n},h={h}"),
        _ => {
            let name = if wide { "egskew" } else { "gskew" };
            let banks = if wide { 5 } else { 3 };
            let update = if total { "total" } else { "partial" };
            let skew = if skew_off { "off" } else { "on" };
            // n >= 2 for the skewing functions.
            format!(
                "{name}:n={},h={h},banks={banks},update={update},skew={skew}",
                n.max(2)
            )
        }
    }
}

fn bench_from(i: u8) -> IbsBenchmark {
    let all = IbsBenchmark::all();
    all[i as usize % all.len()]
}

proptest::proptest! {
    #[test]
    fn kernel_matches_run_with_on_random_specs(
        family in proptest::any::<u8>(),
        n in 1u32..=13,
        h in 0u32..=18,
        wide in proptest::any::<bool>(),
        total in proptest::any::<bool>(),
        skew_off in proptest::any::<bool>(),
        bench_i in proptest::any::<u8>(),
        len in 200u64..1_500,
        seed in proptest::any::<u64>(),
    ) {
        let spec = spec_from(family, n, h, wide, total, skew_off);
        let bench = bench_from(bench_i);
        let records = cache::materialize_seeded(bench, len, seed);
        let cols = TraceColumns::from_records(&records);

        let structured = PredictorSpec::parse(&spec).expect("generated specs parse");
        let mut kernel =
            PredictorKernel::from_spec(&structured).expect("generated specs are kernel-eligible");
        let fast = kernel.run(&cols);

        let mut predictor = parse_spec(&spec).expect("generated specs build");
        for policy in [NovelPolicy::Count, NovelPolicy::Exclude] {
            let slow = engine::run_with(&mut predictor, records.iter().copied(), policy);
            prop_assert_eq!(
                fast, slow,
                "{} diverges from the dyn path under {:?} on {:?} len {} seed {:#x}",
                &spec, policy, bench, len, seed
            );
            // Fresh predictor for the second policy pass.
            predictor = parse_spec(&spec).expect("generated specs build");
        }
        // Kernels never flag predictions novel, which is what makes the
        // two policies interchangeable above.
        prop_assert_eq!(fast.novel, 0);
    }

    #[test]
    fn run_specs_matches_run_many_with_dyn_fallback_rows(
        n in 2u32..=10,
        h in 0u32..=10,
        bench_i in proptest::any::<u8>(),
        len in 200u64..1_000,
        seed in proptest::any::<u64>(),
    ) {
        // One kernel row, one dyn-only row (mcfarling has no kernel), in
        // both orders: routing must preserve order and bit-identity.
        let bench = bench_from(bench_i);
        let records = cache::materialize_seeded(bench, len, seed);
        let cols = TraceColumns::from_records(&records);
        let specs = vec![
            format!("gskew:n={},h={h}", n.max(2)),
            format!("mcfarling:n={n},h={h}"),
            format!("gshare:n={n},h={h}"),
        ];
        for spec in &specs[1..2] {
            let structured = PredictorSpec::parse(spec).unwrap();
            prop_assert!(
                PredictorKernel::from_spec(&structured).is_none(),
                "{} unexpectedly grew a kernel; pick another fallback family",
                spec
            );
        }
        let routed = run_specs(&specs, &records, &cols, NovelPolicy::Count, 2).unwrap();
        let mut predictors: Vec<_> = specs
            .iter()
            .map(|s| parse_spec(s).unwrap())
            .collect();
        let reference = engine::run_many(&mut predictors, &records, NovelPolicy::Count);
        prop_assert_eq!(routed, reference);
    }
}
