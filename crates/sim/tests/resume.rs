//! Acceptance pins for the resume layer (ISSUE 2).
//!
//! The resume context is process-global, so everything runs inside ONE
//! `#[test]` in this dedicated integration-test binary: integration
//! tests get their own process, and a single test body keeps the
//! configure/deconfigure sequence strictly ordered.

use bpred_results::store::ResultsStore;
use bpred_sim::experiments::{self, ExperimentOpts};
use bpred_sim::resume;
use std::path::PathBuf;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bpred-sim-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn render(output: &experiments::ExperimentOutput) -> String {
    output.render()
}

fn fast_opts() -> ExperimentOpts {
    let mut opts = ExperimentOpts::quick();
    opts.len_override = Some(20_000);
    opts
}

#[test]
fn warm_store_resumes_with_zero_simulations_and_identical_bytes() {
    let root = temp_store("fig5");
    let opts = fast_opts();

    // Cold run: simulate everything, persist every cell.
    resume::configure(ResultsStore::open(&root).unwrap(), true, true);
    let cold = render(&experiments::run("fig5", &opts).unwrap());
    let after_cold = resume::stats();
    assert_eq!(
        after_cold.cells_skipped, 0,
        "cold store has nothing to serve"
    );
    assert!(after_cold.cells_simulated > 0);
    assert_eq!(
        after_cold.records_saved, after_cold.cells_simulated,
        "every simulated cell persists"
    );
    resume::deconfigure().unwrap();

    // Warm run in a *fresh* store handle: every cell must come from
    // disk — zero simulations — and the rendered table must be
    // byte-identical to the cold run.
    resume::configure(ResultsStore::open(&root).unwrap(), true, true);
    let warm = render(&experiments::run("fig5", &opts).unwrap());
    let after_warm = resume::stats();
    assert_eq!(
        after_warm.cells_simulated, after_cold.cells_simulated,
        "warm run performs zero simulations"
    );
    assert_eq!(
        after_warm.cells_skipped, after_cold.cells_simulated,
        "every cell is served from the store"
    );
    assert_eq!(warm, cold, "resumed table is byte-identical");
    resume::deconfigure().unwrap();

    // A different workload seed misses the store completely: the
    // fingerprint covers the seeded workload parameters.
    experiments::set_workload_seed(0x1234_5678);
    resume::configure(ResultsStore::open(&root).unwrap(), true, false);
    let reseeded = render(&experiments::run("fig5", &opts).unwrap());
    let after_reseed = resume::stats();
    assert_eq!(
        after_reseed.cells_skipped, after_warm.cells_skipped,
        "no stored cell matches the new seed"
    );
    assert!(after_reseed.cells_simulated > after_warm.cells_simulated);
    assert_ne!(reseeded, cold, "a different seed is a different workload");
    resume::deconfigure().unwrap();
    experiments::set_workload_seed(bpred_trace::workload::DEFAULT_SEED_BASE);

    // The per-cell path (`sim_pct` via fig7's bench sweep) resumes too.
    let before = resume::stats();
    resume::configure(ResultsStore::open(&root).unwrap(), true, true);
    let fig7_cold = render(&experiments::run("fig7", &opts).unwrap());
    let mid = resume::stats();
    assert!(mid.cells_simulated > before.cells_simulated);
    let fig7_warm = render(&experiments::run("fig7", &opts).unwrap());
    let after = resume::stats();
    assert_eq!(after.cells_simulated, mid.cells_simulated);
    assert_eq!(fig7_warm, fig7_cold);
    resume::deconfigure().unwrap();

    // Without a store attached the counters stand still.
    let idle = resume::stats();
    let _ = render(&experiments::run("fig5", &opts).unwrap());
    assert_eq!(resume::stats(), idle, "detached runs bypass the counters");

    let _ = std::fs::remove_dir_all(&root);
}
