//! Process-wide engine throughput counters.
//!
//! The engine's two simulation paths — the monomorphized [`kernel`]
//! fast path and the `Box<dyn BranchPredictor>` fallback — report how
//! many record applications they executed and how long they spent, so
//! the CLI can print records/sec under `--verbose` and the `bench`
//! subcommand can track the speedup over time.
//!
//! One *record application* is one record driven through one predictor:
//! a `run_many` pass over `R` records with `P` predictors counts `R * P`
//! applications, which makes the dyn and kernel rates directly
//! comparable. Durations are summed across worker threads, so the
//! reported rate is a per-core throughput, not wall clock.
//!
//! [`kernel`]: crate::kernel

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static KERNEL_APPLICATIONS: AtomicU64 = AtomicU64::new(0);
static KERNEL_NANOS: AtomicU64 = AtomicU64::new(0);
static DYN_APPLICATIONS: AtomicU64 = AtomicU64::new(0);
static DYN_NANOS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the engine's per-path throughput counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineTiming {
    /// Record applications executed by the kernel fast path.
    pub kernel_applications: u64,
    /// CPU nanoseconds spent in the kernel fast path (summed across
    /// workers).
    pub kernel_nanos: u64,
    /// Record applications executed through `dyn BranchPredictor`.
    pub dyn_applications: u64,
    /// CPU nanoseconds spent in the dyn path (summed across workers).
    pub dyn_nanos: u64,
}

impl EngineTiming {
    /// Kernel-path throughput in record applications per second, or 0
    /// when the path never ran.
    pub fn kernel_rate(&self) -> f64 {
        rate(self.kernel_applications, self.kernel_nanos)
    }

    /// Dyn-path throughput in record applications per second, or 0 when
    /// the path never ran.
    pub fn dyn_rate(&self) -> f64 {
        rate(self.dyn_applications, self.dyn_nanos)
    }

    /// Seconds spent in the kernel path.
    pub fn kernel_seconds(&self) -> f64 {
        self.kernel_nanos as f64 / 1e9
    }

    /// Seconds spent in the dyn path.
    pub fn dyn_seconds(&self) -> f64 {
        self.dyn_nanos as f64 / 1e9
    }
}

fn rate(applications: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        0.0
    } else {
        applications as f64 / (nanos as f64 / 1e9)
    }
}

/// Credit `applications` record applications over `elapsed` to the
/// kernel fast path.
pub fn record_kernel(applications: u64, elapsed: Duration) {
    KERNEL_APPLICATIONS.fetch_add(applications, Ordering::Relaxed);
    KERNEL_NANOS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

/// Credit `applications` record applications over `elapsed` to the dyn
/// path.
pub fn record_dyn(applications: u64, elapsed: Duration) {
    DYN_APPLICATIONS.fetch_add(applications, Ordering::Relaxed);
    DYN_NANOS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

/// Snapshot the global counters.
pub fn stats() -> EngineTiming {
    EngineTiming {
        kernel_applications: KERNEL_APPLICATIONS.load(Ordering::Relaxed),
        kernel_nanos: KERNEL_NANOS.load(Ordering::Relaxed),
        dyn_applications: DYN_APPLICATIONS.load(Ordering::Relaxed),
        dyn_nanos: DYN_NANOS.load(Ordering::Relaxed),
    }
}

/// Zero the counters (single-threaded entry points only, like the other
/// process-global switches).
pub fn reset() {
    KERNEL_APPLICATIONS.store(0, Ordering::Relaxed);
    KERNEL_NANOS.store(0, Ordering::Relaxed);
    DYN_APPLICATIONS.store(0, Ordering::Relaxed);
    DYN_NANOS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_accumulation() {
        // Counters are process-global and shared with other tests, so
        // assert on monotonic deltas only.
        let before = stats();
        record_kernel(1_000, Duration::from_micros(10));
        record_dyn(2_000, Duration::from_micros(40));
        let after = stats();
        assert_eq!(
            after.kernel_applications - before.kernel_applications,
            1_000
        );
        assert_eq!(after.dyn_applications - before.dyn_applications, 2_000);
        assert!(after.kernel_nanos > before.kernel_nanos);
        assert!(after.dyn_nanos > before.dyn_nanos);
        assert!(after.kernel_rate() > 0.0);
        assert!(after.dyn_rate() > 0.0);
        assert!(after.kernel_seconds() > 0.0);
        assert!(after.dyn_seconds() > 0.0);
    }

    #[test]
    fn zero_time_rate_is_zero() {
        assert_eq!(EngineTiming::default().kernel_rate(), 0.0);
        assert_eq!(EngineTiming::default().dyn_rate(), 0.0);
    }
}
