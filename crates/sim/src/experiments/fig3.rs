//! Figure 3: conflicts depend on the mapping function (didactic).
//!
//! The paper's figure shows a 16-entry gshare table and a 16-entry gselect
//! table mapping the same set of `(address, history)` pairs, with
//! different pairs colliding under each. We reproduce the demonstration
//! computationally: enumerate pairs and report, for each mapping, the
//! colliding pairs — verifying that the conflict sets differ.

use super::{ExperimentOpts, ExperimentOutput};
use crate::report::Table;
use bpred_core::index::IndexFunction;
use bpred_core::vector::InfoVector;

const N: u32 = 4; // 16-entry tables, as in the figure

/// The demonstration pair set: a handful of (address, history) pairs.
fn demo_pairs() -> Vec<InfoVector> {
    // Addresses are word-aligned (shifted left by 2 to undo the pc >> 2).
    [
        (0b0011u64, 0b0101u64),
        (0b1100, 0b1010),
        (0b0110, 0b0110),
        (0b1011, 0b0101),
        (0b1011, 0b1101),
        (0b0100, 0b0100),
    ]
    .into_iter()
    .map(|(a, h)| InfoVector::new(a << 2, h, 4))
    .collect()
}

/// All colliding index groups under `func`, as `(index, members)`.
fn collisions(func: IndexFunction, pairs: &[InfoVector]) -> Vec<(u64, Vec<String>)> {
    let mut by_index: std::collections::BTreeMap<u64, Vec<String>> =
        std::collections::BTreeMap::new();
    for v in pairs {
        by_index.entry(func.index(v, N)).or_default().push(format!(
            "(a={:04b}, h={:04b})",
            v.addr(),
            v.hist()
        ));
    }
    by_index
        .into_iter()
        .filter(|(_, members)| members.len() > 1)
        .collect()
}

pub(super) fn run(_opts: &ExperimentOpts) -> ExperimentOutput {
    let pairs = demo_pairs();
    let mut table = Table::with_columns(
        "Conflicting pair groups in a 16-entry table",
        &["mapping", "entry", "colliding pairs"],
    );
    for func in [IndexFunction::Gshare, IndexFunction::Gselect] {
        for (index, members) in collisions(func, &pairs) {
            table.push_row(vec![
                func.to_string(),
                format!("{index}"),
                members.join("  "),
            ]);
        }
    }
    ExperimentOutput {
        id: "fig3",
        title: "Figure 3 — the pairs that conflict depend on the mapping function".into(),
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_sets_differ_between_mappings() {
        let pairs = demo_pairs();
        let gshare = collisions(IndexFunction::Gshare, &pairs);
        let gselect = collisions(IndexFunction::Gselect, &pairs);
        assert!(!gshare.is_empty(), "demo set must conflict under gshare");
        assert!(!gselect.is_empty(), "demo set must conflict under gselect");
        let gshare_members: Vec<_> = gshare.iter().flat_map(|(_, m)| m.clone()).collect();
        let gselect_members: Vec<_> = gselect.iter().flat_map(|(_, m)| m.clone()).collect();
        assert_ne!(
            gshare_members, gselect_members,
            "the same pairs colliding under both mappings would defeat the figure"
        );
    }

    #[test]
    fn output_has_rows() {
        let out = run(&ExperimentOpts::quick());
        assert!(!out.tables[0].rows().is_empty());
    }
}
