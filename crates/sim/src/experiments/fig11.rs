//! Figure 11: extrapolated (analytical) vs measured misprediction of the
//! skewed predictor — 1-bit automatons, total update, 4-bit history —
//! across bank sizes.
//!
//! The model is expected to slightly *over*-estimate the measured rate
//! (constructive aliasing is not modeled).

use super::helpers::{sim_pct, stream};
use super::{ExperimentOpts, ExperimentOutput};
use crate::report::{pct, Table};
use crate::runner::parallel_map;
use bpred_model::extrapolate::Extrapolator;
use bpred_trace::workload::IbsBenchmark;

const BANK_LOG2: std::ops::RangeInclusive<u32> = 6..=14;
const HISTORY: u32 = 4;

#[derive(Debug, Clone, Copy)]
struct Cell {
    extrapolated: f64,
    measured: f64,
}

fn measure(bench: IbsBenchmark, bank_log2: u32, len: u64) -> Cell {
    let extrapolation = Extrapolator {
        bank_entries: 1 << bank_log2,
        history_bits: HISTORY,
    }
    .run(stream(bench, len), stream(bench, len));
    let measured = sim_pct(
        &format!("gskew:n={bank_log2},h={HISTORY},ctr=1,update=total"),
        bench,
        len,
    );
    Cell {
        extrapolated: 100.0 * extrapolation.extrapolated_rate,
        measured,
    }
}

pub(super) fn run(opts: &ExperimentOpts) -> ExperimentOutput {
    let banks: Vec<u32> = BANK_LOG2.collect();
    let tasks: Vec<(u32, IbsBenchmark)> = banks
        .iter()
        .flat_map(|&n| IbsBenchmark::all().into_iter().map(move |b| (n, b)))
        .collect();
    let cells = parallel_map(tasks, opts.threads, |(n, bench)| {
        measure(bench, n, opts.len_for(bench))
    });

    let mut columns = vec!["bank entries".to_string()];
    columns.extend(IbsBenchmark::all().iter().map(|b| b.name().to_string()));
    let mut extrapolated = Table::new(
        "Extrapolated mispredict % (model: 1-bit, total update, h=4)",
        columns.clone(),
    );
    let mut measured = Table::new(
        "Measured mispredict % (simulated 3-bank gskew: 1-bit, total update, h=4)",
        columns,
    );
    let per_row = IbsBenchmark::all().len();
    for (i, &n) in banks.iter().enumerate() {
        let row = &cells[i * per_row..(i + 1) * per_row];
        let label = format!("3x{}", 1u64 << n);
        extrapolated.push_row(
            std::iter::once(label.clone())
                .chain(row.iter().map(|c| pct(c.extrapolated)))
                .collect(),
        );
        measured.push_row(
            std::iter::once(label)
                .chain(row.iter().map(|c| pct(c.measured)))
                .collect(),
        );
    }
    ExperimentOutput {
        id: "fig11",
        title: "Figure 11 — extrapolated vs measured gskew misprediction".into(),
        tables: vec![extrapolated, measured],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_simulation() {
        let c = measure(IbsBenchmark::Verilog, 10, 60_000);
        // Same ballpark...
        assert!(
            (c.extrapolated - c.measured).abs() < c.measured.max(2.0),
            "extrapolated {} vs measured {}",
            c.extrapolated,
            c.measured
        );
        // ...and the paper notes the model overestimates slightly; allow
        // a little slack for workload noise.
        assert!(
            c.extrapolated > c.measured - 1.0,
            "extrapolated {} unexpectedly far below measured {}",
            c.extrapolated,
            c.measured
        );
    }

    #[test]
    fn output_shape() {
        let mut opts = ExperimentOpts::quick();
        opts.len_override = Some(15_000);
        let out = run(&opts);
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].rows().len(), 9);
    }
}
