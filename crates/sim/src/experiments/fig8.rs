//! Figure 8: 3N-entry gskew (partial and total update) vs an N-entry
//! fully-associative LRU predictor, 4-bit history, 2-bit counters.
//!
//! Misses of the fully-associative table fall back to a static
//! *always taken* prediction and are charged normally (the paper's setup).
//! The paper's conclusion: gskew with partial update slightly beats the
//! FA-LRU table; with total update it is slightly worse.

use super::helpers::{size_labels, spec_sweep_table};
use super::{ExperimentOpts, ExperimentOutput};

const N_LOG2: std::ops::RangeInclusive<u32> = 6..=14;

pub(super) fn run(opts: &ExperimentOpts) -> ExperimentOutput {
    let ns: Vec<u32> = N_LOG2.collect();
    let labels = size_labels(*N_LOG2.start(), *N_LOG2.end());
    let falru = spec_sweep_table(
        "N-entry fully-associative LRU mispredict % (miss => always taken)",
        "N",
        &labels,
        opts,
        |row| format!("falru:cap={},h=4", 1u64 << ns[row]),
    );
    let partial = spec_sweep_table(
        "3xN gskew mispredict % (partial update)",
        "N",
        &labels,
        opts,
        |row| format!("gskew:n={},h=4,update=partial", ns[row]),
    );
    let total = spec_sweep_table(
        "3xN gskew mispredict % (total update)",
        "N",
        &labels,
        opts,
        |row| format!("gskew:n={},h=4,update=total", ns[row]),
    );
    ExperimentOutput {
        id: "fig8",
        title: "Figure 8 — 3N-entry gskew vs N-entry fully-associative LRU, 4-bit history".into(),
        tables: vec![falru, partial, total],
    }
}

#[cfg(test)]
mod tests {
    use super::super::helpers::sim_pct;
    use super::*;
    use bpred_trace::workload::IbsBenchmark;

    #[test]
    fn partial_update_beats_total_update() {
        // Section 5.1's finding is an aggregate one ("partial update
        // consistently outperforms total update" across the suite), so
        // assert it on the six-benchmark mean; individual benchmarks can
        // and do flip by a few hundredths of a percent either way.
        let len = 120_000;
        let mean = |spec: &str| -> f64 {
            let sum: f64 = IbsBenchmark::all()
                .iter()
                .map(|&b| sim_pct(spec, b, len))
                .sum();
            sum / IbsBenchmark::all().len() as f64
        };
        let partial = mean("gskew:n=9,h=4,update=partial");
        let total = mean("gskew:n=9,h=4,update=total");
        assert!(
            partial <= total + 0.02,
            "partial {partial} should not lose to total {total} on average"
        );
    }

    #[test]
    fn output_shape() {
        let mut opts = ExperimentOpts::quick();
        opts.len_override = Some(15_000);
        let out = run(&opts);
        assert_eq!(out.tables.len(), 3);
        assert_eq!(out.tables[0].rows().len(), 9);
    }
}
