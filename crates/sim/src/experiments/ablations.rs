//! Ablations and extensions beyond the paper's printed figures:
//!
//! * **banks** — 3 vs 5 banks (section 5.1 reports "very little benefit"
//!   without plotting it);
//! * **update** — partial vs total update across sizes (section 5.1);
//! * **counters** — 1-bit vs 2-bit automatons under aliasing (section 2 /
//!   Table 2 discussion);
//! * **hybrids** — the future-work question of section 7, realized: the
//!   EV8-style 2bc-gskew and a McFarling gshare+bimodal hybrid against
//!   e-gskew.

use super::helpers::{history_labels, size_labels, spec_sweep_table};
use super::{ExperimentOpts, ExperimentOutput};

const SIZES_LOG2: std::ops::RangeInclusive<u32> = 6..=14;

pub(super) fn banks(opts: &ExperimentOpts) -> ExperimentOutput {
    let ns: Vec<u32> = SIZES_LOG2.collect();
    let labels = size_labels(*SIZES_LOG2.start(), *SIZES_LOG2.end());
    let three = spec_sweep_table(
        "3-bank gskew mispredict % (h=4, partial)",
        "bank entries",
        &labels,
        opts,
        |row| format!("gskew:n={},h=4,banks=3", ns[row]),
    );
    let five = spec_sweep_table(
        "5-bank gskew mispredict % (h=4, partial)",
        "bank entries",
        &labels,
        opts,
        |row| format!("gskew:n={},h=4,banks=5", ns[row]),
    );
    ExperimentOutput {
        id: "ablation-banks",
        title: "Ablation — 3 vs 5 predictor banks (section 5.1: expect negligible benefit)".into(),
        tables: vec![three, five],
    }
}

pub(super) fn update(opts: &ExperimentOpts) -> ExperimentOutput {
    let ns: Vec<u32> = SIZES_LOG2.collect();
    let labels = size_labels(*SIZES_LOG2.start(), *SIZES_LOG2.end());
    let partial = spec_sweep_table(
        "gskew partial update mispredict % (h=4)",
        "bank entries",
        &labels,
        opts,
        |row| format!("gskew:n={},h=4,update=partial", ns[row]),
    );
    let total = spec_sweep_table(
        "gskew total update mispredict % (h=4)",
        "bank entries",
        &labels,
        opts,
        |row| format!("gskew:n={},h=4,update=total", ns[row]),
    );
    ExperimentOutput {
        id: "ablation-update",
        title: "Ablation — partial vs total update (section 5.1: partial wins)".into(),
        tables: vec![partial, total],
    }
}

pub(super) fn counters(opts: &ExperimentOpts) -> ExperimentOutput {
    let ns: Vec<u32> = SIZES_LOG2.collect();
    let labels = size_labels(*SIZES_LOG2.start(), *SIZES_LOG2.end());
    let mut tables = Vec::new();
    for (scheme, spec_name) in [("gshare", "gshare"), ("gskew", "gskew")] {
        for bits in [1u8, 2] {
            tables.push(spec_sweep_table(
                format!("{scheme} {bits}-bit counters mispredict % (h=4)"),
                if scheme == "gshare" {
                    "entries"
                } else {
                    "bank entries"
                },
                &labels,
                opts,
                |row| format!("{spec_name}:n={},h=4,ctr={bits}", ns[row]),
            ));
        }
    }
    ExperimentOutput {
        id: "ablation-counters",
        title: "Ablation — 1-bit vs 2-bit automatons under aliasing".into(),
        tables,
    }
}

pub(super) fn hybrids(opts: &ExperimentOpts) -> ExperimentOutput {
    let labels = history_labels(4, 16);
    let specs: [(&str, &str); 3] = [
        ("3x4K e-gskew (24K counter bits)", "egskew:n=12,h={h}"),
        (
            "4x4K 2bc-gskew (32K counter bits, EV8-style)",
            "2bcgskew:n=12,h={h}",
        ),
        (
            "McFarling gshare+bimodal (n=12, 24K counter bits)",
            "mcfarling:n=12,h={h}",
        ),
    ];
    let tables = specs
        .iter()
        .map(|(title, template)| {
            spec_sweep_table(
                format!("{title} mispredict % vs history length"),
                "history bits",
                &labels,
                opts,
                |row| template.replace("{h}", &(row + 4).to_string()),
            )
        })
        .collect();
    ExperimentOutput {
        id: "ext-hybrid",
        title: "Extension — hybrid predictors (section 7 future work realized)".into(),
        tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentOpts {
        let mut opts = ExperimentOpts::quick();
        opts.len_override = Some(10_000);
        opts
    }

    #[test]
    fn banks_shapes() {
        let out = banks(&tiny());
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].rows().len(), 9);
    }

    #[test]
    fn update_shapes() {
        let out = update(&tiny());
        assert_eq!(out.tables.len(), 2);
    }

    #[test]
    fn counters_shapes() {
        let out = counters(&tiny());
        assert_eq!(out.tables.len(), 4);
    }

    #[test]
    fn hybrids_shapes() {
        let out = hybrids(&tiny());
        assert_eq!(out.tables.len(), 3);
        assert_eq!(out.tables[0].rows().len(), 13);
    }
}
