//! Table 2: the unaliased (infinite) predictor.
//!
//! For history lengths of 4 and 12 bits, per benchmark: the substream
//! ratio, the compulsory-aliasing percentage, and the misprediction ratio
//! of 1-bit and 2-bit automatons in an infinite table (first encounters
//! not charged).

use super::helpers::stream;
use super::{ExperimentOpts, ExperimentOutput};
use crate::report::{pct, ratio, Table};
use crate::runner::parallel_map;
use bpred_aliasing::substream::SubstreamStats;
use bpred_core::counter::CounterKind;
use bpred_core::ideal::Ideal;
use bpred_core::predictor::{BranchPredictor, Outcome};
use bpred_trace::record::BranchKind;
use bpred_trace::workload::IbsBenchmark;

/// One benchmark's Table 2 row for one history length.
struct Row {
    bench: IbsBenchmark,
    substream_ratio: f64,
    compulsory_pct: f64,
    one_bit_pct: f64,
    two_bit_pct: f64,
}

/// Single pass computing all four quantities.
fn measure(bench: IbsBenchmark, history_bits: u32, len: u64) -> Row {
    let mut substreams = SubstreamStats::new(history_bits);
    let mut one = Ideal::new(history_bits, CounterKind::OneBit).expect("valid history");
    let mut two = Ideal::new(history_bits, CounterKind::TwoBit).expect("valid history");
    let mut conditional = 0u64;
    let mut miss1 = 0u64;
    let mut miss2 = 0u64;
    for record in stream(bench, len) {
        if record.kind == BranchKind::Conditional {
            conditional += 1;
            let outcome = Outcome::from(record.taken);
            let p1 = one.predict(record.pc);
            if !p1.novel && p1.outcome != outcome {
                miss1 += 1;
            }
            one.update(record.pc, outcome);
            let p2 = two.predict(record.pc);
            if !p2.novel && p2.outcome != outcome {
                miss2 += 1;
            }
            two.update(record.pc, outcome);
        } else {
            one.record_unconditional(record.pc);
            two.record_unconditional(record.pc);
        }
        substreams.observe(&record);
    }
    let denom = conditional.max(1) as f64;
    Row {
        bench,
        substream_ratio: substreams.substream_ratio(),
        compulsory_pct: 100.0 * substreams.compulsory_ratio(),
        one_bit_pct: 100.0 * miss1 as f64 / denom,
        two_bit_pct: 100.0 * miss2 as f64 / denom,
    }
}

fn table_for(history_bits: u32, opts: &ExperimentOpts) -> Table {
    let mut table = Table::with_columns(
        format!("Unaliased predictor, {history_bits}-bit history"),
        &[
            "benchmark",
            "substream ratio",
            "compulsory aliasing %",
            "mispredict % (1-bit)",
            "mispredict % (2-bit)",
        ],
    );
    let rows = parallel_map(IbsBenchmark::all().to_vec(), opts.threads, |bench| {
        measure(bench, history_bits, opts.len_for(bench))
    });
    for row in rows {
        table.push_row(vec![
            row.bench.name().to_string(),
            ratio(row.substream_ratio),
            pct(row.compulsory_pct),
            pct(row.one_bit_pct),
            pct(row.two_bit_pct),
        ]);
    }
    table
}

pub(super) fn run(opts: &ExperimentOpts) -> ExperimentOutput {
    ExperimentOutput {
        id: "table2",
        title: "Table 2 — unaliased predictor (substream ratio, compulsory aliasing, \
                1-/2-bit misprediction)"
            .into(),
        tables: vec![table_for(4, opts), table_for(12, opts)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_beats_one_bit_unaliased() {
        // Table 2's consistent finding.
        let r = measure(IbsBenchmark::Nroff, 4, 60_000);
        assert!(
            r.two_bit_pct < r.one_bit_pct,
            "2-bit {} >= 1-bit {}",
            r.two_bit_pct,
            r.one_bit_pct
        );
    }

    #[test]
    fn longer_history_improves_accuracy_and_multiplies_substreams() {
        let short = measure(IbsBenchmark::Groff, 4, 80_000);
        let long = measure(IbsBenchmark::Groff, 12, 80_000);
        assert!(long.two_bit_pct < short.two_bit_pct);
        assert!(long.substream_ratio > short.substream_ratio);
        assert!(long.compulsory_pct > short.compulsory_pct);
    }

    #[test]
    fn output_shape() {
        let out = run(&ExperimentOpts::quick());
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].rows().len(), 6);
    }
}
