//! Shared plumbing for the experiment modules.

use super::ExperimentOpts;
use crate::engine::{self, NovelPolicy, RunResult};
use crate::kernel::{self, PredictorKernel};
use crate::report::{pct, Table};
use crate::resume;
use crate::runner::parallel_map;
use bpred_aliasing::batch::ThreeCCell;
use bpred_aliasing::three_c::ThreeCCounts;
use bpred_core::spec::PredictorSpec;
use bpred_results::record::CellKey;
use bpred_trace::cache;
use bpred_trace::record::BranchRecord;
use bpred_trace::workload::{IbsBenchmark, DEFAULT_SEED_BASE};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Process-global workload seed base used by every experiment helper.
/// Defaults to [`DEFAULT_SEED_BASE`] (byte-identical traces to every
/// prior release); the CLI's `--seed` overrides it. Like the trace-cache
/// switch, only single-threaded entry points should set it.
static SEED_BASE: AtomicU64 = AtomicU64::new(DEFAULT_SEED_BASE);

/// Set the workload seed base the experiment helpers generate under.
pub fn set_workload_seed(base: u64) {
    SEED_BASE.store(base, Ordering::Relaxed);
}

/// The workload seed base currently in effect.
pub fn workload_seed() -> u64 {
    SEED_BASE.load(Ordering::Relaxed)
}

/// The benchmark record stream bounded to `len` conditional branches,
/// generated under the current [`workload_seed`] and served from the
/// process-wide trace cache: repeated calls with the same arguments
/// share one materialized `Arc<[BranchRecord]>` instead of regenerating
/// the workload.
pub fn stream(bench: IbsBenchmark, len: u64) -> impl Iterator<Item = BranchRecord> {
    cache::stream_seeded(bench, len, workload_seed())
}

/// Simulate a predictor spec over one benchmark and return the
/// misprediction percentage (novel references counted normally).
///
/// # Panics
///
/// Panics on an invalid predictor spec — experiment code owns its specs.
pub fn sim_pct(spec: &str, bench: IbsBenchmark, len: u64) -> f64 {
    sim_pct_with(spec, bench, len, NovelPolicy::Count)
}

/// [`sim_pct`] with an explicit novel-reference policy.
pub fn sim_pct_with(spec: &str, bench: IbsBenchmark, len: u64, policy: NovelPolicy) -> f64 {
    sim_cell(spec, bench, len, policy).mispredict_pct()
}

/// Simulate one cell, consulting the results store first when one is
/// attached ([`crate::resume`]): a fingerprint-identical hit returns the
/// stored counts without touching the engine, and misses are persisted
/// when saving is enabled. With no store attached this is exactly the
/// plain simulate path.
fn sim_cell(spec: &str, bench: IbsBenchmark, len: u64, policy: NovelPolicy) -> RunResult {
    let seed = workload_seed();
    let simulate = || {
        // Kernel fast path when the spec has one (bit-identical to the
        // dyn engine under either novel policy); `dyn` otherwise.
        let structured =
            PredictorSpec::parse(spec).unwrap_or_else(|e| panic!("bad spec `{spec}`: {e}"));
        if let Some(mut kernel) = PredictorKernel::from_spec(&structured) {
            return kernel.run(&cache::columns_seeded(bench, len, seed));
        }
        let mut predictor = structured
            .build()
            .unwrap_or_else(|e| panic!("bad spec `{spec}`: {e}"));
        engine::run_with(
            &mut predictor,
            cache::stream_seeded(bench, len, seed),
            policy,
        )
    };
    if !resume::is_active() {
        return simulate();
    }
    let (key, fingerprint) = resume::cell(spec, bench, len, seed, policy);
    if let Some(hit) = resume::lookup(fingerprint) {
        return hit;
    }
    let start = Instant::now();
    let result = simulate();
    resume::record(
        key,
        fingerprint,
        result,
        start.elapsed().as_secs_f64() * 1e3,
    );
    result
}

/// Build a benchmark-per-column table by evaluating `cell` for every
/// `(row, benchmark)` pair in parallel. `cell` returns a percentage.
pub fn bench_sweep_table(
    title: impl Into<String>,
    first_column: &str,
    row_labels: &[String],
    opts: &ExperimentOpts,
    cell: impl Fn(usize, IbsBenchmark) -> f64 + Sync,
) -> Table {
    let mut columns = vec![first_column.to_string()];
    columns.extend(IbsBenchmark::all().iter().map(|b| b.name().to_string()));
    let mut table = Table::new(title, columns);

    let tasks: Vec<(usize, IbsBenchmark)> = (0..row_labels.len())
        .flat_map(|row| IbsBenchmark::all().into_iter().map(move |b| (row, b)))
        .collect();
    let cells = parallel_map(tasks, opts.threads, |(row, bench)| cell(row, bench));

    let per_row = IbsBenchmark::all().len();
    for (row, label) in row_labels.iter().enumerate() {
        let mut cells_for_row = vec![label.clone()];
        cells_for_row.extend(
            cells[row * per_row..(row + 1) * per_row]
                .iter()
                .map(|&v| pct(v)),
        );
        table.push_row(cells_for_row);
    }
    table
}

/// Build a benchmark-per-column table where row `i` is the predictor
/// spec `spec_for_row(i)`, batched: each benchmark's column is produced
/// by materializing the trace once (through the process-wide cache) and
/// driving *all* row predictors over it in a single
/// [`engine::run_many`] pass. Bit-identical to calling [`sim_pct`] per
/// cell, but an R-row table costs one trace walk per benchmark instead
/// of R.
///
/// Novel references are counted normally ([`NovelPolicy::Count`]), as in
/// [`sim_pct`]; use [`spec_sweep_table_with`] for an explicit policy.
///
/// # Panics
///
/// Panics on an invalid predictor spec — experiment code owns its specs.
pub fn spec_sweep_table(
    title: impl Into<String>,
    first_column: &str,
    row_labels: &[String],
    opts: &ExperimentOpts,
    spec_for_row: impl Fn(usize) -> String + Sync,
) -> Table {
    spec_sweep_table_with(
        title,
        first_column,
        row_labels,
        opts,
        spec_for_row,
        NovelPolicy::Count,
    )
}

/// [`spec_sweep_table`] with an explicit novel-reference policy.
pub fn spec_sweep_table_with(
    title: impl Into<String>,
    first_column: &str,
    row_labels: &[String],
    opts: &ExperimentOpts,
    spec_for_row: impl Fn(usize) -> String + Sync,
    policy: NovelPolicy,
) -> Table {
    let mut columns = vec![first_column.to_string()];
    columns.extend(IbsBenchmark::all().iter().map(|b| b.name().to_string()));
    let mut table = Table::new(title, columns);

    let rows = row_labels.len();
    let seed = workload_seed();
    // One task per benchmark: the per-benchmark trace is the shared
    // resource, so it is also the unit of parallelism. Within a
    // benchmark, rows route through `kernel::run_specs` — supported
    // specs run as monomorphized kernels split across the leftover
    // worker budget, the rest ride one batched `run_many` pass. With a
    // results store attached, stored rows are adopted and only the
    // missing ones are simulated.
    let inner_threads = (opts.threads / IbsBenchmark::all().len()).max(1);
    let per_bench: Vec<Vec<f64>> =
        parallel_map(IbsBenchmark::all().to_vec(), opts.threads, |bench| {
            let len = opts.len_for(bench);
            let specs: Vec<String> = (0..rows).map(&spec_for_row).collect();
            let simulate = |specs: &[String]| -> Vec<RunResult> {
                let trace = cache::materialize_seeded(bench, len, seed);
                let cols = cache::columns_seeded(bench, len, seed);
                kernel::run_specs(specs, &trace, &cols, policy, inner_threads)
                    .unwrap_or_else(|e| panic!("bad spec in sweep: {e}"))
            };

            if !resume::is_active() {
                return simulate(&specs)
                    .into_iter()
                    .map(|r| r.mispredict_pct())
                    .collect();
            }

            let keys: Vec<(CellKey, u64)> = specs
                .iter()
                .map(|spec| resume::cell(spec, bench, len, seed, policy))
                .collect();
            let mut results: Vec<Option<RunResult>> = keys
                .iter()
                .map(|&(_, fingerprint)| resume::lookup(fingerprint))
                .collect();
            let missing: Vec<usize> = (0..rows).filter(|&row| results[row].is_none()).collect();
            if !missing.is_empty() {
                let missing_specs: Vec<String> =
                    missing.iter().map(|&row| specs[row].clone()).collect();
                let start = Instant::now();
                let simulated = simulate(&missing_specs);
                // The trace walk is shared; bill it evenly per cell.
                let per_cell_ms = start.elapsed().as_secs_f64() * 1e3 / missing.len() as f64;
                for (&row, result) in missing.iter().zip(simulated) {
                    let (key, fingerprint) = keys[row].clone();
                    resume::record(key, fingerprint, result, per_cell_ms);
                    results[row] = Some(result);
                }
            }
            results
                .into_iter()
                .map(|r| r.expect("every row resolved").mispredict_pct())
                .collect()
        });

    for (row, label) in row_labels.iter().enumerate() {
        let mut cells = vec![label.clone()];
        cells.extend(per_bench.iter().map(|col| pct(col[row])));
        table.push_row(cells);
    }
    table
}

/// Classify a whole three-C grid over one benchmark trace, batched: one
/// direct-mapped kernel pass per cell plus one shared-distance
/// fully-associative pass per distinct history length, all over a single
/// cached column view ([`kernel::run_three_c`]). Results are parallel to
/// `cells` and bit-identical to running `ThreeCClassifier` per cell.
///
/// With a results store attached ([`crate::resume`]), stored units are
/// adopted and only the missing ones run: direct-mapped units are keyed
/// per cell ([`resume::alias_dm_cell`]) and fully-associative units per
/// `(capacity, history)` — shared across index functions — so a warm
/// rerun touches no trace at all.
pub(crate) fn three_c_grid(
    bench: IbsBenchmark,
    len: u64,
    cells: &[ThreeCCell],
    threads: usize,
) -> Vec<ThreeCCounts> {
    use bpred_aliasing::batch::{self, DmCounts, FaCounts};
    let seed = workload_seed();
    if !resume::is_active() {
        let cols = cache::columns_seeded(bench, len, seed);
        return kernel::run_three_c(cells, &cols, threads);
    }

    let groups = batch::fa_groups(cells);
    let dm_keys: Vec<(CellKey, u64)> = cells
        .iter()
        .map(|cell| resume::alias_dm_cell(cell, bench, len, seed))
        .collect();
    // One FA key per (capacity, history) coordinate of each group.
    let fa_keys: Vec<Vec<(CellKey, u64)>> = groups
        .iter()
        .map(|(h, caps)| {
            caps.iter()
                .map(|&cap| resume::alias_fa_cell(cap.trailing_zeros(), *h, bench, len, seed))
                .collect()
        })
        .collect();

    let mut dm: Vec<Option<DmCounts>> = dm_keys
        .iter()
        .map(|&(_, fp)| {
            resume::lookup(fp).map(|r| DmCounts {
                references: r.conditional,
                misses: r.mispredicted,
                cold_misses: r.novel,
            })
        })
        .collect();
    // An FA group is servable only when *every* capacity of the group is
    // stored (they come from one shared pass, so they are stored
    // together; a partial hit re-runs the whole group).
    let mut fa: Vec<Option<FaCounts>> = fa_keys
        .iter()
        .map(|keys| {
            let hits: Vec<RunResult> = keys
                .iter()
                .map(|&(_, fp)| resume::lookup(fp))
                .collect::<Option<Vec<_>>>()?;
            Some(FaCounts {
                references: hits[0].conditional,
                cold_misses: hits[0].novel,
                misses: hits.iter().map(|r| r.mispredicted).collect(),
            })
        })
        .collect();

    let missing_dm: Vec<usize> = (0..cells.len()).filter(|&i| dm[i].is_none()).collect();
    let missing_fa: Vec<usize> = (0..groups.len()).filter(|&g| fa[g].is_none()).collect();
    if !missing_dm.is_empty() || !missing_fa.is_empty() {
        let cols = cache::columns_seeded(bench, len, seed);
        let run_cells: Vec<ThreeCCell> = missing_dm.iter().map(|&i| cells[i]).collect();
        let run_groups: Vec<(u32, Vec<u64>)> =
            missing_fa.iter().map(|&g| groups[g].clone()).collect();
        let (dm_done, fa_done) = kernel::run_three_c_units(&run_cells, &run_groups, &cols, threads);
        for (&i, (counts, ms)) in missing_dm.iter().zip(dm_done) {
            let (key, fp) = dm_keys[i].clone();
            resume::record(
                key,
                fp,
                RunResult {
                    conditional: counts.references,
                    mispredicted: counts.misses,
                    novel: counts.cold_misses,
                },
                ms,
            );
            dm[i] = Some(counts);
        }
        for (&g, (counts, ms)) in missing_fa.iter().zip(fa_done) {
            // The distance walk is shared by the group; bill it evenly
            // per stored capacity.
            let per_cell_ms = ms / counts.misses.len() as f64;
            for (keyed, &misses) in fa_keys[g].iter().zip(&counts.misses) {
                let (key, fp) = keyed.clone();
                resume::record(
                    key,
                    fp,
                    RunResult {
                        conditional: counts.references,
                        mispredicted: misses,
                        novel: counts.cold_misses,
                    },
                    per_cell_ms,
                );
            }
            fa[g] = Some(counts);
        }
    }

    let dm: Vec<DmCounts> = dm
        .into_iter()
        .map(|c| c.expect("dm unit resolved"))
        .collect();
    let fa: Vec<FaCounts> = fa
        .into_iter()
        .map(|c| c.expect("fa unit resolved"))
        .collect();
    batch::assemble(cells, &groups, &dm, &fa)
}

/// Power-of-two size labels `2^lo ..= 2^hi`.
pub fn size_labels(lo: u32, hi: u32) -> Vec<String> {
    (lo..=hi).map(|n| format!("{}", 1u64 << n)).collect()
}

/// History-length labels `lo ..= hi`.
pub fn history_labels(lo: u32, hi: u32) -> Vec<String> {
    (lo..=hi).map(|h| h.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(size_labels(4, 6), vec!["16", "32", "64"]);
        assert_eq!(history_labels(0, 2), vec!["0", "1", "2"]);
    }

    #[test]
    fn sim_pct_runs_a_tiny_workload() {
        let p = sim_pct("gshare:n=10,h=4", IbsBenchmark::Verilog, 5_000);
        assert!((0.0..=100.0).contains(&p));
        assert!(p > 0.0, "some mispredictions expected");
    }

    #[test]
    fn sweep_table_shape() {
        let opts = ExperimentOpts::quick();
        let rows = vec!["a".to_string(), "b".to_string()];
        let t = bench_sweep_table("t", "x", &rows, &opts, |row, _| row as f64);
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.columns().len(), 7);
        assert_eq!(t.rows()[1][1], "1.00");
    }

    #[test]
    fn spec_sweep_matches_per_cell_sim_pct() {
        // The batched path must render exactly the table the per-cell
        // path would: same accounting, same formatting, cell by cell.
        let mut opts = ExperimentOpts::quick();
        opts.len_override = Some(8_000);
        let rows = vec!["8".to_string(), "10".to_string()];
        let ns = [8u32, 10];
        let batched = spec_sweep_table("t", "n", &rows, &opts, |row| {
            format!("gshare:n={},h=4", ns[row])
        });
        let per_cell = bench_sweep_table("t", "n", &rows, &opts, |row, bench| {
            sim_pct(
                &format!("gshare:n={},h=4", ns[row]),
                bench,
                opts.len_for(bench),
            )
        });
        assert_eq!(batched.rows(), per_cell.rows());
    }
}
