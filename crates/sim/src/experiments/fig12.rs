//! Figure 12: the enhanced skewed predictor across history lengths —
//! 3x4K e-gskew vs 3x4K gskew vs 32K gshare, partial update.
//!
//! Expected shape: the two skewed curves coincide at short histories and
//! diverge at long ones (e-gskew better); the 3x4K e-gskew rivals the 32K
//! gshare at less than half the storage.

use super::helpers::{history_labels, spec_sweep_table};
use super::{ExperimentOpts, ExperimentOutput};

const MAX_HISTORY: u32 = 16;

pub(super) fn run(opts: &ExperimentOpts) -> ExperimentOutput {
    let labels = history_labels(0, MAX_HISTORY);
    let egskew = spec_sweep_table(
        "3x4K enhanced gskew mispredict % vs history length",
        "history bits",
        &labels,
        opts,
        |row| format!("egskew:n=12,h={row}"),
    );
    let gskew = spec_sweep_table(
        "3x4K gskew mispredict % vs history length",
        "history bits",
        &labels,
        opts,
        |row| format!("gskew:n=12,h={row}"),
    );
    let gshare = spec_sweep_table(
        "32K gshare mispredict % vs history length",
        "history bits",
        &labels,
        opts,
        |row| format!("gshare:n=15,h={row}"),
    );
    ExperimentOutput {
        id: "fig12",
        title: "Figure 12 — enhanced gskew vs gskew vs 32K gshare across history lengths".into(),
        tables: vec![egskew, gskew, gshare],
    }
}

#[cfg(test)]
mod tests {
    use super::super::helpers::sim_pct;
    use super::*;
    use bpred_trace::workload::IbsBenchmark;

    #[test]
    fn egskew_at_least_matches_gskew_at_long_history() {
        // Section 6's claim: the curves coincide at short history and
        // e-gskew wins at long history (capacity pressure on banks 1-2).
        let bench = IbsBenchmark::RealGcc;
        let len = 150_000;
        let e = sim_pct("egskew:n=10,h=14", bench, len);
        let g = sim_pct("gskew:n=10,h=14", bench, len);
        assert!(
            e <= g + 0.2,
            "egskew {e} should not lose to gskew {g} at long history"
        );
    }

    #[test]
    fn output_shape() {
        let mut opts = ExperimentOpts::quick();
        opts.len_override = Some(15_000);
        let out = run(&opts);
        assert_eq!(out.tables.len(), 3);
        assert_eq!(out.tables[0].rows().len(), 17);
    }
}
