//! The batched three-C decomposition sweep (extension of figures 1–4):
//! compulsory / capacity / conflict aliasing for every table size and
//! both indexed table flavors, produced by the single-pass batched
//! engine instead of one trace walk per configuration.
//!
//! One benchmark costs `sizes × 2` direct-mapped kernel passes plus a
//! *single* shared last-use-distance pass (the fully-associative LRU
//! reference for every capacity at once), all over one cached column
//! view. The conflict tables report the *signed* component — negative
//! slivers mean LRU lost to direct mapping — so each size's three
//! components sum to its total exactly.

use super::helpers::{size_labels, three_c_grid};
use super::{ExperimentOpts, ExperimentOutput};
use crate::report::{pct, Table};
use crate::runner::parallel_map;
use bpred_aliasing::batch::ThreeCCell;
use bpred_aliasing::three_c::AliasingBreakdown;
use bpred_core::index::IndexFunction;
use bpred_trace::workload::IbsBenchmark;

const SIZES_LOG2: std::ops::RangeInclusive<u32> = 6..=18;
const HISTORY_BITS: u32 = 8;
const FUNCS: [IndexFunction; 2] = [IndexFunction::Gshare, IndexFunction::Gselect];

/// The grid in row-major order: `sizes × FUNCS`.
fn grid() -> Vec<ThreeCCell> {
    SIZES_LOG2
        .flat_map(|n| {
            FUNCS.map(|func| ThreeCCell {
                entries_log2: n,
                history_bits: HISTORY_BITS,
                func,
            })
        })
        .collect()
}

pub(super) fn run(opts: &ExperimentOpts) -> ExperimentOutput {
    let cells = grid();
    let inner_threads = (opts.threads / IbsBenchmark::all().len()).max(1);
    let per_bench: Vec<Vec<AliasingBreakdown>> =
        parallel_map(IbsBenchmark::all().to_vec(), opts.threads, |bench| {
            three_c_grid(bench, opts.len_for(bench), &cells, inner_threads)
                .iter()
                .map(|counts| counts.breakdown())
                .collect()
        });

    let mut columns = vec!["entries".to_string()];
    columns.extend(IbsBenchmark::all().iter().map(|b| b.name().to_string()));
    let mut tables: Vec<Table> = [
        format!("Total aliasing % — gshare index ({HISTORY_BITS}-bit history)"),
        format!("Total aliasing % — gselect index ({HISTORY_BITS}-bit history)"),
        format!("Compulsory aliasing % ({HISTORY_BITS}-bit history)"),
        format!("Capacity aliasing % ({HISTORY_BITS}-bit history)"),
        format!("Conflict aliasing %, signed — gshare ({HISTORY_BITS}-bit history)"),
        format!("Conflict aliasing %, signed — gselect ({HISTORY_BITS}-bit history)"),
    ]
    .into_iter()
    .map(|title| Table::new(title, columns.clone()))
    .collect();

    let sizes: Vec<u32> = SIZES_LOG2.collect();
    let labels = size_labels(*SIZES_LOG2.start(), *SIZES_LOG2.end());
    for (row, label) in labels.iter().enumerate() {
        // Row-major grid: gshare at 2*row, gselect at 2*row + 1. The
        // compulsory and capacity components come from the shared FA
        // reference, identical for both index functions.
        let gshare = |b: &Vec<AliasingBreakdown>| b[2 * row];
        let gselect = |b: &Vec<AliasingBreakdown>| b[2 * row + 1];
        let rows: [Vec<String>; 6] = [
            per_bench
                .iter()
                .map(|b| pct(100.0 * gshare(b).total))
                .collect(),
            per_bench
                .iter()
                .map(|b| pct(100.0 * gselect(b).total))
                .collect(),
            per_bench
                .iter()
                .map(|b| pct(100.0 * gshare(b).compulsory))
                .collect(),
            per_bench
                .iter()
                .map(|b| pct(100.0 * gshare(b).capacity))
                .collect(),
            per_bench
                .iter()
                .map(|b| pct(100.0 * gshare(b).conflict))
                .collect(),
            per_bench
                .iter()
                .map(|b| pct(100.0 * gselect(b).conflict))
                .collect(),
        ];
        for (table, cells_for_row) in tables.iter_mut().zip(rows) {
            table.push_row(
                std::iter::once(label.clone())
                    .chain(cells_for_row)
                    .collect(),
            );
        }
        debug_assert_eq!(1u64 << sizes[row], label.parse::<u64>().unwrap());
    }

    ExperimentOutput {
        id: "three-c",
        title: format!(
            "Three-C decomposition sweep — batched compulsory/capacity/conflict \
             for every table size, {HISTORY_BITS}-bit history"
        ),
        tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_in_every_rendered_row_sum_to_total() {
        let mut opts = ExperimentOpts::quick();
        opts.len_override = Some(6_000);
        let out = run(&opts);
        assert_eq!(out.tables.len(), 6);
        // Reparse the rendered cells: compulsory + capacity + conflict
        // must telescope back to the total within rendering precision.
        let parse =
            |t: &Table, row: usize, col: usize| -> f64 { t.rows()[row][col].parse().unwrap() };
        let [total_gshare, _, compulsory, capacity, conflict_gshare, _] = &out.tables[..] else {
            panic!("six tables")
        };
        for row in 0..total_gshare.rows().len() {
            for col in 1..total_gshare.columns().len() {
                let sum = parse(compulsory, row, col)
                    + parse(capacity, row, col)
                    + parse(conflict_gshare, row, col);
                let total = parse(total_gshare, row, col);
                assert!(
                    (sum - total).abs() <= 0.02,
                    "row {row} col {col}: {sum} vs {total}"
                );
            }
        }
    }
}
