//! Figures 1 and 2: miss percentages in tables tagged with
//! `(address, history)` pairs, for 4-bit (fig 1) and 12-bit (fig 2)
//! histories.
//!
//! Three structures are referenced in lock step per table size:
//! direct-mapped with the *gshare* index, direct-mapped with the
//! *gselect* index, and fully-associative LRU. The FA curve is
//! compulsory + capacity aliasing; DM minus FA is conflict aliasing.

use super::helpers::stream;
use super::{ExperimentOpts, ExperimentOutput};
use crate::report::{pct, Table};
use crate::runner::parallel_map;
use bpred_aliasing::cursor::PairCursor;
use bpred_aliasing::fully_assoc::TaggedFullyAssociative;
use bpred_aliasing::tagged::TaggedDirectMapped;
use bpred_core::index::IndexFunction;
use bpred_trace::record::BranchKind;
use bpred_trace::workload::IbsBenchmark;

const SIZES_LOG2: std::ops::RangeInclusive<u32> = 6..=18;

#[derive(Debug, Clone, Copy)]
struct Cell {
    gshare: f64,
    gselect: f64,
    fully_assoc: f64,
    /// Capacity aliasing alone: FA misses minus compulsory (first-use)
    /// misses.
    capacity: f64,
}

fn measure(bench: IbsBenchmark, entries_log2: u32, history_bits: u32, len: u64) -> Cell {
    let mut cursor = PairCursor::new(history_bits);
    let mut dm_gshare = TaggedDirectMapped::new(entries_log2, IndexFunction::Gshare);
    let mut dm_gselect = TaggedDirectMapped::new(entries_log2, IndexFunction::Gselect);
    let mut fa = TaggedFullyAssociative::new(1 << entries_log2);
    for record in stream(bench, len) {
        if record.kind == BranchKind::Conditional {
            let v = cursor.vector(record.pc);
            dm_gshare.access(&v);
            dm_gselect.access(&v);
            fa.access(v.pair());
        }
        cursor.advance(&record);
    }
    let n = fa.accesses().max(1) as f64;
    Cell {
        gshare: 100.0 * dm_gshare.miss_ratio(),
        gselect: 100.0 * dm_gselect.miss_ratio(),
        fully_assoc: 100.0 * fa.miss_ratio(),
        capacity: 100.0 * fa.capacity_misses() as f64 / n,
    }
}

pub(super) fn run(opts: &ExperimentOpts, history_bits: u32, id: &'static str) -> ExperimentOutput {
    let sizes: Vec<u32> = SIZES_LOG2.collect();
    let tasks: Vec<(u32, IbsBenchmark)> = sizes
        .iter()
        .flat_map(|&n| IbsBenchmark::all().into_iter().map(move |b| (n, b)))
        .collect();
    let cells = parallel_map(tasks, opts.threads, |(n, bench)| {
        measure(bench, n, history_bits, opts.len_for(bench))
    });

    let mut columns = vec!["entries".to_string()];
    columns.extend(IbsBenchmark::all().iter().map(|b| b.name().to_string()));
    let mut tables: Vec<Table> = [
        format!("Miss % — direct-mapped, gshare index ({history_bits}-bit history)"),
        format!("Miss % — direct-mapped, gselect index ({history_bits}-bit history)"),
        format!("Miss % — fully-associative LRU ({history_bits}-bit history)"),
        format!("Conflict aliasing % — gshare DM minus FA ({history_bits}-bit history)"),
        format!("Capacity aliasing % — FA minus compulsory ({history_bits}-bit history)"),
    ]
    .into_iter()
    .map(|title| Table::new(title, columns.clone()))
    .collect();

    let per_row = IbsBenchmark::all().len();
    for (i, &n) in sizes.iter().enumerate() {
        let row_cells = &cells[i * per_row..(i + 1) * per_row];
        let label = (1u64 << n).to_string();
        tables[0].push_row(
            std::iter::once(label.clone())
                .chain(row_cells.iter().map(|c| pct(c.gshare)))
                .collect(),
        );
        tables[1].push_row(
            std::iter::once(label.clone())
                .chain(row_cells.iter().map(|c| pct(c.gselect)))
                .collect(),
        );
        tables[2].push_row(
            std::iter::once(label.clone())
                .chain(row_cells.iter().map(|c| pct(c.fully_assoc)))
                .collect(),
        );
        tables[3].push_row(
            std::iter::once(label.clone())
                .chain(
                    row_cells
                        .iter()
                        .map(|c| pct((c.gshare - c.fully_assoc).max(0.0))),
                )
                .collect(),
        );
        tables[4].push_row(
            std::iter::once(label)
                .chain(row_cells.iter().map(|c| pct(c.capacity)))
                .collect(),
        );
    }

    ExperimentOutput {
        id,
        title: format!(
            "Figure {} — miss percentages in (address, history)-tagged tables, \
             {history_bits}-bit history",
            if history_bits == 4 { 1 } else { 2 }
        ),
        tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fa_not_worse_than_dm_and_shrinks_with_size() {
        let len = 60_000;
        let small = measure(IbsBenchmark::Groff, 7, 4, len);
        let large = measure(IbsBenchmark::Groff, 12, 4, len);
        assert!(small.fully_assoc <= small.gshare + 0.5);
        assert!(large.fully_assoc < small.fully_assoc);
        assert!(large.gshare < small.gshare);
    }

    #[test]
    fn conflict_dominates_capacity_at_large_sizes() {
        // The headline of figure 1: by 4K entries capacity aliasing nearly
        // vanishes (compulsory aside) and conflicts dominate what remains.
        let c = measure(IbsBenchmark::Gs, 12, 4, 200_000);
        let conflict = (c.gshare - c.fully_assoc).max(0.0);
        assert!(
            conflict > c.capacity,
            "conflict {conflict} <= capacity {}",
            c.capacity
        );
    }
}
