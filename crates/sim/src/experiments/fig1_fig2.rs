//! Figures 1 and 2: miss percentages in tables tagged with
//! `(address, history)` pairs, for 4-bit (fig 1) and 12-bit (fig 2)
//! histories.
//!
//! Three structures are referenced per table size: direct-mapped with
//! the *gshare* index, direct-mapped with the *gselect* index, and
//! fully-associative LRU. The FA curve is compulsory + capacity
//! aliasing; DM minus FA is conflict aliasing. The measurement rides the
//! batched three-C engine: per benchmark, one direct-mapped kernel pass
//! per (size, index-fn) cell and a *single* shared last-use-distance
//! pass covering every FA capacity — bit-identical to the historical
//! per-configuration lockstep walk, at a fraction of the trace
//! traversals.

use super::helpers::three_c_grid;
use super::{ExperimentOpts, ExperimentOutput};
use crate::report::{pct, Table};
use crate::runner::parallel_map;
use bpred_aliasing::batch::ThreeCCell;
use bpred_aliasing::three_c::ThreeCCounts;
use bpred_core::index::IndexFunction;
use bpred_trace::workload::IbsBenchmark;

const SIZES_LOG2: std::ops::RangeInclusive<u32> = 6..=18;

#[derive(Debug, Clone, Copy)]
struct Cell {
    gshare: f64,
    gselect: f64,
    fully_assoc: f64,
    /// Capacity aliasing alone: FA misses minus compulsory (first-use)
    /// misses.
    capacity: f64,
}

/// The per-benchmark grid in row-major order: `sizes × {gshare, gselect}`.
fn grid(history_bits: u32) -> Vec<ThreeCCell> {
    SIZES_LOG2
        .flat_map(|n| {
            [IndexFunction::Gshare, IndexFunction::Gselect].map(|func| ThreeCCell {
                entries_log2: n,
                history_bits,
                func,
            })
        })
        .collect()
}

/// Derive one size's rendered cell from its two grid counts. The float
/// expressions mirror the historical per-configuration measurement
/// (`miss_ratio()` guards and the `max(1)` capacity denominator
/// included) so the rendered tables are byte-identical across engines.
fn derive(gshare: &ThreeCCounts, gselect: &ThreeCCounts) -> Cell {
    let ratio = |misses: u64, refs: u64| {
        if refs == 0 {
            0.0
        } else {
            misses as f64 / refs as f64
        }
    };
    let n = gshare.references.max(1) as f64;
    Cell {
        gshare: 100.0 * ratio(gshare.dm_misses, gshare.references),
        gselect: 100.0 * ratio(gselect.dm_misses, gselect.references),
        fully_assoc: 100.0 * ratio(gshare.fa_misses, gshare.references),
        capacity: 100.0 * (gshare.fa_misses - gshare.cold_misses) as f64 / n,
    }
}

pub(super) fn run(opts: &ExperimentOpts, history_bits: u32, id: &'static str) -> ExperimentOutput {
    let sizes: Vec<u32> = SIZES_LOG2.collect();
    let cells_grid = grid(history_bits);
    let inner_threads = (opts.threads / IbsBenchmark::all().len()).max(1);
    let per_bench: Vec<Vec<Cell>> =
        parallel_map(IbsBenchmark::all().to_vec(), opts.threads, |bench| {
            let counts = three_c_grid(bench, opts.len_for(bench), &cells_grid, inner_threads);
            (0..sizes.len())
                .map(|row| derive(&counts[2 * row], &counts[2 * row + 1]))
                .collect()
        });

    let mut columns = vec!["entries".to_string()];
    columns.extend(IbsBenchmark::all().iter().map(|b| b.name().to_string()));
    let mut tables: Vec<Table> = [
        format!("Miss % — direct-mapped, gshare index ({history_bits}-bit history)"),
        format!("Miss % — direct-mapped, gselect index ({history_bits}-bit history)"),
        format!("Miss % — fully-associative LRU ({history_bits}-bit history)"),
        format!("Conflict aliasing % — gshare DM minus FA ({history_bits}-bit history)"),
        format!("Capacity aliasing % — FA minus compulsory ({history_bits}-bit history)"),
    ]
    .into_iter()
    .map(|title| Table::new(title, columns.clone()))
    .collect();

    for (row, &n) in sizes.iter().enumerate() {
        let row_cells: Vec<Cell> = per_bench.iter().map(|col| col[row]).collect();
        let label = (1u64 << n).to_string();
        tables[0].push_row(
            std::iter::once(label.clone())
                .chain(row_cells.iter().map(|c| pct(c.gshare)))
                .collect(),
        );
        tables[1].push_row(
            std::iter::once(label.clone())
                .chain(row_cells.iter().map(|c| pct(c.gselect)))
                .collect(),
        );
        tables[2].push_row(
            std::iter::once(label.clone())
                .chain(row_cells.iter().map(|c| pct(c.fully_assoc)))
                .collect(),
        );
        tables[3].push_row(
            std::iter::once(label.clone())
                .chain(
                    row_cells
                        .iter()
                        .map(|c| pct((c.gshare - c.fully_assoc).max(0.0))),
                )
                .collect(),
        );
        tables[4].push_row(
            std::iter::once(label)
                .chain(row_cells.iter().map(|c| pct(c.capacity)))
                .collect(),
        );
    }

    ExperimentOutput {
        id,
        title: format!(
            "Figure {} — miss percentages in (address, history)-tagged tables, \
             {history_bits}-bit history",
            if history_bits == 4 { 1 } else { 2 }
        ),
        tables,
    }
}

#[cfg(test)]
mod tests {
    use super::super::helpers::stream;
    use super::*;
    use bpred_aliasing::cursor::PairCursor;
    use bpred_aliasing::fully_assoc::TaggedFullyAssociative;
    use bpred_aliasing::tagged::TaggedDirectMapped;
    use bpred_trace::record::BranchKind;

    /// The historical per-configuration measurement: three structures in
    /// lock step over one stream. Kept as the test oracle for the batched
    /// path.
    fn measure_lockstep(
        bench: IbsBenchmark,
        entries_log2: u32,
        history_bits: u32,
        len: u64,
    ) -> Cell {
        let mut cursor = PairCursor::new(history_bits);
        let mut dm_gshare = TaggedDirectMapped::new(entries_log2, IndexFunction::Gshare);
        let mut dm_gselect = TaggedDirectMapped::new(entries_log2, IndexFunction::Gselect);
        let mut fa = TaggedFullyAssociative::new(1 << entries_log2);
        for record in stream(bench, len) {
            if record.kind == BranchKind::Conditional {
                let v = cursor.vector(record.pc);
                dm_gshare.access(&v);
                dm_gselect.access(&v);
                fa.access(v.pair());
            }
            cursor.advance(&record);
        }
        let n = fa.accesses().max(1) as f64;
        Cell {
            gshare: 100.0 * dm_gshare.miss_ratio(),
            gselect: 100.0 * dm_gselect.miss_ratio(),
            fully_assoc: 100.0 * fa.miss_ratio(),
            capacity: 100.0 * fa.capacity_misses() as f64 / n,
        }
    }

    fn measure_batched(
        bench: IbsBenchmark,
        entries_log2: u32,
        history_bits: u32,
        len: u64,
    ) -> Cell {
        let cells: Vec<ThreeCCell> = [IndexFunction::Gshare, IndexFunction::Gselect]
            .iter()
            .map(|&func| ThreeCCell {
                entries_log2,
                history_bits,
                func,
            })
            .collect();
        let counts = three_c_grid(bench, len, &cells, 1);
        derive(&counts[0], &counts[1])
    }

    #[test]
    fn batched_cells_equal_the_lockstep_oracle_bit_for_bit() {
        for (n, h) in [(7u32, 4u32), (10, 4), (8, 12)] {
            let oracle = measure_lockstep(IbsBenchmark::Groff, n, h, 30_000);
            let batched = measure_batched(IbsBenchmark::Groff, n, h, 30_000);
            assert_eq!(
                oracle.gshare.to_bits(),
                batched.gshare.to_bits(),
                "n={n} h={h}"
            );
            assert_eq!(
                oracle.gselect.to_bits(),
                batched.gselect.to_bits(),
                "n={n} h={h}"
            );
            assert_eq!(
                oracle.fully_assoc.to_bits(),
                batched.fully_assoc.to_bits(),
                "n={n} h={h}"
            );
            assert_eq!(
                oracle.capacity.to_bits(),
                batched.capacity.to_bits(),
                "n={n} h={h}"
            );
        }
    }

    #[test]
    fn fa_not_worse_than_dm_and_shrinks_with_size() {
        let len = 60_000;
        let small = measure_batched(IbsBenchmark::Groff, 7, 4, len);
        let large = measure_batched(IbsBenchmark::Groff, 12, 4, len);
        assert!(small.fully_assoc <= small.gshare + 0.5);
        assert!(large.fully_assoc < small.fully_assoc);
        assert!(large.gshare < small.gshare);
    }

    #[test]
    fn conflict_dominates_capacity_at_large_sizes() {
        // The headline of figure 1: by 4K entries capacity aliasing nearly
        // vanishes (compulsory aside) and conflicts dominate what remains.
        let c = measure_batched(IbsBenchmark::Gs, 12, 4, 200_000);
        let conflict = (c.gshare - c.fully_assoc).max(0.0);
        assert!(
            conflict > c.capacity,
            "conflict {conflict} <= capacity {}",
            c.capacity
        );
    }
}
