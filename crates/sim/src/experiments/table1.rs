//! Table 1: conditional branch counts of the six workloads.
//!
//! The paper reports the dynamic and static conditional branch counts of
//! the IBS traces; we report the same counts for the synthetic workloads
//! (at the configured trace length) next to the paper's values.

use super::helpers::stream;
use super::{ExperimentOpts, ExperimentOutput};
use crate::report::{pct, Table};
use crate::runner::parallel_map;
use bpred_trace::stats::TraceStats;
use bpred_trace::workload::IbsBenchmark;

pub(super) fn run(opts: &ExperimentOpts) -> ExperimentOutput {
    let mut table = Table::with_columns(
        "Conditional branch counts (synthetic vs paper)",
        &[
            "benchmark",
            "dynamic",
            "static",
            "paper dynamic",
            "paper static",
            "kernel %",
            "taken %",
        ],
    );
    let stats = parallel_map(IbsBenchmark::all().to_vec(), opts.threads, |bench| {
        (
            bench,
            TraceStats::collect(stream(bench, opts.len_for(bench))),
        )
    });
    for (bench, s) in stats {
        table.push_row(vec![
            bench.name().to_string(),
            s.dynamic_conditional.to_string(),
            s.static_conditional.to_string(),
            bench.paper_dynamic_branches().to_string(),
            bench.paper_static_branches().to_string(),
            pct(100.0 * s.kernel_ratio()),
            pct(100.0 * s.taken_ratio()),
        ]);
    }
    ExperimentOutput {
        id: "table1",
        title: "Table 1 — conditional branch counts".into(),
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rows_with_counts() {
        let out = run(&ExperimentOpts::quick());
        let t = &out.tables[0];
        assert_eq!(t.rows().len(), 6);
        for row in t.rows() {
            let dynamic: u64 = row[1].parse().unwrap();
            let static_: u64 = row[2].parse().unwrap();
            assert!(dynamic > 0);
            assert!(static_ > 0);
            assert!(static_ < dynamic);
        }
    }
}
