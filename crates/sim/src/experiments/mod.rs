//! The experiment registry: one module per table/figure of the paper,
//! plus the ablations and extensions listed in `DESIGN.md`.
//!
//! Every experiment is addressed by a stable id (`table2`, `fig5`,
//! `ablation-banks`, …), consumes an [`ExperimentOpts`], and produces an
//! [`ExperimentOutput`] of renderable tables whose rows correspond to the
//! series the paper plots.

use crate::report::Table;
use bpred_trace::workload::IbsBenchmark;

mod ablations;
mod extensions;
mod fig11;
mod fig12;
mod fig1_fig2;
mod fig3;
mod fig5_fig6;
mod fig7;
mod fig8;
mod fig9;
mod helpers;
mod table1;
mod table2;
mod three_c;

pub use helpers::{set_workload_seed, sim_pct, stream, workload_seed};

/// Global knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExperimentOpts {
    /// Override the per-benchmark dynamic conditional branch count.
    pub len_override: Option<u64>,
    /// Worker threads for the parallel sweeps.
    pub threads: usize,
    /// Cap lengths at a small value for smoke tests and benches.
    pub quick: bool,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            len_override: None,
            threads: crate::runner::default_threads(),
            quick: false,
        }
    }
}

impl ExperimentOpts {
    /// The trace length to simulate for `bench` under these options.
    pub fn len_for(&self, bench: IbsBenchmark) -> u64 {
        let len = self.len_override.unwrap_or_else(|| bench.default_len());
        if self.quick {
            len.min(120_000)
        } else {
            len
        }
    }

    /// A quick-mode configuration for tests.
    pub fn quick() -> Self {
        ExperimentOpts {
            quick: true,
            ..ExperimentOpts::default()
        }
    }
}

/// The rendered result of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// The experiment id (`fig5`, `table2`, …).
    pub id: &'static str,
    /// Human-readable description with the paper reference.
    pub title: String,
    /// One or more result tables.
    pub tables: Vec<Table>,
}

impl ExperimentOutput {
    /// Render every table, separated by blank lines.
    pub fn render(&self) -> String {
        let mut out = format!("# {} — {}\n\n", self.id, self.title);
        for table in &self.tables {
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }
}

/// Every available experiment id, in presentation order.
pub const ALL_IDS: &[&str] = &[
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "three-c",
    "ablation-banks",
    "ablation-update",
    "ablation-counters",
    "ablation-skew",
    "ext-hybrid",
    "ext-antialias",
    "ext-pas",
    "ext-multiprogram",
    "ext-nature",
    "ext-encoding",
    "ext-confidence",
    "ext-delay",
    "ext-assoc",
    "ext-seeds",
    "ext-duel",
];

/// Run one experiment by id. Returns `None` for unknown ids.
pub fn run(id: &str, opts: &ExperimentOpts) -> Option<ExperimentOutput> {
    if let Some(stable) = ALL_IDS.iter().find(|stable| **stable == id) {
        crate::resume::set_experiment(stable);
    }
    let output = match id {
        "table1" => table1::run(opts),
        "table2" => table2::run(opts),
        "fig1" => fig1_fig2::run(opts, 4, "fig1"),
        "fig2" => fig1_fig2::run(opts, 12, "fig2"),
        "fig3" => fig3::run(opts),
        "fig5" => fig5_fig6::run(opts, 4, "fig5"),
        "fig6" => fig5_fig6::run(opts, 12, "fig6"),
        "fig7" => fig7::run(opts),
        "fig8" => fig8::run(opts),
        "fig9" => fig9::run(opts, 1.0, "fig9"),
        "fig10" => fig9::run(opts, 0.2, "fig10"),
        "fig11" => fig11::run(opts),
        "fig12" => fig12::run(opts),
        "three-c" => three_c::run(opts),
        "ablation-banks" => ablations::banks(opts),
        "ablation-update" => ablations::update(opts),
        "ablation-counters" => ablations::counters(opts),
        "ext-hybrid" => ablations::hybrids(opts),
        "ablation-skew" => extensions::skew_ablation(opts),
        "ext-antialias" => extensions::antialias(opts),
        "ext-pas" => extensions::pas(opts),
        "ext-multiprogram" => extensions::multiprogram(opts),
        "ext-nature" => extensions::nature(opts),
        "ext-encoding" => extensions::encoding(opts),
        "ext-confidence" => extensions::confidence(opts),
        "ext-delay" => extensions::delay(opts),
        "ext-assoc" => extensions::assoc(opts),
        "ext-seeds" => extensions::seeds(opts),
        "ext-duel" => extensions::duel_verdicts(opts),
        _ => return None,
    };
    Some(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig99", &ExperimentOpts::quick()).is_none());
    }

    #[test]
    fn all_ids_are_unique() {
        let mut ids: Vec<_> = ALL_IDS.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL_IDS.len());
    }
}
