//! Figure 7: 3x4K-entry gskew vs 16K-entry gshare while varying the
//! history length — gskew uses 25% less storage yet should win on most
//! benchmarks.

use super::helpers::{bench_sweep_table, history_labels, sim_pct};
use super::{ExperimentOpts, ExperimentOutput};

const MAX_HISTORY: u32 = 16;

pub(super) fn run(opts: &ExperimentOpts) -> ExperimentOutput {
    let labels = history_labels(0, MAX_HISTORY);
    let gskew = bench_sweep_table(
        "3x4K gskew mispredict % vs history length",
        "history bits",
        &labels,
        opts,
        |row, bench| sim_pct(&format!("gskew:n=12,h={row}"), bench, opts.len_for(bench)),
    );
    let gshare = bench_sweep_table(
        "16K gshare mispredict % vs history length",
        "history bits",
        &labels,
        opts,
        |row, bench| sim_pct(&format!("gshare:n=14,h={row}"), bench, opts.len_for(bench)),
    );
    ExperimentOutput {
        id: "fig7",
        title: "Figure 7 — 3x4K gskew vs 16K gshare across history lengths".into(),
        tables: vec![gskew, gshare],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape() {
        let mut opts = ExperimentOpts::quick();
        opts.len_override = Some(15_000);
        let out = run(&opts);
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].rows().len(), 17);
        assert_eq!(out.tables[0].rows()[0][0], "0");
        assert_eq!(out.tables[0].rows()[16][0], "16");
    }
}
