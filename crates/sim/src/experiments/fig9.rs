//! Figures 9 and 10: the analytical destructive-aliasing curves at the
//! worst-case bias `b = 1/2` — `P_dm = p/2` (linear) against the 3-bank
//! polynomial. Figure 10 is the small-`p` zoom where the skewed curve
//! hugs zero.

use super::{ExperimentOpts, ExperimentOutput};
use crate::report::Table;
use bpred_model::curves::destructive_aliasing_curve;
use bpred_model::skew::crossover_distance;

const POINTS: usize = 21;

pub(super) fn run(_opts: &ExperimentOpts, p_max: f64, id: &'static str) -> ExperimentOutput {
    let mut table = Table::with_columns(
        format!("Destructive-aliasing probability, b = 0.5, p in [0, {p_max}]"),
        &["p", "P_dm (1 bank)", "P_sk (3 banks)"],
    );
    for point in destructive_aliasing_curve(p_max, POINTS) {
        table.push_row(vec![
            format!("{:.3}", point.p),
            format!("{:.5}", point.direct_mapped),
            format!("{:.5}", point.skewed),
        ]);
    }

    // The derived headline of section 5.2: where a 3x(N/3) skewed
    // organization stops beating an N-entry direct-mapped table.
    let mut crossover = Table::with_columns(
        "Crossover last-use distance for 3x(N/3) gskew vs N-entry DM",
        &["N (total entries)", "crossover D", "D / N"],
    );
    for n in [3 * 1024u64, 3 * 4096, 3 * 16384, 3 * 65536] {
        let d = crossover_distance(n);
        crossover.push_row(vec![
            n.to_string(),
            d.to_string(),
            format!("{:.3}", d as f64 / n as f64),
        ]);
    }

    ExperimentOutput {
        id,
        title: if p_max >= 1.0 {
            "Figure 9 — analytical destructive aliasing (full range)".into()
        } else {
            "Figure 10 — analytical destructive aliasing (zoom on small p)".into()
        },
        tables: vec![table, crossover],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_figures_render() {
        let opts = ExperimentOpts::quick();
        let f9 = run(&opts, 1.0, "fig9");
        let f10 = run(&opts, 0.2, "fig10");
        assert_eq!(f9.tables[0].rows().len(), POINTS);
        assert_eq!(f10.tables[0].rows().len(), POINTS);
        // Zoomed x-range stays below 0.2.
        let last = &f10.tables[0].rows()[POINTS - 1][0];
        assert_eq!(last, "0.200");
    }

    #[test]
    fn crossover_ratios_near_tenth() {
        let out = run(&ExperimentOpts::quick(), 1.0, "fig9");
        for row in out.tables[1].rows() {
            let ratio: f64 = row[2].parse().unwrap();
            assert!((0.05..0.2).contains(&ratio), "ratio {ratio}");
        }
    }
}
