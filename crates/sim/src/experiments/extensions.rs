//! Extension experiments beyond the paper's printed evaluation:
//!
//! * **ablation-skew** — gskew with the inter-bank dispersion disabled
//!   (all banks share `f0`): isolates where the benefit comes from.
//! * **ext-antialias** — the 1997 anti-aliasing design space at equal
//!   storage: gskew vs agree vs bi-mode vs plain gshare.
//! * **ext-pas** — section 7's per-address future work: PAs vs skewed
//!   PAs vs global gshare.
//! * **ext-multiprogram** — multiprogrammed stress (three workloads
//!   round-robined): how much each design degrades when the working sets
//!   are stacked.
//! * **ext-nature** — destructive / harmless / constructive decomposition
//!   of gshare aliasing (the Young–Gloy–Smith taxonomy of section 1),
//!   explaining figure 11's overestimation.
//! * **ext-encoding** — section 7's "distributed predictor encodings"
//!   question, answered with the EV8-style shared-hysteresis split.
//! * **ext-confidence** — the majority vote as a free confidence signal.
//! * **ext-delay** — retirement-time training: the cost of stale tables
//!   and history.
//! * **ext-assoc** — how much tagged associativity would buy (the
//!   quantified version of section 3.3's dismissal).
//! * **ext-seeds** — the headline comparison re-run across regenerated
//!   workloads (seed robustness).

use super::helpers::{
    bench_sweep_table, history_labels, sim_pct, size_labels, spec_sweep_table, stream,
};
use super::{ExperimentOpts, ExperimentOutput};
use crate::engine;
use crate::report::{pct, Table};
use crate::runner::parallel_map;
use bpred_aliasing::nature::AliasingNature;
use bpred_core::counter::CounterKind;
use bpred_core::index::IndexFunction;
use bpred_core::spec::parse_spec;
use bpred_trace::mix::MultiProgram;
use bpred_trace::stream::TraceSourceExt;
use bpred_trace::workload::IbsBenchmark;

pub(super) fn skew_ablation(opts: &ExperimentOpts) -> ExperimentOutput {
    const SIZES: std::ops::RangeInclusive<u32> = 6..=14;
    let ns: Vec<u32> = SIZES.collect();
    let labels = size_labels(*SIZES.start(), *SIZES.end());
    let make = |template: &'static str| {
        let ns = ns.clone();
        spec_sweep_table(
            format!("{template} mispredict % (h=4)"),
            "bank entries",
            &labels,
            opts,
            move |row| template.replace("{n}", &ns[row].to_string()),
        )
    };
    ExperimentOutput {
        id: "ablation-skew",
        title: "Ablation — inter-bank dispersion on/off: 3 banks with distinct f0..f2 \
                vs 3 banks sharing f0 (degenerates to one bank) vs a true single bank"
            .into(),
        tables: vec![
            make("gskew:n={n},h=4"),
            make("gskew:n={n},h=4,skew=off"),
            make("gshare:n={n},h=4"),
        ],
    }
}

pub(super) fn antialias(opts: &ExperimentOpts) -> ExperimentOutput {
    // Roughly equal storage (~24-32 Kbit of counters) per design.
    let labels = history_labels(2, 14);
    let specs: [(&str, &str); 4] = [
        ("3x4K gskew (24.6 Kbit)", "gskew:n=12,h={h}"),
        (
            "8K agree + 4K bias bits (24.6 Kbit)",
            "agree:n=13,h={h},bias=12",
        ),
        (
            "2x4K bimode + 4K choice (24.6 Kbit)",
            "bimode:n=12,h={h},choice=12",
        ),
        ("16K gshare (32.8 Kbit)", "gshare:n=14,h={h}"),
    ];
    let tables = specs
        .iter()
        .map(|(title, template)| {
            spec_sweep_table(
                format!("{title} mispredict % vs history length"),
                "history bits",
                &labels,
                opts,
                |row| template.replace("{h}", &(row + 2).to_string()),
            )
        })
        .collect();
    ExperimentOutput {
        id: "ext-antialias",
        title: "Extension — the 1997 anti-aliasing design space at comparable storage".into(),
        tables,
    }
}

pub(super) fn pas(opts: &ExperimentOpts) -> ExperimentOutput {
    const SIZES: std::ops::RangeInclusive<u32> = 8..=14;
    let ns: Vec<u32> = SIZES.collect();
    let labels = size_labels(*SIZES.start(), *SIZES.end());
    let make = |title: &str, template: &'static str| {
        let ns = ns.clone();
        spec_sweep_table(
            title.to_string(),
            "pattern entries",
            &labels,
            opts,
            move |row| template.replace("{n}", &ns[row].to_string()),
        )
    };
    ExperimentOutput {
        id: "ext-pas",
        title: "Extension — per-address history schemes (section 7 future work): \
                PAs vs skewed PAs vs global gshare. Finding: skewing LOSES here — \
                PAs' concatenated index shares pattern entries constructively \
                (same local pattern => same outcome), and dispersion forfeits that"
            .into(),
        tables: vec![
            make(
                "PAs (1K x 8-bit local histories) mispredict %",
                "pas:bht=10,l=8,n={n}",
            ),
            make(
                "Skewed PAs (3 banks of the same total, partial) mispredict %",
                "spas:bht=10,l=8,n={n}",
            ),
            make("gshare (h=8) mispredict %", "gshare:n={n},h=8"),
        ],
    }
}

pub(super) fn multiprogram(opts: &ExperimentOpts) -> ExperimentOutput {
    const MIX: [IbsBenchmark; 3] = [IbsBenchmark::Groff, IbsBenchmark::Gs, IbsBenchmark::Verilog];
    let specs = [
        "gshare:n=14,h=8",
        "gskew:n=12,h=8",
        "egskew:n=12,h=10",
        "agree:n=13,h=8,bias=12",
        "bimode:n=12,h=8,choice=12",
        "2bcgskew:n=12,h=10",
    ];
    let len = opts.len_for(IbsBenchmark::Groff);
    // OS-scale time slices, shrunk proportionally for quick runs so the
    // mix actually switches several times.
    let slice = (len / 12).clamp(500, 40_000);

    let rows = parallel_map(specs.to_vec(), opts.threads, |spec| {
        // Solo mean across the three mixed components.
        let solo_mean = MIX
            .iter()
            .map(|&bench| sim_pct(spec, bench, len))
            .sum::<f64>()
            / MIX.len() as f64;
        // The mixed run sees the same total number of branches.
        let mut predictor = parse_spec(spec).expect("valid spec");
        let mixed =
            MultiProgram::new(MIX.iter().map(|b| b.spec()).collect(), slice).take_conditionals(len);
        let mixed_pct = engine::run(&mut predictor, mixed).mispredict_pct();
        (spec, solo_mean, mixed_pct)
    });

    let mut table = Table::with_columns(
        format!(
            "Misprediction % solo vs multiprogrammed \
             (groff + gs + verilog, {slice}-record slices)"
        ),
        &["predictor", "solo mean %", "mixed %", "degradation"],
    );
    for (spec, solo, mixed) in rows {
        table.push_row(vec![
            parse_spec(spec).expect("valid spec").name(),
            pct(solo),
            pct(mixed),
            format!("{:+.2}", mixed - solo),
        ]);
    }
    ExperimentOutput {
        id: "ext-multiprogram",
        title: "Extension — multiprogrammed aliasing stress (the introduction's \
                motivating scenario)"
            .into(),
        tables: vec![table],
    }
}

pub(super) fn encoding(opts: &ExperimentOpts) -> ExperimentOutput {
    const SIZES: std::ops::RangeInclusive<u32> = 8..=14;
    let ns: Vec<u32> = SIZES.collect();
    let labels = size_labels(*SIZES.start(), *SIZES.end());
    let make = |title: &'static str, template: &'static str| {
        let ns = ns.clone();
        spec_sweep_table(
            title.to_string(),
            "bank entries",
            &labels,
            opts,
            // `{n}` is the sweep size, `{m}` one size smaller (the
            // 2/3-storage reference point).
            move |row| {
                template
                    .replace("{n}", &ns[row].to_string())
                    .replace("{m}", &(ns[row] - 1).to_string())
            },
        )
    };
    ExperimentOutput {
        id: "ext-encoding",
        title: "Extension — distributed predictor encodings (section 7 question 2): \
                shared-hysteresis gskew (4 bits/entry-group) vs full 2-bit gskew \
                (6 bits) vs a 2/3-size full gskew"
            .into(),
        tables: vec![
            make(
                "Full 2-bit gskew, 3 banks (6*2^n bits) mispredict % (h=6)",
                "gskew:n={n},h=6",
            ),
            make(
                "Shared-hysteresis gskew, 3 dir banks + 1 hyst (4*2^n bits) mispredict % (h=6)",
                "shgskew:n={n},h=6",
            ),
            make(
                "Full 2-bit gskew with 2/3 the storage (3 banks of 2^(n-1)) mispredict % (h=6)",
                "gskew:n={m},h=6",
            ),
        ],
    }
}

pub(super) fn duel_verdicts(opts: &ExperimentOpts) -> ExperimentOutput {
    use crate::duel::duel;
    use crate::engine::NovelPolicy;

    // The paper's key pairings, as paired McNemar tests.
    let pairings: [(&str, &str, &str); 3] = [
        (
            "gskew vs 2/3-storage gshare (h=6)",
            "gshare:n=13,h=6",
            "gskew:n=12,h=6",
        ),
        (
            "gskew partial vs total (3x4K, h=4)",
            "gskew:n=12,h=4,update=total",
            "gskew:n=12,h=4",
        ),
        (
            "e-gskew vs gskew (3x4K, h=12)",
            "gskew:n=12,h=12",
            "egskew:n=12,h=12",
        ),
    ];
    let tables = pairings
        .map(|(title, spec_a, spec_b)| {
            let mut table = Table::with_columns(
                format!("{title}: A = {spec_a}, B = {spec_b}"),
                &[
                    "benchmark",
                    "A %",
                    "B %",
                    "only A wrong",
                    "only B wrong",
                    "z",
                    "verdict",
                ],
            );
            let rows = parallel_map(IbsBenchmark::all().to_vec(), opts.threads, |bench| {
                let mut a = parse_spec(spec_a).expect("valid spec");
                let mut b = parse_spec(spec_b).expect("valid spec");
                let result = duel(
                    &mut a,
                    &mut b,
                    stream(bench, opts.len_for(bench)),
                    NovelPolicy::Count,
                );
                (bench, result)
            });
            for (bench, r) in rows {
                let verdict = if r.b_significantly_better() {
                    "B (p < 0.01)"
                } else if r.a_significantly_better() {
                    "A (p < 0.01)"
                } else {
                    "tie"
                };
                table.push_row(vec![
                    bench.name().to_string(),
                    pct(r.a_pct()),
                    pct(r.b_pct()),
                    r.only_a_wrong.to_string(),
                    r.only_b_wrong.to_string(),
                    format!("{:.2}", r.mcnemar_z()),
                    verdict.to_string(),
                ]);
            }
            table
        })
        .to_vec();
    ExperimentOutput {
        id: "ext-duel",
        title: "Extension — the paper's key comparisons as paired McNemar tests \
                (per-branch discordance, not just means)"
            .into(),
        tables,
    }
}

pub(super) fn seeds(opts: &ExperimentOpts) -> ExperimentOutput {
    use crate::engine;

    // Re-generate each workload under several master seeds and check that
    // the paper's headline comparison (gskew 3x4K vs the larger 16K
    // gshare) is stable across them — i.e. the conclusions are not
    // artifacts of one particular synthetic program.
    const SEEDS: u64 = 5;
    let specs = ["gshare:n=14,h=6", "gskew:n=12,h=6"];
    let mut table = Table::with_columns(
        "Misprediction % across workload seeds (mean / min / max over 5 seeds)",
        &[
            "benchmark",
            "gshare 16K mean",
            "gshare min..max",
            "gskew 3x4K mean",
            "gskew min..max",
            "gskew wins",
        ],
    );
    let rows = parallel_map(IbsBenchmark::all().to_vec(), opts.threads, |bench| {
        let len = opts.len_for(bench);
        let mut results: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];
        for seed_offset in 0..SEEDS {
            let mut spec = bench.spec();
            spec.seed = spec.seed.wrapping_add(seed_offset * 0x1_0000);
            for (i, pred_spec) in specs.iter().enumerate() {
                let mut predictor = parse_spec(pred_spec).expect("valid spec");
                let pct = engine::run(&mut predictor, spec.build().take_conditionals(len))
                    .mispredict_pct();
                results[i].push(pct);
            }
        }
        (bench, results)
    });
    for (bench, results) in rows {
        let stats = |xs: &[f64]| {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let min = xs.iter().copied().fold(f64::MAX, f64::min);
            let max = xs.iter().copied().fold(f64::MIN, f64::max);
            (mean, min, max)
        };
        let (gshare_mean, gshare_min, gshare_max) = stats(&results[0]);
        let (gskew_mean, gskew_min, gskew_max) = stats(&results[1]);
        let wins = results[0]
            .iter()
            .zip(&results[1])
            .filter(|(gshare, gskew)| gskew <= gshare)
            .count();
        table.push_row(vec![
            bench.name().to_string(),
            pct(gshare_mean),
            format!("{gshare_min:.2}..{gshare_max:.2}"),
            pct(gskew_mean),
            format!("{gskew_min:.2}..{gskew_max:.2}"),
            format!("{wins}/{SEEDS}"),
        ]);
    }
    ExperimentOutput {
        id: "ext-seeds",
        title: "Extension — seed robustness: the gskew-vs-gshare comparison re-run on \
                five re-generated versions of every workload"
            .into(),
        tables: vec![table],
    }
}

pub(super) fn assoc(opts: &ExperimentOpts) -> ExperimentOutput {
    use bpred_aliasing::cursor::PairCursor;
    use bpred_aliasing::set_assoc::TaggedSetAssociative;
    use bpred_trace::record::BranchKind;

    // Fixed total capacity (4K pairs), sweep associativity.
    const CAPACITY_LOG2: u32 = 12;
    const WAYS: [u32; 6] = [0, 1, 2, 3, 4, CAPACITY_LOG2]; // log2(ways); last = fully assoc
    let labels: Vec<String> = WAYS
        .iter()
        .map(|&w| {
            if w == CAPACITY_LOG2 {
                "full".to_string()
            } else {
                (1u32 << w).to_string()
            }
        })
        .collect();
    let table = bench_sweep_table(
        format!(
            "Miss % of a {}-pair identity-tagged table vs associativity (gshare set \
             index, 4-bit history)",
            1u32 << CAPACITY_LOG2
        ),
        "ways",
        &labels,
        opts,
        |row, bench| {
            let ways_log2 = WAYS[row];
            let mut table = TaggedSetAssociative::new(
                CAPACITY_LOG2 - ways_log2,
                1 << ways_log2,
                IndexFunction::Gshare,
            );
            let mut cursor = PairCursor::new(4);
            for r in stream(bench, opts.len_for(bench)) {
                if r.kind == BranchKind::Conditional {
                    table.access(&cursor.vector(r.pc));
                }
                cursor.advance(&r);
            }
            100.0 * table.miss_ratio()
        },
    );
    ExperimentOutput {
        id: "ext-assoc",
        title: "Extension — how much associativity would buy (section 3.3's dismissed \
                alternative, quantified: a couple of ways recover most conflicts)"
            .into(),
        tables: vec![table],
    }
}

pub(super) fn delay(opts: &ExperimentOpts) -> ExperimentOutput {
    use crate::engine::{run_delayed, NovelPolicy};

    const DELAYS: [usize; 6] = [0, 2, 4, 8, 16, 32];
    let specs: [(&str, &str); 3] = [
        ("bimodal 16K (history-free)", "bimodal:n=14"),
        ("gshare 16K h=8", "gshare:n=14,h=8"),
        ("gskew 3x4K h=8", "gskew:n=12,h=8"),
    ];
    let labels: Vec<String> = DELAYS.iter().map(|d| d.to_string()).collect();
    let tables = specs
        .iter()
        .map(|(title, spec)| {
            bench_sweep_table(
                format!("{title} mispredict % vs update delay (branches in flight)"),
                "delay",
                &labels,
                opts,
                |row, bench| {
                    let mut p = parse_spec(spec).expect("valid spec");
                    run_delayed(
                        &mut p,
                        stream(bench, opts.len_for(bench)),
                        NovelPolicy::Count,
                        DELAYS[row],
                    )
                    .mispredict_pct()
                },
            )
        })
        .collect();
    ExperimentOutput {
        id: "ext-delay",
        title: "Extension — retirement-time training: the cost of updating tables and \
                history `delay` branches late (the case for speculative history update)"
            .into(),
        tables,
    }
}

pub(super) fn confidence(opts: &ExperimentOpts) -> ExperimentOutput {
    use bpred_core::gskew::Gskew;
    use bpred_core::predictor::{BranchPredictor, Outcome};
    use bpred_trace::record::BranchKind;

    #[derive(Default, Clone, Copy)]
    struct Split {
        unanimous: u64,
        unanimous_wrong: u64,
        split: u64,
        split_wrong: u64,
    }

    let rows = parallel_map(IbsBenchmark::all().to_vec(), opts.threads, |bench| {
        let mut p = Gskew::standard(12, 8).expect("valid configuration");
        let mut counts = Split::default();
        for r in stream(bench, opts.len_for(bench)) {
            if r.kind == BranchKind::Conditional {
                let unanimous = p.is_unanimous(r.pc);
                let prediction = p.predict(r.pc);
                let outcome = Outcome::from(r.taken);
                let wrong = u64::from(prediction.outcome != outcome);
                if unanimous {
                    counts.unanimous += 1;
                    counts.unanimous_wrong += wrong;
                } else {
                    counts.split += 1;
                    counts.split_wrong += wrong;
                }
                p.update(r.pc, outcome);
            } else {
                p.record_unconditional(r.pc);
            }
        }
        (bench, counts)
    });

    let mut table = Table::with_columns(
        "Vote-margin confidence of 3x4K gskew (h=8): unanimous vs split votes",
        &[
            "benchmark",
            "unanimous %",
            "mispredict % | unanimous",
            "split %",
            "mispredict % | split",
        ],
    );
    for (bench, c) in rows {
        let total = (c.unanimous + c.split).max(1) as f64;
        table.push_row(vec![
            bench.name().to_string(),
            pct(100.0 * c.unanimous as f64 / total),
            pct(100.0 * c.unanimous_wrong as f64 / c.unanimous.max(1) as f64),
            pct(100.0 * c.split as f64 / total),
            pct(100.0 * c.split_wrong as f64 / c.split.max(1) as f64),
        ]);
    }
    ExperimentOutput {
        id: "ext-confidence",
        title: "Extension — the majority vote as a free confidence estimator \
                (unanimous votes are far more reliable than 2-1 splits)"
            .into(),
        tables: vec![table],
    }
}

pub(super) fn nature(opts: &ExperimentOpts) -> ExperimentOutput {
    const SIZES: std::ops::RangeInclusive<u32> = 8..=16;
    let ns: Vec<u32> = SIZES.collect();
    let tasks: Vec<(u32, IbsBenchmark)> = ns
        .iter()
        .flat_map(|&n| IbsBenchmark::all().into_iter().map(move |b| (n, b)))
        .collect();
    let cells = parallel_map(tasks, opts.threads, |(n, bench)| {
        AliasingNature::new(n, 8, IndexFunction::Gshare, CounterKind::TwoBit)
            .run(stream(bench, opts.len_for(bench)))
    });

    let mut columns = vec!["entries".to_string()];
    columns.extend(IbsBenchmark::all().iter().map(|b| b.name().to_string()));
    let mut tables: Vec<Table> = [
        "Destructive events per aliased reference % (gshare, h=8)",
        "Constructive events per aliased reference % (gshare, h=8)",
        "Net aliasing misprediction overhead % of all branches (gshare, h=8)",
    ]
    .into_iter()
    .map(|t| Table::new(t, columns.clone()))
    .collect();
    let per_row = IbsBenchmark::all().len();
    for (i, &n) in ns.iter().enumerate() {
        let row = &cells[i * per_row..(i + 1) * per_row];
        let label = (1u64 << n).to_string();
        tables[0].push_row(
            std::iter::once(label.clone())
                .chain(row.iter().map(|c| pct(100.0 * c.destructive_ratio())))
                .collect(),
        );
        tables[1].push_row(
            std::iter::once(label.clone())
                .chain(row.iter().map(|c| pct(100.0 * c.constructive_ratio())))
                .collect(),
        );
        tables[2].push_row(
            std::iter::once(label)
                .chain(row.iter().map(|c| pct(100.0 * c.net_overhead())))
                .collect(),
        );
    }
    ExperimentOutput {
        id: "ext-nature",
        title: "Extension — destructive vs constructive aliasing (section 1's taxonomy; \
                why the figure 11 model overestimates)"
            .into(),
        tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentOpts {
        ExperimentOpts {
            len_override: Some(8_000),
            quick: true,
            ..ExperimentOpts::default()
        }
    }

    #[test]
    fn skew_ablation_shapes() {
        let out = skew_ablation(&tiny());
        assert_eq!(out.tables.len(), 3);
        assert_eq!(out.tables[0].rows().len(), 9);
    }

    #[test]
    fn same_index_tracks_single_bank() {
        // The structural point of the ablation: 3 same-indexed banks must
        // behave like ONE bank of the same per-bank size... except for the
        // f0-vs-gshare indexing difference, so compare gskew:skew=off
        // against itself with banks trained identically — the name check
        // plus a numeric sanity band.
        let bench = IbsBenchmark::Verilog;
        let off = sim_pct("gskew:n=10,h=4,skew=off", bench, 40_000);
        let on = sim_pct("gskew:n=10,h=4", bench, 40_000);
        assert!(
            on < off,
            "dispersion should beat identical indexing: {on} vs {off}"
        );
    }

    #[test]
    fn antialias_and_pas_shapes() {
        let out = antialias(&tiny());
        assert_eq!(out.tables.len(), 4);
        assert_eq!(out.tables[0].rows().len(), 13);
        let out = pas(&tiny());
        assert_eq!(out.tables.len(), 3);
        assert_eq!(out.tables[0].rows().len(), 7);
    }

    #[test]
    fn multiprogram_shape_and_degradation_direction() {
        let out = multiprogram(&tiny());
        let table = &out.tables[0];
        assert_eq!(table.rows().len(), 6);
        // Most predictors should degrade (positive delta) under mixing.
        let degrading = table
            .rows()
            .iter()
            .filter(|r| r[3].parse::<f64>().unwrap_or(0.0) > -0.3)
            .count();
        assert!(
            degrading >= 4,
            "only {degrading}/6 rows degrade under mixing"
        );
    }

    #[test]
    fn encoding_shape_and_tradeoff() {
        let out = encoding(&tiny());
        assert_eq!(out.tables.len(), 3);
        assert_eq!(out.tables[0].rows().len(), 7);
        // The shared-hysteresis variant should sit between the full
        // 2-bit structure and the 2/3-size structure on most cells.
        let bench = IbsBenchmark::Nroff;
        let full = sim_pct("gskew:n=11,h=6", bench, 60_000);
        let shared = sim_pct("shgskew:n=11,h=6", bench, 60_000);
        let small = sim_pct("gskew:n=10,h=6", bench, 60_000);
        assert!(
            shared < small + 0.5,
            "shared {shared} should approach or beat the 2/3-size full {small}"
        );
        assert!(
            shared > full - 0.5,
            "shared {shared} should not beat the full encoding {full} by much"
        );
    }

    #[test]
    fn confidence_unanimous_more_reliable() {
        // Needs a warmed predictor: at very short lengths the boot state
        // makes cold branches unanimously (weakly) taken, polluting the
        // unanimous class.
        let opts = ExperimentOpts {
            len_override: Some(120_000),
            quick: false,
            ..ExperimentOpts::default()
        };
        let out = confidence(&opts);
        let table = &out.tables[0];
        assert_eq!(table.rows().len(), 6);
        let mut reliable = 0;
        for row in table.rows() {
            let unanimous_miss: f64 = row[2].parse().unwrap();
            let split_miss: f64 = row[4].parse().unwrap();
            if unanimous_miss < split_miss {
                reliable += 1;
            }
        }
        assert!(
            reliable >= 5,
            "unanimous votes should be more reliable on most benchmarks, got {reliable}/6"
        );
    }

    #[test]
    fn duel_verdicts_shape() {
        let mut opts = tiny();
        opts.len_override = Some(40_000);
        let out = duel_verdicts(&opts);
        assert_eq!(out.tables.len(), 3);
        for table in &out.tables {
            assert_eq!(table.rows().len(), 6);
            for row in table.rows() {
                let z: f64 = row[5].parse().unwrap();
                assert!(z.is_finite());
                assert!(["B (p < 0.01)", "A (p < 0.01)", "tie"].contains(&row[6].as_str()));
            }
        }
    }

    #[test]
    fn seeds_shape_and_stability() {
        let mut opts = tiny();
        opts.len_override = Some(60_000);
        let out = seeds(&opts);
        let table = &out.tables[0];
        assert_eq!(table.rows().len(), 6);
        // Across benchmarks and seeds, gskew should win a clear majority.
        let mut wins = 0u32;
        let mut total = 0u32;
        for row in table.rows() {
            let (w, t) = row[5].split_once('/').unwrap();
            wins += w.parse::<u32>().unwrap();
            total += t.parse::<u32>().unwrap();
        }
        // gskew should at least split the field (the paper's own figure 7
        // has it losing real_gcc outright).
        assert!(
            wins * 2 >= total,
            "gskew won only {wins}/{total} seeded comparisons"
        );
    }

    #[test]
    fn assoc_shape_and_monotonicity() {
        let out = assoc(&tiny());
        let table = &out.tables[0];
        assert_eq!(table.rows().len(), 6);
        // More ways must not increase misses (small LRU-anomaly slack).
        for col in 1..table.columns().len() {
            let dm: f64 = table.rows()[0][col].parse().unwrap();
            let fa: f64 = table.rows()[5][col].parse().unwrap();
            assert!(fa <= dm + 0.2, "col {col}: fa {fa} vs dm {dm}");
        }
    }

    #[test]
    fn delay_shape_and_monotonicity() {
        let out = delay(&tiny());
        assert_eq!(out.tables.len(), 3);
        assert_eq!(out.tables[0].rows().len(), 6);
        // Delay must not help: compare delay 0 vs 32 per table/benchmark.
        for table in &out.tables {
            for col in 1..table.columns().len() {
                let d0: f64 = table.rows()[0][col].parse().unwrap();
                let d32: f64 = table.rows()[5][col].parse().unwrap();
                assert!(
                    d32 >= d0 - 0.3,
                    "{}: delay helped? {d0} -> {d32}",
                    table.title()
                );
            }
        }
    }

    #[test]
    fn nature_shape() {
        let out = nature(&tiny());
        assert_eq!(out.tables.len(), 3);
        assert_eq!(out.tables[0].rows().len(), 9);
    }
}
