//! Figures 5 and 6: misprediction percentage of gshare vs the 3-bank
//! skewed predictor (2-bit counters, partial update) across table sizes,
//! for 4-bit (fig 5) and 12-bit (fig 6) histories.
//!
//! Rows are labeled by *total* predictor entries; the gskew rows use three
//! banks of one third the total (so `3x4096 = 12288` sits between the 8K
//! and 16K gshare rows, the flexibility argument of section 7).

use super::helpers::{size_labels, spec_sweep_table};
use super::{ExperimentOpts, ExperimentOutput};
use crate::report::Table;

const GSHARE_LOG2: std::ops::RangeInclusive<u32> = 6..=18;
const GSKEW_BANK_LOG2: std::ops::RangeInclusive<u32> = 5..=16;

fn gshare_table(opts: &ExperimentOpts, h: u32) -> Table {
    let sizes: Vec<u32> = GSHARE_LOG2.collect();
    let labels = size_labels(*GSHARE_LOG2.start(), *GSHARE_LOG2.end());
    spec_sweep_table(
        format!("gshare mispredict % ({h}-bit history)"),
        "total entries",
        &labels,
        opts,
        |row| format!("gshare:n={},h={h}", sizes[row]),
    )
}

fn gskew_table(opts: &ExperimentOpts, h: u32) -> Table {
    let banks: Vec<u32> = GSKEW_BANK_LOG2.collect();
    let labels: Vec<String> = banks
        .iter()
        .map(|&n| format!("3x{} = {}", 1u64 << n, 3 * (1u64 << n)))
        .collect();
    spec_sweep_table(
        format!("gskew mispredict % (3 banks, partial update, {h}-bit history)"),
        "total entries",
        &labels,
        opts,
        |row| format!("gskew:n={},h={h}", banks[row]),
    )
}

pub(super) fn run(opts: &ExperimentOpts, h: u32, id: &'static str) -> ExperimentOutput {
    ExperimentOutput {
        id,
        title: format!(
            "Figure {} — misprediction % vs predictor size, {h}-bit history",
            if h == 4 { 5 } else { 6 }
        ),
        tables: vec![gshare_table(opts, h), gskew_table(opts, h)],
    }
}

#[cfg(test)]
mod tests {
    use super::super::helpers::sim_pct;
    use super::*;
    use bpred_trace::workload::IbsBenchmark;

    /// The paper's headline: at comparable total storage, gskew beats
    /// gshare once capacity aliasing has vanished.
    #[test]
    fn gskew_beats_gshare_at_equal_storage() {
        let bench = IbsBenchmark::Groff;
        let len = 120_000;
        // 3x4K gskew (12K entries) vs 16K gshare: gskew should be at
        // least competitive despite 25% less storage.
        let gskew = sim_pct("gskew:n=12,h=4", bench, len);
        let gshare = sim_pct("gshare:n=14,h=4", bench, len);
        assert!(
            gskew <= gshare + 0.3,
            "gskew 3x4K {gskew} should rival gshare 16K {gshare}"
        );
    }

    #[test]
    fn output_shape() {
        let mut opts = ExperimentOpts::quick();
        opts.len_override = Some(20_000);
        let out = run(&opts, 4, "fig5");
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].rows().len(), 13);
        assert_eq!(out.tables[1].rows().len(), 12);
    }
}
