//! Plain-text and CSV rendering of experiment results.
//!
//! Figures become tables here: one row per x-axis point, one column per
//! series (typically per benchmark), matching the rows the paper plots.

use std::fmt::Write as _;

/// A rectangular result table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Convenience: headers from string slices.
    pub fn with_columns(title: impl Into<String>, columns: &[&str]) -> Self {
        Table::new(title, columns.iter().map(|s| s.to_string()).collect())
    }

    /// Append a row; it is padded or truncated to the column count.
    pub fn push_row(&mut self, row: Vec<String>) {
        let mut row = row;
        row.resize(self.columns.len(), String::new());
        self.rows.push(row);
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut header = String::new();
        for (i, col) in self.columns.iter().enumerate() {
            let _ = write!(header, "{:width$}  ", col, width = widths[i]);
        }
        let _ = writeln!(out, "{}", header.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Render as CSV (title omitted; quotes around cells containing
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Render a numeric series as a fixed-height ASCII chart (one column per
/// point, `#` bars over a labeled y-range) — enough to see a figure's
/// shape in a terminal without plotting tools.
///
/// Returns an empty string for an empty series.
///
/// # Panics
///
/// Panics if `height` is zero.
pub fn ascii_chart(series: &[f64], height: usize) -> String {
    assert!(height > 0, "chart height must be nonzero");
    if series.is_empty() {
        return String::new();
    }
    let max = series.iter().copied().fold(f64::MIN, f64::max);
    let min = series.iter().copied().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    let mut out = String::new();
    for row in (0..height).rev() {
        let threshold = min + span * (row as f64 + 0.5) / height as f64;
        let label = if row == height - 1 {
            format!("{max:>8.2} ")
        } else if row == 0 {
            format!("{min:>8.2} ")
        } else {
            " ".repeat(9)
        };
        out.push_str(&label);
        out.push('|');
        for &v in series {
            // The bottom row is always filled so every point (including
            // the minimum, and flat series) leaves a mark.
            out.push(if v >= threshold || row == 0 { '#' } else { ' ' });
        }
        out.push('\n');
    }
    let _ = writeln!(out, "{}+{}", " ".repeat(9), "-".repeat(series.len()));
    out
}

/// Format a percentage with two decimals, as the paper prints them.
pub fn pct(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a ratio with two decimals (Table 2's substream ratios).
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::with_columns("demo", &["size", "groff", "gs"]);
        t.push_row(vec!["1024".into(), "5.12".into(), "6.01".into()]);
        t.push_row(vec!["4096".into(), "4.02".into()]);
        t
    }

    #[test]
    fn render_aligns_and_pads() {
        let s = sample().render();
        assert!(s.contains("## demo"));
        assert!(s.contains("size  groff  gs"));
        assert!(s.contains("1024  5.12   6.01"));
        // Short row padded with an empty cell.
        assert!(s.contains("4096  4.02"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::with_columns("x", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn ascii_chart_shapes() {
        let chart = ascii_chart(&[0.0, 1.0, 2.0, 3.0], 4);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 5, "4 rows + axis");
        // Top row: only the maximum reaches it.
        assert!(lines[0].ends_with("   #"));
        // Bottom data row: always fully filled (every point leaves a mark).
        assert!(lines[3].ends_with("####"));
        assert!(lines[0].contains("3.00"));
        assert!(lines[3].contains("0.00"));
    }

    #[test]
    fn ascii_chart_flat_and_empty() {
        assert_eq!(ascii_chart(&[], 3), "");
        // A flat series must not divide by zero.
        let chart = ascii_chart(&[5.0; 10], 3);
        assert!(chart.contains('#'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(12.345), "12.35");
        assert_eq!(pct(0.5), "0.50");
        assert_eq!(ratio(1.0), "1.00");
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.title(), "demo");
        assert_eq!(t.columns().len(), 3);
        assert_eq!(t.rows().len(), 2);
    }
}
