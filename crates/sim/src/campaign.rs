//! Named campaigns: fixed experiment sets run as one unit.
//!
//! A campaign pins *which* experiments run and *how* (lengths, quick
//! mode), so its artifact — every rendered table cell, captured as a
//! [`CampaignArtifact`] — is reproducible and can be diffed against a
//! committed baseline by [`bpred_results::campaign::diff`]. The `quick`
//! campaign backs the CI regression gate.

use crate::experiments::{self, ExperimentOpts, ExperimentOutput};
use crate::resume::ENGINE_VERSION;
use bpred_results::campaign::{CampaignArtifact, ExperimentData, TableData};

/// A named experiment set.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Stable campaign name (`quick`, …).
    pub name: &'static str,
    /// One-line description for listings.
    pub description: &'static str,
    /// Experiment ids to run, in order.
    pub experiments: &'static [&'static str],
    /// Run at `--quick` lengths.
    pub quick: bool,
}

/// Every defined campaign.
pub const ALL: &[Campaign] = &[Campaign {
    name: "quick",
    description: "fig5 fig7 fig8 table2 three-c at --quick lengths (the CI regression gate)",
    experiments: &["fig5", "fig7", "fig8", "table2", "three-c"],
    quick: true,
}];

/// Look a campaign up by name.
pub fn find(name: &str) -> Option<&'static Campaign> {
    ALL.iter().find(|c| c.name == name)
}

/// Run every experiment of `campaign` and capture the artifact.
/// `opts` supplies threads and any length override; quick mode is
/// forced to the campaign's own setting so the artifact stays
/// comparable to its baseline. The artifact records the workload seed
/// in effect ([`experiments::workload_seed`]).
///
/// # Panics
///
/// Panics if the campaign names an unknown experiment id — campaign
/// definitions are static and covered by tests.
pub fn run(campaign: &Campaign, opts: &ExperimentOpts) -> CampaignArtifact {
    let mut opts = opts.clone();
    opts.quick = campaign.quick;
    let experiments = campaign
        .experiments
        .iter()
        .map(|id| {
            let output = experiments::run(id, &opts)
                .unwrap_or_else(|| panic!("campaign names unknown experiment `{id}`"));
            capture(&output)
        })
        .collect();
    CampaignArtifact {
        name: campaign.name.to_string(),
        engine_version: ENGINE_VERSION.to_string(),
        seed: experiments::workload_seed(),
        experiments,
    }
}

/// Capture one experiment's rendered tables into artifact form.
pub fn capture(output: &ExperimentOutput) -> ExperimentData {
    ExperimentData {
        id: output.id.to_string(),
        title: output.title.clone(),
        tables: output
            .tables
            .iter()
            .map(|t| TableData {
                title: t.title().to_string(),
                columns: t.columns().to_vec(),
                rows: t.rows().to_vec(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_campaign_names_known_experiments() {
        for campaign in ALL {
            assert!(!campaign.experiments.is_empty());
            for id in campaign.experiments {
                assert!(
                    experiments::ALL_IDS.contains(id),
                    "campaign `{}` names unknown experiment `{id}`",
                    campaign.name
                );
            }
        }
    }

    #[test]
    fn find_resolves_names() {
        assert_eq!(find("quick").unwrap().name, "quick");
        assert!(find("nope").is_none());
    }
}
