//! Results-store integration: persist simulated cells and resume past
//! them.
//!
//! When a [`bpred_results::store::ResultsStore`] is configured here, the
//! experiment helpers ([`crate::experiments::sim_pct`] and the
//! spec-sweep tables) consult it before simulating a cell: a
//! fingerprint-identical hit is adopted wholesale (the stored counts
//! reproduce the cell's rendering byte for byte) and the simulation is
//! skipped, which makes whole experiment reruns incremental across
//! processes — the durable complement of the in-memory trace cache.
//! Misses are simulated normally and, when saving is enabled, written
//! back through the store's atomic path.
//!
//! The context is process-global by design, mirroring
//! `bpred_trace::cache`: only single-threaded entry points (the CLI)
//! should configure it. Counters are atomic so the parallel sweep
//! workers can report through them.

use crate::engine::{NovelPolicy, RunResult};
use bpred_results::record::{CellKey, ResultRecord};
use bpred_results::store::ResultsStore;
use bpred_trace::workload::IbsBenchmark;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Version of the simulation engine's accounting, fingerprinted into
/// every stored cell. Bump this whenever a change alters what any
/// simulated number *means* (accounting rules, workload synthesis,
/// predictor semantics): old records stop matching and every cell
/// re-simulates instead of silently serving stale numbers.
pub const ENGINE_VERSION: &str = "1";

struct Context {
    store: ResultsStore,
    /// Serve fingerprint hits instead of simulating.
    resume: bool,
    /// Persist simulated cells.
    save: bool,
}

static CONTEXT: Mutex<Option<Context>> = Mutex::new(None);
static CELLS_SKIPPED: AtomicU64 = AtomicU64::new(0);
static CELLS_SIMULATED: AtomicU64 = AtomicU64::new(0);
static RECORDS_SAVED: AtomicU64 = AtomicU64::new(0);
/// The experiment id currently running, stamped into saved records
/// (informational only; not part of the fingerprint).
static EXPERIMENT: Mutex<Option<&'static str>> = Mutex::new(None);

/// Attach a store. `resume` serves fingerprint-identical hits without
/// simulating; `save` persists simulated cells. Both may be set.
pub fn configure(store: ResultsStore, resume: bool, save: bool) {
    *CONTEXT.lock().expect("resume context poisoned") = Some(Context {
        store,
        resume,
        save,
    });
}

/// Detach and return the store, if one was configured.
pub fn deconfigure() -> Option<ResultsStore> {
    CONTEXT
        .lock()
        .expect("resume context poisoned")
        .take()
        .map(|ctx| ctx.store)
}

/// Whether a store is currently attached.
pub fn is_active() -> bool {
    CONTEXT.lock().expect("resume context poisoned").is_some()
}

/// Stamp the experiment id recorded on cells saved from now on.
pub fn set_experiment(id: &'static str) {
    *EXPERIMENT.lock().expect("experiment label poisoned") = Some(id);
}

fn experiment_label() -> String {
    EXPERIMENT
        .lock()
        .expect("experiment label poisoned")
        .unwrap_or("adhoc")
        .to_string()
}

/// Counter snapshot for `--verbose` summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResumeStats {
    /// Cells served from the store without simulating.
    pub cells_skipped: u64,
    /// Cells actually simulated while a store was attached.
    pub cells_simulated: u64,
    /// Records written to the store.
    pub records_saved: u64,
}

/// Snapshot the global counters.
pub fn stats() -> ResumeStats {
    ResumeStats {
        cells_skipped: CELLS_SKIPPED.load(Ordering::Relaxed),
        cells_simulated: CELLS_SIMULATED.load(Ordering::Relaxed),
        records_saved: RECORDS_SAVED.load(Ordering::Relaxed),
    }
}

/// The policy's stable name inside cell keys.
pub fn policy_name(policy: NovelPolicy) -> &'static str {
    match policy {
        NovelPolicy::Count => "count",
        NovelPolicy::Exclude => "exclude",
    }
}

/// Build the cell key and fingerprint for one simulation cell. The
/// fingerprint covers the spec, the *full* workload parameter set (the
/// benchmark's seeded `WorkloadSpec`, so recalibrating a workload
/// invalidates its cells), the trace length, seed, accounting policy
/// and [`ENGINE_VERSION`].
pub fn cell(
    spec: &str,
    bench: IbsBenchmark,
    len: u64,
    seed: u64,
    policy: NovelPolicy,
) -> (CellKey, u64) {
    cell_keyed(spec, bench, len, seed, policy_name(policy))
}

/// [`cell`] with a free-form policy label — the shared core for cells
/// that are not predictor runs (the aliasing cells use the
/// [`ALIAS_POLICY`] label, where a `NovelPolicy` would be meaningless).
pub fn cell_keyed(
    spec: &str,
    bench: IbsBenchmark,
    len: u64,
    seed: u64,
    policy: &str,
) -> (CellKey, u64) {
    let key = CellKey {
        bench: bench.name().to_string(),
        spec: spec.to_string(),
        len,
        seed,
        policy: policy.to_string(),
    };
    let workload_params = format!("{:?}", bench.spec_seeded(seed));
    let fingerprint = key.fingerprint(&workload_params, ENGINE_VERSION);
    (key, fingerprint)
}

/// Policy label of three-C aliasing cells. Distinct from every
/// [`policy_name`] value, so an aliasing cell can never collide with a
/// predictor cell that happens to share a spec string.
pub const ALIAS_POLICY: &str = "alias";

/// Key + fingerprint of one *direct-mapped* three-C measurement: the
/// tagged-table pass of a grid cell. Stored as `conditional` =
/// references, `mispredicted` = misses, `novel` = cold misses.
pub fn alias_dm_cell(
    cell: &bpred_aliasing::batch::ThreeCCell,
    bench: IbsBenchmark,
    len: u64,
    seed: u64,
) -> (CellKey, u64) {
    let spec = format!(
        "3c-dm:ix={},n={},h={}",
        cell.func, cell.entries_log2, cell.history_bits
    );
    cell_keyed(&spec, bench, len, seed, ALIAS_POLICY)
}

/// Key + fingerprint of one *fully-associative* three-C measurement at
/// capacity `2^entries_log2` under `history_bits` of history. Keyed
/// without an index function — the FA reference is shared by every index
/// function of the grid, which is exactly what lets the batched engine
/// (and a resumed rerun) pay for it once. Stored as `conditional` =
/// references, `mispredicted` = misses, `novel` = cold misses.
pub fn alias_fa_cell(
    entries_log2: u32,
    history_bits: u32,
    bench: IbsBenchmark,
    len: u64,
    seed: u64,
) -> (CellKey, u64) {
    let spec = format!("3c-fa:n={entries_log2},h={history_bits}");
    cell_keyed(&spec, bench, len, seed, ALIAS_POLICY)
}

/// Look a cell up. `Some` only when a store is attached with resume
/// enabled and it holds a valid record under this fingerprint.
pub fn lookup(fingerprint: u64) -> Option<RunResult> {
    let guard = CONTEXT.lock().expect("resume context poisoned");
    let ctx = guard.as_ref().filter(|ctx| ctx.resume)?;
    let record = ctx.store.get(fingerprint)?;
    CELLS_SKIPPED.fetch_add(1, Ordering::Relaxed);
    Some(RunResult {
        conditional: record.conditional,
        mispredicted: record.mispredicted,
        novel: record.novel,
    })
}

/// Account one simulated cell and persist it when saving is enabled.
/// A write failure is reported to stderr but never fails the sweep —
/// the simulation result is already in hand.
pub fn record(key: CellKey, fingerprint: u64, result: RunResult, elapsed_ms: f64) {
    CELLS_SIMULATED.fetch_add(1, Ordering::Relaxed);
    let mut guard = CONTEXT.lock().expect("resume context poisoned");
    let Some(ctx) = guard.as_mut().filter(|ctx| ctx.save) else {
        return;
    };
    let record = ResultRecord {
        experiment: experiment_label(),
        key,
        fingerprint,
        engine_version: ENGINE_VERSION.to_string(),
        conditional: result.conditional,
        mispredicted: result.mispredicted,
        novel: result.novel,
        elapsed_ms,
    };
    match ctx.store.put(&record) {
        Ok(()) => {
            RECORDS_SAVED.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => eprintln!("bpsim: results store write failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_fingerprints_separate_every_coordinate() {
        let (_, base) = cell(
            "gshare:n=10,h=4",
            IbsBenchmark::Groff,
            1000,
            7,
            NovelPolicy::Count,
        );
        let variants = [
            cell(
                "gshare:n=11,h=4",
                IbsBenchmark::Groff,
                1000,
                7,
                NovelPolicy::Count,
            )
            .1,
            cell(
                "gshare:n=10,h=4",
                IbsBenchmark::Gs,
                1000,
                7,
                NovelPolicy::Count,
            )
            .1,
            cell(
                "gshare:n=10,h=4",
                IbsBenchmark::Groff,
                1001,
                7,
                NovelPolicy::Count,
            )
            .1,
            cell(
                "gshare:n=10,h=4",
                IbsBenchmark::Groff,
                1000,
                8,
                NovelPolicy::Count,
            )
            .1,
            cell(
                "gshare:n=10,h=4",
                IbsBenchmark::Groff,
                1000,
                7,
                NovelPolicy::Exclude,
            )
            .1,
        ];
        for v in variants {
            assert_ne!(v, base);
        }
        let (_, again) = cell(
            "gshare:n=10,h=4",
            IbsBenchmark::Groff,
            1000,
            7,
            NovelPolicy::Count,
        );
        assert_eq!(again, base, "fingerprints are stable");
    }

    #[test]
    fn policy_names() {
        assert_eq!(policy_name(NovelPolicy::Count), "count");
        assert_eq!(policy_name(NovelPolicy::Exclude), "exclude");
    }

    #[test]
    fn alias_cells_fingerprint_every_coordinate() {
        use bpred_aliasing::batch::ThreeCCell;
        use bpred_core::index::IndexFunction;
        let cell = ThreeCCell {
            entries_log2: 10,
            history_bits: 4,
            func: IndexFunction::Gshare,
        };
        let (key, base) = alias_dm_cell(&cell, IbsBenchmark::Groff, 1000, 7);
        assert_eq!(key.policy, ALIAS_POLICY);
        let variants = [
            alias_dm_cell(
                &ThreeCCell {
                    entries_log2: 11,
                    ..cell
                },
                IbsBenchmark::Groff,
                1000,
                7,
            )
            .1,
            alias_dm_cell(
                &ThreeCCell {
                    history_bits: 5,
                    ..cell
                },
                IbsBenchmark::Groff,
                1000,
                7,
            )
            .1,
            alias_dm_cell(
                &ThreeCCell {
                    func: IndexFunction::Gselect,
                    ..cell
                },
                IbsBenchmark::Groff,
                1000,
                7,
            )
            .1,
            alias_dm_cell(&cell, IbsBenchmark::Gs, 1000, 7).1,
            alias_dm_cell(&cell, IbsBenchmark::Groff, 1001, 7).1,
            alias_dm_cell(&cell, IbsBenchmark::Groff, 1000, 8).1,
            // The FA cell of the same geometry is a different cell.
            alias_fa_cell(10, 4, IbsBenchmark::Groff, 1000, 7).1,
        ];
        for v in variants {
            assert_ne!(v, base);
        }
        assert_eq!(alias_dm_cell(&cell, IbsBenchmark::Groff, 1000, 7).1, base);
        // FA cells ignore the index function by construction: one key per
        // (capacity, history).
        assert_eq!(
            alias_fa_cell(10, 4, IbsBenchmark::Groff, 1000, 7).1,
            alias_fa_cell(10, 4, IbsBenchmark::Groff, 1000, 7).1
        );
    }

    // Lookup/record behaviour against a real store lives in
    // `tests/resume.rs`: the context is process-global, so it is
    // exercised in a dedicated integration-test process instead of this
    // shared unit-test binary.
}
