//! Lockstep predictor duels with a paired significance test.
//!
//! Comparing two predictors by their overall misprediction percentages
//! hides the pairing: both saw the *same* branches. A McNemar-style
//! analysis of the per-branch discordant outcomes (A right / B wrong vs
//! A wrong / B right) gives the comparison statistical teeth — the
//! experiment harness uses it to state that the paper's orderings are
//! significant rather than noise.

use crate::engine::NovelPolicy;
use bpred_core::predictor::{BranchPredictor, Outcome};
use bpred_trace::record::{BranchKind, BranchRecord};

/// The outcome of a lockstep duel between two predictors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DuelResult {
    /// Conditional branches both predictors predicted.
    pub branches: u64,
    /// Branches only predictor A mispredicted (B was right).
    pub only_a_wrong: u64,
    /// Branches only predictor B mispredicted (A was right).
    pub only_b_wrong: u64,
    /// Branches both mispredicted.
    pub both_wrong: u64,
}

impl DuelResult {
    /// Misprediction percentage of predictor A.
    pub fn a_pct(&self) -> f64 {
        percentage(self.only_a_wrong + self.both_wrong, self.branches)
    }

    /// Misprediction percentage of predictor B.
    pub fn b_pct(&self) -> f64 {
        percentage(self.only_b_wrong + self.both_wrong, self.branches)
    }

    /// The McNemar z statistic over the discordant pairs,
    /// `(b - c) / sqrt(b + c)`; positive means predictor A mispredicts
    /// more. |z| > 1.96 is significant at the 5 % level, > 2.58 at 1 %.
    ///
    /// Returns 0 when there are no discordant branches.
    pub fn mcnemar_z(&self) -> f64 {
        let b = self.only_a_wrong as f64;
        let c = self.only_b_wrong as f64;
        if b + c == 0.0 {
            return 0.0;
        }
        (b - c) / (b + c).sqrt()
    }

    /// `true` when B beats A significantly at the 1 % level.
    pub fn b_significantly_better(&self) -> bool {
        self.mcnemar_z() > 2.58
    }

    /// `true` when A beats B significantly at the 1 % level.
    pub fn a_significantly_better(&self) -> bool {
        self.mcnemar_z() < -2.58
    }
}

#[inline]
fn percentage(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Drive two predictors over the same record stream in lockstep and
/// tally the paired outcomes. Novel predictions are accounted per
/// `novel_policy` for both predictors symmetrically (an excluded branch
/// is excluded from the pairing entirely when *either* prediction is
/// novel, so the pairing stays balanced).
pub fn duel(
    a: &mut dyn BranchPredictor,
    b: &mut dyn BranchPredictor,
    records: impl Iterator<Item = BranchRecord>,
    novel_policy: NovelPolicy,
) -> DuelResult {
    let mut result = DuelResult::default();
    for record in records {
        if record.kind == BranchKind::Conditional {
            let pa = a.predict(record.pc);
            let pb = b.predict(record.pc);
            let outcome = Outcome::from(record.taken);
            let excluded = novel_policy == NovelPolicy::Exclude && (pa.novel || pb.novel);
            if !excluded {
                result.branches += 1;
                let a_wrong = pa.outcome != outcome;
                let b_wrong = pb.outcome != outcome;
                match (a_wrong, b_wrong) {
                    (true, false) => result.only_a_wrong += 1,
                    (false, true) => result.only_b_wrong += 1,
                    (true, true) => result.both_wrong += 1,
                    (false, false) => {}
                }
            }
            a.update(record.pc, outcome);
            b.update(record.pc, outcome);
        } else {
            a.record_unconditional(record.pc);
            b.record_unconditional(record.pc);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_core::prelude::*;
    use bpred_core::spec::parse_spec;
    use bpred_trace::prelude::*;

    #[test]
    fn identical_predictors_never_discord() {
        let mut a = parse_spec("gshare:n=10,h=4").unwrap();
        let mut b = parse_spec("gshare:n=10,h=4").unwrap();
        let r = duel(
            &mut a,
            &mut b,
            IbsBenchmark::Verilog
                .spec()
                .build()
                .take_conditionals(20_000),
            NovelPolicy::Count,
        );
        assert_eq!(r.only_a_wrong, 0);
        assert_eq!(r.only_b_wrong, 0);
        assert!(r.both_wrong > 0);
        assert_eq!(r.mcnemar_z(), 0.0);
        assert!((r.a_pct() - r.b_pct()).abs() < 1e-12);
    }

    #[test]
    fn duel_percentages_match_solo_runs() {
        let spec = IbsBenchmark::Groff.spec();
        let len = 30_000;
        let mut a = parse_spec("gshare:n=12,h=6").unwrap();
        let mut b = parse_spec("gskew:n=10,h=6").unwrap();
        let r = duel(
            &mut a,
            &mut b,
            spec.build().take_conditionals(len),
            NovelPolicy::Count,
        );
        let mut solo_a = parse_spec("gshare:n=12,h=6").unwrap();
        let solo = crate::engine::run(&mut solo_a, spec.build().take_conditionals(len));
        assert!((r.a_pct() - solo.mispredict_pct()).abs() < 1e-9);
    }

    #[test]
    fn big_table_beats_tiny_table_significantly() {
        let mut tiny = parse_spec("gshare:n=6,h=4").unwrap();
        let mut big = parse_spec("gshare:n=14,h=4").unwrap();
        let r = duel(
            &mut tiny,
            &mut big,
            IbsBenchmark::Gs.spec().build().take_conditionals(150_000),
            NovelPolicy::Count,
        );
        assert!(
            r.b_significantly_better(),
            "z = {:.2} should exceed 2.58",
            r.mcnemar_z()
        );
        assert!(!r.a_significantly_better());
    }

    #[test]
    fn statics_duel_deterministically() {
        let mut t = AlwaysTaken::new();
        let mut n = AlwaysNotTaken::new();
        let records = vec![
            BranchRecord::conditional(0x100, true),
            BranchRecord::conditional(0x104, true),
            BranchRecord::conditional(0x108, false),
        ];
        let r = duel(&mut t, &mut n, records.into_iter(), NovelPolicy::Count);
        assert_eq!(r.branches, 3);
        assert_eq!(r.only_a_wrong, 1); // the not-taken branch
        assert_eq!(r.only_b_wrong, 2); // the two taken branches
        assert_eq!(r.both_wrong, 0);
        assert!(r.mcnemar_z() < 0.0, "A (always-taken) wins here");
    }

    #[test]
    fn empty_duel_is_zero() {
        let mut a = AlwaysTaken::new();
        let mut b = AlwaysNotTaken::new();
        let r = duel(&mut a, &mut b, std::iter::empty(), NovelPolicy::Count);
        assert_eq!(r, DuelResult::default());
        assert_eq!(r.a_pct(), 0.0);
    }
}
