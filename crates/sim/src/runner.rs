//! Order-preserving parallel execution of independent simulation tasks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Apply `f` to every item on up to `threads` worker threads, returning
/// results in input order.
///
/// Tasks are pulled from a shared index, so long tasks (large tables) are
/// naturally balanced. Items live in one shared vector guarded by a
/// single mutex — a worker holds the lock just long enough to `take` its
/// claimed slot — and results flow back over a channel tagged with their
/// input index, so there is no per-slot lock traffic on either side.
/// With `threads <= 1` the map runs inline.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Mutex<Vec<Option<T>>> = Mutex::new(items.into_iter().map(Some).collect());
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        let (slots, next, f) = (&slots, &next, &f);
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots.lock().expect("task queue poisoned")[i]
                    .take()
                    .expect("each slot is taken exactly once");
                // Send only fails when the receiver is gone, which
                // cannot happen while the scope holds `rx` alive.
                let _ = tx.send((i, f(item)));
            });
        }
    });
    drop(tx);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every task ran"))
        .collect()
}

/// A sensible default worker count: the `GSKEW_THREADS` environment
/// variable when set (clamped to at least 1), otherwise the available
/// parallelism, capped so laptop runs stay responsive.
pub fn default_threads() -> usize {
    threads_from(std::env::var("GSKEW_THREADS").ok().as_deref(), || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16)
    })
}

/// [`default_threads`] with the environment and hardware probes injected,
/// so the override logic is unit-testable without touching process state.
/// A missing, empty, unparsable or zero `env` falls back to `hardware`;
/// any parsed value is clamped to at least 1.
fn threads_from(env: Option<&str>, hardware: impl FnOnce() -> usize) -> usize {
    match env.map(str::trim).filter(|s| !s.is_empty()) {
        Some(s) => match s.parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => hardware().max(1),
        },
        None => hardware().max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_inline() {
        let out = parallel_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![5], 16, |x| x * x);
        assert_eq!(out, vec![25]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn gskew_threads_override_is_clamped_and_validated() {
        let hw = || 8;
        assert_eq!(threads_from(None, hw), 8, "unset: hardware default");
        assert_eq!(threads_from(Some(""), hw), 8, "empty: hardware default");
        assert_eq!(threads_from(Some("  "), hw), 8, "blank: hardware default");
        assert_eq!(threads_from(Some("3"), hw), 3);
        assert_eq!(threads_from(Some(" 12 "), hw), 12, "whitespace tolerated");
        assert_eq!(threads_from(Some("0"), hw), 1, "clamped to at least 1");
        assert_eq!(
            threads_from(Some("lots"), hw),
            8,
            "garbage: hardware default"
        );
        assert_eq!(
            threads_from(Some("-2"), hw),
            8,
            "negative: hardware default"
        );
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(vec![1, 2, 3], 2, |x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err(), "a worker panic must not be swallowed");
    }

    #[test]
    fn heavy_and_light_tasks_balance() {
        // Just a smoke check that mixed-duration tasks all complete and
        // keep their slots.
        let out = parallel_map((0..40u64).collect(), 4, |x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x * x
        });
        assert_eq!(out, (0..40u64).map(|x| x * x).collect::<Vec<_>>());
    }
}
