//! The trace-driven simulation engine: drive any predictor over any record
//! stream and account mispredictions.

use crate::timing;
use bpred_core::predictor::{BranchPredictor, Outcome};
use bpred_trace::record::{BranchKind, BranchRecord};
use std::time::Instant;

/// How predictions flagged *novel* (first encounter of a substream, only
/// produced by the ideal and tagged predictors) are accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NovelPolicy {
    /// Count the prediction like any other (figure 8's fully-associative
    /// table: its always-taken miss fallback is charged normally).
    #[default]
    Count,
    /// Exclude the reference from the misprediction accounting (Table 2's
    /// unaliased predictor: first encounters are not mispredictions).
    Exclude,
}

/// Misprediction accounting for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunResult {
    /// Dynamic conditional branches predicted.
    pub conditional: u64,
    /// Mispredicted conditional branches (after the novel policy).
    pub mispredicted: u64,
    /// References whose prediction was flagged novel.
    pub novel: u64,
}

impl RunResult {
    /// Misprediction percentage over all conditional branches.
    pub fn mispredict_pct(&self) -> f64 {
        if self.conditional == 0 {
            0.0
        } else {
            100.0 * self.mispredicted as f64 / self.conditional as f64
        }
    }

    /// Misprediction ratio in `[0, 1]`.
    pub fn mispredict_ratio(&self) -> f64 {
        self.mispredict_pct() / 100.0
    }
}

/// Run `predictor` over `records` with the default accounting
/// ([`NovelPolicy::Count`]).
pub fn run(
    predictor: &mut dyn BranchPredictor,
    records: impl Iterator<Item = BranchRecord>,
) -> RunResult {
    run_with(predictor, records, NovelPolicy::Count)
}

/// Run `predictor` over `records` with an explicit novel-reference policy.
///
/// For every conditional record the engine calls
/// [`BranchPredictor::predict`] then [`BranchPredictor::update`]; for
/// other kinds it calls [`BranchPredictor::record_unconditional`], so
/// unconditional branches shift global histories exactly as in the paper.
pub fn run_with(
    predictor: &mut dyn BranchPredictor,
    records: impl Iterator<Item = BranchRecord>,
    novel_policy: NovelPolicy,
) -> RunResult {
    run_warm(predictor, records, novel_policy, 0)
}

/// As [`run_with`], excluding the first `warmup` conditional branches
/// from the accounting (the predictor still trains on them).
///
/// The paper measures whole traces with no warmup (cold-start effects are
/// part of its aliasing story), so the experiment harness passes 0; the
/// option exists for steady-state studies.
pub fn run_warm(
    predictor: &mut dyn BranchPredictor,
    records: impl Iterator<Item = BranchRecord>,
    novel_policy: NovelPolicy,
    warmup: u64,
) -> RunResult {
    let start = Instant::now();
    let mut result = RunResult::default();
    let mut seen = 0u64;
    let mut applications = 0u64;
    for record in records {
        applications += 1;
        if record.kind == BranchKind::Conditional {
            seen += 1;
            let prediction = predictor.predict(record.pc);
            let outcome = Outcome::from(record.taken);
            if seen > warmup {
                result.conditional += 1;
                if prediction.novel {
                    result.novel += 1;
                }
                let counted = !(prediction.novel && novel_policy == NovelPolicy::Exclude);
                if counted && prediction.outcome != outcome {
                    result.mispredicted += 1;
                }
            }
            predictor.update(record.pc, outcome);
        } else {
            predictor.record_unconditional(record.pc);
        }
    }
    timing::record_dyn(applications, start.elapsed());
    result
}

/// Drive every predictor in `predictors` over a single pass of one
/// materialized trace, under one novel-reference policy.
///
/// Each record is applied to all predictors before the pass advances, so
/// the result for predictor `i` is bit-identical to running
/// [`run_with`]`(predictors[i], records.iter().copied(), novel_policy)`
/// on its own — the predictors share the trace walk, not any state. With
/// a cached trace (`bpred_trace::cache`) this turns an N-row sweep from
/// N generate-and-simulate passes into one generation plus one pass, the
/// batched fast path used by the experiment sweeps.
pub fn run_many(
    predictors: &mut [Box<dyn BranchPredictor>],
    records: &[BranchRecord],
    novel_policy: NovelPolicy,
) -> Vec<RunResult> {
    let start = Instant::now();
    let mut results = vec![RunResult::default(); predictors.len()];
    for record in records {
        if record.kind == BranchKind::Conditional {
            let outcome = Outcome::from(record.taken);
            for (predictor, result) in predictors.iter_mut().zip(results.iter_mut()) {
                let prediction = predictor.predict(record.pc);
                result.conditional += 1;
                if prediction.novel {
                    result.novel += 1;
                }
                let counted = !(prediction.novel && novel_policy == NovelPolicy::Exclude);
                if counted && prediction.outcome != outcome {
                    result.mispredicted += 1;
                }
                predictor.update(record.pc, outcome);
            }
        } else {
            for predictor in predictors.iter_mut() {
                predictor.record_unconditional(record.pc);
            }
        }
    }
    timing::record_dyn(
        records.len() as u64 * predictors.len() as u64,
        start.elapsed(),
    );
    results
}

/// Simulate retirement-time training: every prediction is made with
/// tables and history that lag the youngest `delay` branches (they are
/// still in flight). Records are replayed through the predictor in order,
/// `delay` records behind the prediction point.
///
/// This is the pessimistic no-speculative-history design point: a real
/// wide machine would checkpoint and speculatively update the history
/// register at fetch. The gap this function exposes against
/// [`run_with`] (delay 0) is the motivation for that hardware — see the
/// `ext-delay` experiment.
pub fn run_delayed(
    predictor: &mut dyn BranchPredictor,
    records: impl Iterator<Item = BranchRecord>,
    novel_policy: NovelPolicy,
    delay: usize,
) -> RunResult {
    use std::collections::VecDeque;
    let mut result = RunResult::default();
    let mut in_flight: VecDeque<BranchRecord> = VecDeque::with_capacity(delay + 1);
    for record in records {
        if record.kind == BranchKind::Conditional {
            result.conditional += 1;
            let prediction = predictor.predict(record.pc);
            let outcome = Outcome::from(record.taken);
            if prediction.novel {
                result.novel += 1;
            }
            let counted = !(prediction.novel && novel_policy == NovelPolicy::Exclude);
            if counted && prediction.outcome != outcome {
                result.mispredicted += 1;
            }
        }
        in_flight.push_back(record);
        if in_flight.len() > delay {
            retire(predictor, in_flight.pop_front().expect("nonempty queue"));
        }
    }
    // Drain the pipeline (no more predictions to account).
    while let Some(record) = in_flight.pop_front() {
        retire(predictor, record);
    }
    result
}

/// Run `predictor` and return the misprediction percentage of each
/// consecutive window of `window` conditional branches — the phase-level
/// view of prediction quality (context switches, working-set shifts and
/// cold starts all show up as spikes).
///
/// The final partial window is included when it holds at least one
/// branch. Novel references follow `novel_policy` exactly as in
/// [`run_with`]: under [`NovelPolicy::Exclude`] they stay in the window's
/// denominator but are never charged as mispredictions, so the mean of
/// equal-sized windows still reproduces the total-run percentage.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn run_windowed(
    predictor: &mut dyn BranchPredictor,
    records: impl Iterator<Item = BranchRecord>,
    window: u64,
    novel_policy: NovelPolicy,
) -> Vec<f64> {
    assert!(window > 0, "window must be nonzero");
    let mut windows = Vec::new();
    let mut in_window = 0u64;
    let mut wrong = 0u64;
    for record in records {
        if record.kind == BranchKind::Conditional {
            let prediction = predictor.predict(record.pc);
            let outcome = Outcome::from(record.taken);
            let counted = !(prediction.novel && novel_policy == NovelPolicy::Exclude);
            wrong += u64::from(counted && prediction.outcome != outcome);
            in_window += 1;
            predictor.update(record.pc, outcome);
            if in_window == window {
                windows.push(100.0 * wrong as f64 / window as f64);
                in_window = 0;
                wrong = 0;
            }
        } else {
            predictor.record_unconditional(record.pc);
        }
    }
    if in_window > 0 {
        windows.push(100.0 * wrong as f64 / in_window as f64);
    }
    windows
}

fn retire(predictor: &mut dyn BranchPredictor, record: BranchRecord) {
    if record.kind == BranchKind::Conditional {
        predictor.update(record.pc, Outcome::from(record.taken));
    } else {
        predictor.record_unconditional(record.pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_core::prelude::*;
    use bpred_trace::prelude::*;

    #[test]
    fn always_taken_scores_the_taken_ratio() {
        let records = vec![
            BranchRecord::conditional(0x100, true),
            BranchRecord::conditional(0x104, false),
            BranchRecord::conditional(0x108, false),
            BranchRecord::unconditional(0x10c),
        ];
        let mut p = AlwaysTaken::new();
        let r = run(&mut p, records.into_iter());
        assert_eq!(r.conditional, 3);
        assert_eq!(r.mispredicted, 2);
        assert!((r.mispredict_pct() - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn novel_exclusion_matches_paper_accounting() {
        // One branch, h=0: the first reference is novel; with Exclude it
        // must not be charged.
        let records = [
            BranchRecord::conditional(0x100, true),
            BranchRecord::conditional(0x100, true),
        ];
        let mut ideal = Ideal::new(0, CounterKind::TwoBit).unwrap();
        let r = run_with(&mut ideal, records.iter().copied(), NovelPolicy::Exclude);
        assert_eq!(r.novel, 1);
        assert_eq!(r.mispredicted, 0);

        let mut ideal = Ideal::new(0, CounterKind::TwoBit).unwrap();
        let r = run_with(&mut ideal, records.iter().copied(), NovelPolicy::Count);
        // Counted: the novel prediction (not-taken default) is wrong.
        assert_eq!(r.mispredicted, 1);
    }

    #[test]
    fn gshare_learns_the_workload_better_than_static() {
        let len = 40_000;
        let spec = IbsBenchmark::Nroff.spec();
        let mut gshare = Gshare::new(12, 4, CounterKind::TwoBit).unwrap();
        let g = run(&mut gshare, spec.build().take_conditionals(len));
        let mut taken = AlwaysTaken::new();
        let t = run(&mut taken, spec.build().take_conditionals(len));
        assert!(
            g.mispredict_pct() < t.mispredict_pct(),
            "gshare {} >= always-taken {}",
            g.mispredict_pct(),
            t.mispredict_pct()
        );
    }

    #[test]
    fn windowed_rates_average_to_the_total() {
        let spec = IbsBenchmark::Groff.spec();
        let len = 40_000u64;
        let window = 4_000u64;
        let mut p = Gshare::new(10, 6, CounterKind::TwoBit).unwrap();
        let windows = run_windowed(
            &mut p,
            spec.build().take_conditionals(len),
            window,
            NovelPolicy::Count,
        );
        assert_eq!(windows.len(), (len / window) as usize);
        let mut q = Gshare::new(10, 6, CounterKind::TwoBit).unwrap();
        let total = run(&mut q, spec.build().take_conditionals(len));
        let mean = windows.iter().sum::<f64>() / windows.len() as f64;
        assert!(
            (mean - total.mispredict_pct()).abs() < 1e-9,
            "windowed mean {mean} vs total {}",
            total.mispredict_pct()
        );
    }

    #[test]
    fn windowed_cold_start_is_visible() {
        let spec = IbsBenchmark::Gs.spec();
        let mut p = Gshare::new(12, 8, CounterKind::TwoBit).unwrap();
        let windows = run_windowed(
            &mut p,
            spec.build().take_conditionals(100_000),
            10_000,
            NovelPolicy::Count,
        );
        assert!(
            windows[0] > *windows.last().unwrap(),
            "first (cold) window {} should exceed the last {}",
            windows[0],
            windows.last().unwrap()
        );
    }

    #[test]
    fn windowed_matches_total_under_both_policies() {
        // The windowed view is the same accounting as `run_with`, sliced:
        // with equal-sized windows the mean window rate must reproduce the
        // total percentage under Count AND Exclude. The ideal predictor
        // flags first encounters novel, so Exclude actually diverges from
        // Count here and both paths are exercised.
        let len = 20_000u64;
        let window = 2_000u64;
        for policy in [NovelPolicy::Count, NovelPolicy::Exclude] {
            let mut windowed = Ideal::new(6, CounterKind::TwoBit).unwrap();
            let windows = run_windowed(
                &mut windowed,
                IbsBenchmark::Nroff.spec().build().take_conditionals(len),
                window,
                policy,
            );
            assert_eq!(windows.len(), (len / window) as usize);
            let mut total = Ideal::new(6, CounterKind::TwoBit).unwrap();
            let r = run_with(
                &mut total,
                IbsBenchmark::Nroff.spec().build().take_conditionals(len),
                policy,
            );
            let mean = windows.iter().sum::<f64>() / windows.len() as f64;
            assert!(
                (mean - r.mispredict_pct()).abs() < 1e-9,
                "{policy:?}: windowed mean {mean} vs total {}",
                r.mispredict_pct()
            );
        }
        // Sanity: the two policies disagree on this workload (novel
        // references exist), so the loop above covered distinct paths.
        let mut a = Ideal::new(6, CounterKind::TwoBit).unwrap();
        let count = run_with(
            &mut a,
            IbsBenchmark::Nroff.spec().build().take_conditionals(len),
            NovelPolicy::Count,
        );
        let mut b = Ideal::new(6, CounterKind::TwoBit).unwrap();
        let exclude = run_with(
            &mut b,
            IbsBenchmark::Nroff.spec().build().take_conditionals(len),
            NovelPolicy::Exclude,
        );
        assert!(exclude.mispredicted < count.mispredicted);
    }

    #[test]
    fn partial_final_window_counts() {
        let mut p = AlwaysTaken::new();
        let records = vec![
            BranchRecord::conditional(0x100, true),
            BranchRecord::conditional(0x104, false),
            BranchRecord::conditional(0x108, false),
        ];
        let windows = run_windowed(&mut p, records.into_iter(), 2, NovelPolicy::Count);
        assert_eq!(windows.len(), 2);
        assert!((windows[0] - 50.0).abs() < 1e-12);
        assert!((windows[1] - 100.0).abs() < 1e-12);
    }

    #[test]
    fn zero_delay_equals_plain_run() {
        let spec = IbsBenchmark::MpegPlay.spec();
        let mut a = Gshare::new(10, 6, CounterKind::TwoBit).unwrap();
        let plain = run(&mut a, spec.build().take_conditionals(20_000));
        let mut b = Gshare::new(10, 6, CounterKind::TwoBit).unwrap();
        let delayed = run_delayed(
            &mut b,
            spec.build().take_conditionals(20_000),
            NovelPolicy::Count,
            0,
        );
        assert_eq!(plain, delayed);
    }

    #[test]
    fn delay_hurts_history_predictors_more_than_bimodal() {
        let spec = IbsBenchmark::Groff.spec();
        let len = 60_000;
        let measure = |spec_str: &str, delay: usize| {
            let mut p = bpred_core::spec::parse_spec(spec_str).unwrap();
            run_delayed(
                &mut p,
                spec.build().take_conditionals(len),
                NovelPolicy::Count,
                delay,
            )
            .mispredict_pct()
        };
        let gshare_penalty = measure("gshare:n=12,h=8", 16) - measure("gshare:n=12,h=8", 0);
        let bimodal_penalty = measure("bimodal:n=12", 16) - measure("bimodal:n=12", 0);
        assert!(gshare_penalty > 0.2, "gshare penalty {gshare_penalty}");
        assert!(
            bimodal_penalty < gshare_penalty,
            "bimodal {bimodal_penalty} should suffer less than gshare {gshare_penalty}"
        );
    }

    #[test]
    fn empty_stream_is_zero() {
        let mut p = AlwaysTaken::new();
        let r = run(&mut p, std::iter::empty());
        assert_eq!(r, RunResult::default());
        assert_eq!(r.mispredict_pct(), 0.0);
    }

    #[test]
    fn warmup_excludes_cold_start() {
        let spec = IbsBenchmark::Verilog.spec();
        let mut cold = Gshare::new(10, 4, CounterKind::TwoBit).unwrap();
        let full = run(&mut cold, spec.build().take_conditionals(30_000));
        let mut warm = Gshare::new(10, 4, CounterKind::TwoBit).unwrap();
        let warmed = run_warm(
            &mut warm,
            spec.build().take_conditionals(30_000),
            NovelPolicy::Count,
            10_000,
        );
        assert_eq!(warmed.conditional, 20_000);
        assert!(
            warmed.mispredict_pct() < full.mispredict_pct(),
            "steady state {warmed:?} should beat whole-trace {full:?}"
        );
    }

    #[test]
    fn warmup_longer_than_trace_counts_nothing() {
        let mut p = AlwaysTaken::new();
        let r = run_warm(
            &mut p,
            IbsBenchmark::Verilog.spec().build().take_conditionals(100),
            NovelPolicy::Count,
            1_000,
        );
        assert_eq!(r, RunResult::default());
    }

    #[test]
    fn deterministic_across_runs() {
        let spec = IbsBenchmark::Groff.spec();
        let mut a = Gskew::standard(8, 4).unwrap();
        let ra = run(&mut a, spec.build().take_conditionals(20_000));
        let mut b = Gskew::standard(8, 4).unwrap();
        let rb = run(&mut b, spec.build().take_conditionals(20_000));
        assert_eq!(ra, rb);
    }
}
