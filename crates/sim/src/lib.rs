//! # bpred-sim — simulation engine and experiment harness
//!
//! Drives any [`bpred_core`] predictor over any [`bpred_trace`] workload
//! and regenerates every table and figure of the paper:
//!
//! * [`engine`] — the trace-driven predict/update loop and misprediction
//!   accounting (including the paper's exclusion of compulsory references
//!   for the unaliased predictor), plus warmup, windowed-phase and
//!   delayed-update modes.
//! * [`duel`] — lockstep two-predictor comparison with a McNemar paired
//!   significance test.
//! * [`experiments`] — the registry of reproducible experiments (`table1`,
//!   `table2`, `fig1` … `fig12`, ablations and extensions), each emitting
//!   renderable tables.
//! * [`report`] — aligned-text and CSV table rendering.
//! * [`kernel`] — monomorphized batch run loops for the tag-less table
//!   predictors, bit-identical to the `dyn` engine but walking
//!   structure-of-arrays trace columns.
//! * [`timing`] — process-wide records/sec counters for the kernel and
//!   `dyn` paths.
//! * [`runner`] — order-preserving parallel sweeps.
//! * [`resume`] — results-store integration: persist simulated cells and
//!   skip fingerprint-identical ones on reruns.
//! * [`campaign`] — named experiment sets and their portable artifacts.
//!
//! ```
//! use bpred_sim::engine;
//! use bpred_core::prelude::*;
//! use bpred_trace::prelude::*;
//!
//! let mut predictor = Gskew::standard(10, 6)?;
//! let trace = IbsBenchmark::Verilog.spec().build().take_conditionals(10_000);
//! let result = engine::run(&mut predictor, trace);
//! assert!(result.mispredict_pct() < 50.0);
//! # Ok::<(), bpred_core::error::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod duel;
pub mod engine;
pub mod experiments;
pub mod kernel;
pub mod report;
pub mod resume;
pub mod runner;
pub mod timing;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::duel::{duel, DuelResult};
    pub use crate::engine::{run, run_many, run_with, NovelPolicy, RunResult};
    pub use crate::experiments::{ExperimentOpts, ExperimentOutput, ALL_IDS};
    pub use crate::kernel::{run_specs, PredictorKernel};
    pub use crate::report::Table;
    pub use crate::runner::parallel_map;
    pub use crate::timing::EngineTiming;
}
