//! Monomorphized batch kernels: the devirtualized simulation fast path.
//!
//! The general engine drives `Box<dyn BranchPredictor>` objects — two
//! virtual calls per record per predictor — over an array-of-structs
//! trace. For the tag-less table predictors that dominate every sweep in
//! the paper (bimodal, gshare, gselect and the gskew family) nothing
//! about the predict/update pair actually needs dynamic dispatch: the
//! whole transition is a table index computation, a counter compare and
//! a saturating step. This module compiles that transition into one
//! tight loop per predictor shape, walking the structure-of-arrays
//! [`TraceColumns`] view instead of `BranchRecord` structs.
//!
//! The contract is **bit identity**: for every supported spec,
//! [`PredictorKernel::run`] produces exactly the [`RunResult`] that
//! [`engine::run_with`] produces for the predictor built from the same
//! spec — same index functions ([`IndexFunction::index`],
//! [`skew_index`]), same counter semantics, same history updates, and
//! the index is computed *once* per conditional record (legal because
//! the dyn path's `update` recomputes it under the unchanged
//! prediction-time history). Kernel predictors never flag a prediction
//! *novel*, so the result is also independent of the
//! [`NovelPolicy`]. The equivalence is pinned by a proptest suite
//! (`tests/kernel_equiv.rs`) and by the campaign regression gate.
//!
//! [`run_specs`] is the batching entry point used by the experiment
//! sweeps: it parses each spec ([`PredictorSpec::parse`]), routes the
//! supported ones through kernels running in parallel over one shared
//! column view, and falls back to a single batched
//! [`engine::run_many`] pass for everything else.

use crate::engine::{self, NovelPolicy, RunResult};
use crate::runner::parallel_map;
use crate::timing;
use bpred_aliasing::batch::{self, DmCounts, FaCounts, ThreeCCell};
use bpred_aliasing::three_c::ThreeCCounts;
use bpred_core::counter::CounterKind;
use bpred_core::error::ConfigError;
use bpred_core::gskew::UpdatePolicy;
use bpred_core::index::IndexFunction;
use bpred_core::skew::skew_index;
use bpred_core::spec::PredictorSpec;
use bpred_core::vector::InfoVector;
use bpred_trace::record::BranchRecord;
use bpred_trace::soa::TraceColumns;
use std::time::Instant;

/// One 2-bit saturating counter step (the [`CounterKind::TwoBit`]
/// transition of `bpred_core::counter`).
#[inline(always)]
fn step2(cell: u8, taken: bool) -> u8 {
    if taken {
        if cell < 3 {
            cell + 1
        } else {
            cell
        }
    } else {
        cell.saturating_sub(1)
    }
}

#[inline(always)]
fn hist_mask(bits: u32) -> u64 {
    if bits == 0 {
        0
    } else if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// A single-bank kernel: bimodal, gshare or gselect (2-bit counters).
#[derive(Debug, Clone)]
pub struct OneBankKernel {
    func: IndexFunction,
    n: u32,
    hist_bits: u32,
    hist_mask: u64,
    hist: u64,
    table: Vec<u8>,
}

impl OneBankKernel {
    fn new(func: IndexFunction, n: u32, hist_bits: u32) -> OneBankKernel {
        OneBankKernel {
            func,
            n,
            hist_bits,
            hist_mask: hist_mask(hist_bits),
            hist: 0,
            table: vec![CounterKind::TwoBit.weakly_taken(); 1usize << n],
        }
    }

    fn run(&mut self, cols: &TraceColumns) -> RunResult {
        // Dispatch once, outside the loop: each closure pins the variant,
        // so `IndexFunction::index` const-folds its match inside the
        // monomorphized copy of `drive`.
        match self.func {
            IndexFunction::Bimodal => self.drive(cols, |v, n| IndexFunction::Bimodal.index(v, n)),
            IndexFunction::Gshare => self.drive(cols, |v, n| IndexFunction::Gshare.index(v, n)),
            IndexFunction::Gselect => self.drive(cols, |v, n| IndexFunction::Gselect.index(v, n)),
        }
    }

    #[inline(always)]
    fn drive(&mut self, cols: &TraceColumns, index: impl Fn(&InfoVector, u32) -> u64) -> RunResult {
        let mut result = RunResult::default();
        let n = self.n;
        let hist_bits = self.hist_bits;
        let hmask = self.hist_mask;
        let mut hist = self.hist;
        let table = &mut self.table[..];
        let tmask = table.len() - 1;
        for (i, &pc) in cols.pcs().iter().enumerate() {
            if cols.is_conditional(i) {
                let taken = cols.taken(i);
                let v = InfoVector::new(pc, hist, hist_bits);
                // The extra mask is value-neutral (the index is already
                // `n` bits) but lets the compiler drop the bounds check.
                let idx = index(&v, n) as usize & tmask;
                let cell = table[idx];
                result.conditional += 1;
                result.mispredicted += u64::from((cell > 1) != taken);
                table[idx] = step2(cell, taken);
                hist = ((hist << 1) | u64::from(taken)) & hmask;
            } else {
                hist = ((hist << 1) | 1) & hmask;
            }
        }
        self.hist = hist;
        result
    }
}

/// A gskew-family kernel: 3 or 5 banks of 2-bit counters in one flat
/// array, partial or total update, plain / enhanced / identical-indexing
/// variants.
#[derive(Debug, Clone)]
pub struct GskewKernel {
    banks: usize,
    n: u32,
    hist_bits: u32,
    hist_mask: u64,
    hist: u64,
    partial: bool,
    enhanced: bool,
    identical: bool,
    tables: Vec<u8>,
}

impl GskewKernel {
    fn new(
        n: u32,
        hist_bits: u32,
        banks: usize,
        update: UpdatePolicy,
        enhanced: bool,
        skewing: bool,
    ) -> GskewKernel {
        GskewKernel {
            banks,
            n,
            hist_bits,
            hist_mask: hist_mask(hist_bits),
            hist: 0,
            partial: update == UpdatePolicy::Partial,
            enhanced,
            identical: !skewing,
            tables: vec![CounterKind::TwoBit.weakly_taken(); banks << n],
        }
    }

    fn run(&mut self, cols: &TraceColumns) -> RunResult {
        match self.banks {
            3 => self.drive::<3>(cols),
            5 => self.drive::<5>(cols),
            _ => unreachable!("from_spec admits 3 or 5 banks only"),
        }
    }

    #[inline(always)]
    fn drive<const B: usize>(&mut self, cols: &TraceColumns) -> RunResult {
        let mut result = RunResult::default();
        let n = self.n;
        let addr_mask = (1u64 << n) - 1;
        let bank_size = 1usize << n;
        let hist_bits = self.hist_bits;
        let hmask = self.hist_mask;
        let mut hist = self.hist;
        let partial = self.partial;
        let enhanced = self.enhanced;
        let identical = self.identical;
        let tables = &mut self.tables[..];
        for (i, &pc) in cols.pcs().iter().enumerate() {
            if cols.is_conditional(i) {
                let taken = cols.taken(i);
                let addr = pc >> 2;
                // InfoVector::packed for a pre-masked history.
                let packed = if hist_bits >= 64 {
                    hist
                } else {
                    (addr << hist_bits) | hist
                };
                let mut idx = [0usize; B];
                let mut vote = [false; B];
                let mut votes_taken = 0usize;
                for (b, (slot_idx, slot_vote)) in idx.iter_mut().zip(vote.iter_mut()).enumerate() {
                    let raw = if b == 0 && enhanced {
                        addr & addr_mask
                    } else if identical {
                        skew_index(0, packed, n)
                    } else {
                        skew_index(b, packed, n)
                    };
                    let at = b * bank_size + (raw as usize & (bank_size - 1));
                    let v = tables[at] > 1;
                    *slot_idx = at;
                    *slot_vote = v;
                    votes_taken += usize::from(v);
                }
                let overall = 2 * votes_taken > B;
                result.conditional += 1;
                result.mispredicted += u64::from(overall != taken);
                // Partial update spares dissenting banks only when the
                // overall prediction was correct (section 4.1).
                let train_all = !partial || overall != taken;
                for b in 0..B {
                    if train_all || vote[b] == taken {
                        tables[idx[b]] = step2(tables[idx[b]], taken);
                    }
                }
                hist = ((hist << 1) | u64::from(taken)) & hmask;
            } else {
                hist = ((hist << 1) | 1) & hmask;
            }
        }
        self.hist = hist;
        result
    }
}

/// A monomorphized run loop for one supported predictor shape.
///
/// Build one with [`PredictorKernel::from_spec`]; `None` means the spec
/// has no fast path and must go through the `dyn` engine.
#[derive(Debug, Clone)]
pub enum PredictorKernel {
    /// Bimodal / gshare / gselect.
    OneBank(OneBankKernel),
    /// The gskew family (plain, enhanced, identical-indexing ablation).
    Gskew(GskewKernel),
}

impl PredictorKernel {
    /// The kernel for `spec`, when one exists.
    ///
    /// Supported: `bimodal`, `gshare`, `gselect` and `gskew`/`egskew`
    /// (3 or 5 banks, partial or total update, `skew=off` included) with
    /// 2-bit counters and in-range parameters. Anything else — other
    /// families, other counter widths, out-of-range values — returns
    /// `None` so the caller falls back to [`PredictorSpec::build`] and
    /// the `dyn` engine (where invalid values produce their usual
    /// errors).
    pub fn from_spec(spec: &PredictorSpec) -> Option<PredictorKernel> {
        match *spec {
            PredictorSpec::Bimodal {
                n,
                ctr: CounterKind::TwoBit,
            } if (1..=30).contains(&n) => Some(PredictorKernel::OneBank(OneBankKernel::new(
                IndexFunction::Bimodal,
                n,
                0,
            ))),
            PredictorSpec::Gshare {
                n,
                h,
                ctr: CounterKind::TwoBit,
            } if (1..=30).contains(&n) && h <= 64 => Some(PredictorKernel::OneBank(
                OneBankKernel::new(IndexFunction::Gshare, n, h),
            )),
            PredictorSpec::Gselect {
                n,
                h,
                ctr: CounterKind::TwoBit,
            } if (1..=30).contains(&n) && h <= 64 => Some(PredictorKernel::OneBank(
                OneBankKernel::new(IndexFunction::Gselect, n, h),
            )),
            PredictorSpec::Gskew {
                n,
                h,
                banks,
                ctr: CounterKind::TwoBit,
                update,
                enhanced,
                skewing,
            } if (2..=30).contains(&n) && h <= 64 && (banks == 3 || banks == 5) => Some(
                PredictorKernel::Gskew(GskewKernel::new(n, h, banks, update, enhanced, skewing)),
            ),
            _ => None,
        }
    }

    /// Whether `spec` has a kernel fast path.
    pub fn supports(spec: &PredictorSpec) -> bool {
        PredictorKernel::from_spec(spec).is_some()
    }

    /// Drive the kernel over a whole column view, accounting every
    /// conditional record.
    ///
    /// Bit-identical to [`engine::run_with`] on the equivalent predictor
    /// under *either* [`NovelPolicy`] (kernel predictions are never
    /// novel). Time spent is credited to the kernel path of
    /// [`crate::timing`].
    pub fn run(&mut self, cols: &TraceColumns) -> RunResult {
        let start = Instant::now();
        let result = match self {
            PredictorKernel::OneBank(k) => k.run(cols),
            PredictorKernel::Gskew(k) => k.run(cols),
        };
        timing::record_kernel(cols.len() as u64, start.elapsed());
        result
    }
}

/// Run every spec over one trace, kernels first: supported specs execute
/// as monomorphized loops split across up to `threads` workers sharing
/// `columns`, the rest ride a single batched [`engine::run_many`] pass
/// over `records`. Results keep the order of `specs` and are
/// bit-identical to a pure `run_many` over the same list.
///
/// # Errors
///
/// Returns [`ConfigError`] for malformed specs and (via
/// [`PredictorSpec::build`] on the fallback rows) out-of-range values —
/// before any simulation runs.
pub fn run_specs(
    specs: &[String],
    records: &[BranchRecord],
    columns: &TraceColumns,
    policy: NovelPolicy,
    threads: usize,
) -> Result<Vec<RunResult>, ConfigError> {
    debug_assert_eq!(records.len(), columns.len());
    let parsed = specs
        .iter()
        .map(|s| PredictorSpec::parse(s))
        .collect::<Result<Vec<_>, _>>()?;
    let mut kernels: Vec<(usize, PredictorKernel)> = Vec::new();
    let mut dyn_rows: Vec<usize> = Vec::new();
    for (i, spec) in parsed.iter().enumerate() {
        match PredictorKernel::from_spec(spec) {
            Some(kernel) => kernels.push((i, kernel)),
            None => dyn_rows.push(i),
        }
    }
    // Build the fallback predictors up front so configuration errors
    // surface before any pass starts.
    let mut fallback = dyn_rows
        .iter()
        .map(|&i| parsed[i].build())
        .collect::<Result<Vec<_>, _>>()?;

    let mut results = vec![RunResult::default(); specs.len()];
    let kernel_results = parallel_map(kernels, threads, |(i, mut kernel)| (i, kernel.run(columns)));
    for (i, result) in kernel_results {
        results[i] = result;
    }
    if !fallback.is_empty() {
        for (&i, result) in dyn_rows
            .iter()
            .zip(engine::run_many(&mut fallback, records, policy))
        {
            results[i] = result;
        }
    }
    Ok(results)
}

/// Batched three-C classification of a whole `(size × index-fn ×
/// history)` grid in one logical pass over `columns`, fanned out across
/// up to `threads` workers: one [`batch::dm_pass`] unit per cell plus one
/// shared [`batch::fa_pass`] unit per distinct history length (the
/// fully-associative reference depends on history alone, and one
/// last-use-distance walk serves every capacity at once). Results keep
/// the order of `cells` and are bit-identical to running
/// `ThreeCClassifier` per cell over the same records.
///
/// Time spent in the units is credited to the kernel path of
/// [`crate::timing`].
pub fn run_three_c(
    cells: &[ThreeCCell],
    columns: &TraceColumns,
    threads: usize,
) -> Vec<ThreeCCounts> {
    let groups = batch::fa_groups(cells);
    let (dm, fa) = run_three_c_units(cells, &groups, columns, threads);
    let dm: Vec<DmCounts> = dm.into_iter().map(|(c, _)| c).collect();
    let fa: Vec<FaCounts> = fa.into_iter().map(|(c, _)| c).collect();
    batch::assemble(cells, &groups, &dm, &fa)
}

/// A work unit's result paired with the unit's own elapsed
/// milliseconds (for per-cell accounting in the results store).
pub type Timed<T> = (T, f64);

/// The work units behind [`run_three_c`], exposed separately so the
/// resume layer can run *only* the units whose results are not already
/// stored: direct-mapped units for `dm_cells` and one fully-associative
/// unit per `(history, capacities)` group. Each result carries the unit's
/// own elapsed milliseconds (for per-cell accounting in the results
/// store). All units share one `parallel_map` fan-out, so a mixed batch
/// keeps every worker busy.
pub fn run_three_c_units(
    dm_cells: &[ThreeCCell],
    fa_groups: &[(u32, Vec<u64>)],
    columns: &TraceColumns,
    threads: usize,
) -> (Vec<Timed<DmCounts>>, Vec<Timed<FaCounts>>) {
    enum Unit {
        Dm(usize),
        Fa(usize),
    }
    let units: Vec<Unit> = (0..dm_cells.len())
        .map(Unit::Dm)
        .chain((0..fa_groups.len()).map(Unit::Fa))
        .collect();
    enum Done {
        Dm(usize, DmCounts, f64),
        Fa(usize, FaCounts, f64),
    }
    let results = parallel_map(units, threads, |unit| {
        let start = Instant::now();
        let done = match unit {
            Unit::Dm(i) => {
                let cell = &dm_cells[i];
                let counts =
                    batch::dm_pass(columns, cell.entries_log2, cell.history_bits, cell.func);
                Done::Dm(i, counts, ms_since(start))
            }
            Unit::Fa(g) => {
                let (history_bits, caps) = &fa_groups[g];
                let counts = batch::fa_pass(columns, *history_bits, caps);
                Done::Fa(g, counts, ms_since(start))
            }
        };
        timing::record_kernel(columns.len() as u64, start.elapsed());
        done
    });
    let mut dm: Vec<(DmCounts, f64)> = vec![(DmCounts::default(), 0.0); dm_cells.len()];
    let mut fa: Vec<(FaCounts, f64)> = vec![(FaCounts::default(), 0.0); fa_groups.len()];
    for done in results {
        match done {
            Done::Dm(i, counts, ms) => dm[i] = (counts, ms),
            Done::Fa(g, counts, ms) => fa[g] = (counts, ms),
        }
    }
    (dm, fa)
}

#[inline]
fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_core::spec::parse_spec;
    use bpred_trace::cache;
    use bpred_trace::workload::IbsBenchmark;

    fn equivalent(spec: &str, bench: IbsBenchmark, len: u64) {
        let records = cache::materialize(bench, len);
        let cols = TraceColumns::from_records(&records);
        let mut kernel =
            PredictorKernel::from_spec(&PredictorSpec::parse(spec).unwrap()).expect("supported");
        let fast = kernel.run(&cols);
        let mut dyn_p = parse_spec(spec).unwrap();
        let slow = engine::run_with(&mut dyn_p, records.iter().copied(), NovelPolicy::Count);
        assert_eq!(fast, slow, "{spec} diverges from the dyn path");
    }

    #[test]
    fn kernels_match_the_dyn_engine() {
        for spec in [
            "bimodal:n=8",
            "gshare:n=10,h=4",
            "gshare:n=8,h=12", // folded long history
            "gshare:n=10,h=0",
            "gselect:n=10,h=4",
            "gselect:n=6,h=10", // degenerate history-only indexing
            "gskew:n=8,h=4",
            "gskew:n=8,h=4,update=total",
            "gskew:n=8,h=4,banks=5",
            "gskew:n=8,h=4,skew=off",
            "egskew:n=8,h=6",
        ] {
            equivalent(spec, IbsBenchmark::Groff, 6_000);
        }
    }

    #[test]
    fn unsupported_specs_have_no_kernel() {
        for spec in [
            "mcfarling:n=10,h=8",
            "ideal:h=4",
            "gshare:n=10,h=4,ctr=1", // 1-bit counters: dyn only
            "gshare:n=10,h=4,ctr=3",
            "gshare:n=0",  // out of range: dyn path reports the error
            "gshare:n=31", // out of range: dyn path reports the error
            "gskew:n=1,h=4",
            "always-taken",
            "2bcgskew:n=8,h=8",
        ] {
            let parsed = PredictorSpec::parse(spec).unwrap();
            assert!(
                PredictorKernel::from_spec(&parsed).is_none(),
                "{spec} should not have a fast path"
            );
        }
    }

    #[test]
    fn run_specs_mixes_kernel_and_dyn_rows_in_order() {
        let bench = IbsBenchmark::Verilog;
        let len = 5_000;
        let records = cache::materialize(bench, len);
        let cols = TraceColumns::from_records(&records);
        let specs: Vec<String> = [
            "gshare:n=9,h=4",    // kernel
            "mcfarling:n=9,h=6", // dyn fallback
            "gskew:n=8,h=4",     // kernel
            "ideal:h=4",         // dyn fallback
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let routed = run_specs(&specs, &records, &cols, NovelPolicy::Count, 2).unwrap();
        let mut predictors: Vec<_> = specs.iter().map(|s| parse_spec(s).unwrap()).collect();
        let reference = engine::run_many(&mut predictors, &records, NovelPolicy::Count);
        assert_eq!(routed, reference);
    }

    #[test]
    fn run_specs_surfaces_config_errors() {
        let records = cache::materialize(IbsBenchmark::Verilog, 100);
        let cols = TraceColumns::from_records(&records);
        let bad = vec!["gshare:n=0".to_string()];
        assert!(run_specs(&bad, &records, &cols, NovelPolicy::Count, 1).is_err());
        let unknown = vec!["tage:n=12".to_string()];
        assert!(run_specs(&unknown, &records, &cols, NovelPolicy::Count, 1).is_err());
    }

    #[test]
    fn run_three_c_matches_the_classifier_under_any_thread_count() {
        use bpred_aliasing::three_c::ThreeCClassifier;
        let records = cache::materialize(IbsBenchmark::Groff, 8_000);
        let cols = TraceColumns::from_records(&records);
        let cells: Vec<ThreeCCell> = [
            (6u32, 4u32, IndexFunction::Gshare),
            (6, 4, IndexFunction::Gselect),
            (8, 4, IndexFunction::Gshare),
            (8, 12, IndexFunction::Gselect),
            (10, 0, IndexFunction::Bimodal),
        ]
        .iter()
        .map(|&(n, h, func)| ThreeCCell {
            entries_log2: n,
            history_bits: h,
            func,
        })
        .collect();
        let sequential = run_three_c(&cells, &cols, 1);
        let parallel = run_three_c(&cells, &cols, 4);
        assert_eq!(sequential, parallel, "thread count must not matter");
        for (cell, counts) in cells.iter().zip(&sequential) {
            let reference = ThreeCClassifier::new(cell.entries_log2, cell.history_bits, cell.func)
                .run_counts(records.iter().copied());
            assert_eq!(*counts, reference, "{cell:?}");
        }
    }

    #[test]
    fn novel_policy_is_irrelevant_on_the_fast_path() {
        let records = cache::materialize(IbsBenchmark::Gs, 4_000);
        let cols = TraceColumns::from_records(&records);
        let specs = vec!["gskew:n=8,h=6".to_string()];
        let count = run_specs(&specs, &records, &cols, NovelPolicy::Count, 1).unwrap();
        let exclude = run_specs(&specs, &records, &cols, NovelPolicy::Exclude, 1).unwrap();
        assert_eq!(count, exclude);
        assert_eq!(count[0].novel, 0);
    }
}
