//! Calibration probe: prints the Table 2 / Figure 1 shape quantities for
//! each synthetic workload so the behaviour mixes can be tuned.
use bpred_aliasing::cursor::PairCursor;
use bpred_aliasing::fully_assoc::TaggedFullyAssociative;
use bpred_aliasing::substream::SubstreamStats;
use bpred_aliasing::tagged::TaggedDirectMapped;
use bpred_core::counter::CounterKind;
use bpred_core::ideal::Ideal;
use bpred_core::index::IndexFunction;
use bpred_core::predictor::{BranchPredictor, Outcome};
use bpred_trace::record::BranchKind;
use bpred_trace::stream::TraceSourceExt;
use bpred_trace::workload::IbsBenchmark;

fn main() {
    let len: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    println!("len={len} conditionals");
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} {:>6} | {:>7} {:>7} {:>7}",
        "bench",
        "ss4",
        "ideal4",
        "ss12",
        "ideal12",
        "fa1k",
        "fa4k",
        "fa16k",
        "fa64k",
        "dm4k",
        "dm16k",
        "static"
    );
    for b in IbsBenchmark::all() {
        let mut ss4 = SubstreamStats::new(4);
        let mut ss12 = SubstreamStats::new(12);
        let mut id4 = Ideal::new(4, CounterKind::TwoBit).unwrap();
        let mut id12 = Ideal::new(12, CounterKind::TwoBit).unwrap();
        let mut cur = PairCursor::new(4);
        let mut fa: Vec<TaggedFullyAssociative> = [1 << 10, 1 << 12, 1 << 14, 1 << 16]
            .iter()
            .map(|&c| TaggedFullyAssociative::new(c))
            .collect();
        let mut dm4k = TaggedDirectMapped::new(12, IndexFunction::Gshare);
        let mut dm16k = TaggedDirectMapped::new(14, IndexFunction::Gshare);
        let (mut n, mut m4, mut m12) = (0u64, 0u64, 0u64);
        let mut statics = std::collections::HashSet::new();
        for r in b.spec().build().take_conditionals(len) {
            if r.kind == BranchKind::Conditional {
                n += 1;
                statics.insert(r.pc);
                let o = Outcome::from(r.taken);
                let p = id4.predict(r.pc);
                if !p.novel && p.outcome != o {
                    m4 += 1;
                }
                id4.update(r.pc, o);
                let p = id12.predict(r.pc);
                if !p.novel && p.outcome != o {
                    m12 += 1;
                }
                id12.update(r.pc, o);
                let v = cur.vector(r.pc);
                for f in fa.iter_mut() {
                    f.access(v.pair());
                }
                dm4k.access(&v);
                dm16k.access(&v);
            } else {
                id4.record_unconditional(r.pc);
                id12.record_unconditional(r.pc);
            }
            ss4.observe(&r);
            ss12.observe(&r);
            cur.advance(&r);
        }
        let nf = n as f64;
        println!("{:<10} {:>6.2} {:>6.2} {:>6.2} {:>6.2} | {:>6.2} {:>6.2} {:>6.2} {:>6.2} | {:>7.2} {:>7.2} {:>7}",
            b.name(), ss4.substream_ratio(), 100.0*m4 as f64/nf, ss12.substream_ratio(), 100.0*m12 as f64/nf,
            100.0*fa[0].miss_ratio(), 100.0*fa[1].miss_ratio(), 100.0*fa[2].miss_ratio(), 100.0*fa[3].miss_ratio(),
            100.0*dm4k.miss_ratio(), 100.0*dm16k.miss_ratio(), statics.len());
    }
}
