//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so this crate vendors the *minimal* subset of the `rand`
//! 0.8 API the workspace actually uses: the [`rngs::SmallRng`] generator
//! (xoshiro256++ seeded via SplitMix64, exactly as rand 0.8 does on
//! 64-bit targets), the [`Rng`] extension trait (`gen`, `gen_bool`,
//! `gen_range` over integer and float ranges) and [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`).
//!
//! **Stream compatibility matters here.** The synthetic workloads in
//! `bpred-trace` are generated from seeded streams, and the experiment
//! tables and qualitative paper-claim tests were calibrated against the
//! streams upstream `rand` 0.8.5 produces. So this crate reproduces not
//! just the core generator but upstream's *sampling algorithms*
//! bit-for-bit on the call surface the workspace uses:
//!
//! - `gen_bool(p)`: Bernoulli via a 64-bit fixed-point threshold
//!   (`p_int = (p * 2^64) as u64`, draw `< p_int`).
//! - integer `gen_range`: Lemire's widening-multiply method with the
//!   power-of-two "zone" rejection upstream uses for 32/64-bit types and
//!   the exact-modulus zone for 8/16-bit types (which sample through a
//!   `u32`).
//! - float `gen_range`: the exponent-trick mapping of the top fraction
//!   bits into `[1, 2)`, scaled into the target range, with upstream's
//!   half-open/inclusive variants.
//! - `next_u32` takes the *high* half of `next_u64`, as `rand_xoshiro`
//!   does for the 64-bit xoshiro generators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits: the low half of
    /// [`RngCore::next_u64`], matching `rand_core`'s
    /// `next_u32_via_u64` helper which the 64-bit xoshiro generators
    /// with strong low bits (the `++`/`**` scramblers) use.
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct by expanding a `u64` through SplitMix64 (the upstream
    /// convention: a convenient, well-mixed short seed).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the standard seed expander (public domain, Vigna).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Values samplable uniformly from the type's whole domain (the
/// `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

// Upstream draws 8/16/32-bit integers from a single u32 and 64-bit ones
// from a single u64.
macro_rules! impl_standard_from_u32 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
impl_standard_from_u32!(u8, u16, u32, i8, i16, i32);

macro_rules! impl_standard_from_u64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_from_u64!(u64, i64, usize, isize);

impl Standard for u128 {
    /// Low word first, as upstream composes 128-bit values.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let lo = u128::from(rng.next_u64());
        let hi = u128::from(rng.next_u64());
        (hi << 64) | lo
    }
}

impl Standard for bool {
    /// The most significant bit of a `u32` draw (upstream's choice).
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & (1 << 31) != 0
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision, from a `u32` draw.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over half-open and inclusive ranges,
/// reproducing upstream's `sample_single` / `sample_single_inclusive`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`. `lo < hi` must hold.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. `lo <= hi` must hold.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

// 8- and 16-bit integers: upstream samples them through a u32 draw and
// uses an exact-modulus rejection zone.
macro_rules! impl_sample_uniform_small_int {
    ($($t:ty => $unsigned:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                Self::sample_range_inclusive(rng, lo, hi - 1)
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                assert!(lo <= hi, "gen_range called with an empty range");
                let range = (hi as $unsigned)
                    .wrapping_sub(lo as $unsigned)
                    .wrapping_add(1) as u32;
                if range == 0 {
                    // Full type domain.
                    return <$t as Standard>::sample(rng);
                }
                let ints_to_reject = (u32::MAX - range + 1) % range;
                let zone = u32::MAX - ints_to_reject;
                loop {
                    let v = rng.next_u32();
                    let product = u64::from(v) * u64::from(range);
                    let hi_word = (product >> 32) as u32;
                    let lo_word = product as u32;
                    if lo_word <= zone {
                        return (lo as $unsigned).wrapping_add(hi_word as $unsigned) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_small_int!(u8 => u8, i8 => u8, u16 => u16, i16 => u16);

// 32/64-bit and pointer-size integers: width-native draws with the
// conservative power-of-two zone.
macro_rules! impl_sample_uniform_large_int {
    ($($t:ty => $unsigned:ty, $wide:ty, $draw:ident),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                Self::sample_range_inclusive(rng, lo, hi - 1)
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                assert!(lo <= hi, "gen_range called with an empty range");
                let range = (hi as $unsigned)
                    .wrapping_sub(lo as $unsigned)
                    .wrapping_add(1);
                if range == 0 {
                    // Full type domain.
                    return <$t as Standard>::sample(rng);
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$draw() as $unsigned;
                    let product = (v as $wide) * (range as $wide);
                    let hi_word = (product >> <$unsigned>::BITS) as $unsigned;
                    let lo_word = product as $unsigned;
                    if lo_word <= zone {
                        return (lo as $unsigned).wrapping_add(hi_word) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_large_int!(
    u32 => u32, u64, next_u32,
    i32 => u32, u64, next_u32,
    u64 => u64, u128, next_u64,
    i64 => u64, u128, next_u64,
    usize => usize, u128, next_u64,
    isize => usize, u128, next_u64
);

// Floats: upstream's exponent trick. The top fraction bits of a draw are
// reinterpreted as a float in [1, 2); subtracting 1 gives [0, 1) which is
// scaled into the target range. The half-open variant rejects results
// that round up to `hi`; the inclusive variant stretches the scale so the
// maximum fraction lands exactly on `hi`.
macro_rules! impl_sample_uniform_float {
    ($($t:ty => $bits:ty, $draw:ident, $fraction_bits:expr, $exponent_one:expr),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let scale = hi - lo;
                loop {
                    let fraction =
                        rng.$draw() >> (<$bits>::BITS - $fraction_bits);
                    let value1_2 = <$t>::from_bits($exponent_one | fraction);
                    let res = (value1_2 - 1.0) * scale + lo;
                    if res < hi {
                        return res;
                    }
                }
            }
            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                assert!(lo <= hi, "gen_range called with an empty range");
                let max_rand = <$t>::from_bits(
                    $exponent_one | (<$bits>::MAX >> (<$bits>::BITS - $fraction_bits)),
                ) - 1.0;
                let scale = (hi - lo) / max_rand;
                loop {
                    let fraction =
                        rng.$draw() >> (<$bits>::BITS - $fraction_bits);
                    let value1_2 = <$t>::from_bits($exponent_one | fraction);
                    let res = (value1_2 - 1.0) * scale + lo;
                    if res <= hi {
                        return res;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_float!(
    f64 => u64, next_u64, 52, 1023u64 << 52,
    f32 => u32, next_u32, 23, 127u32 << 23
);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range_inclusive(rng, lo, hi)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value drawn from the type's standard uniform distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`, via upstream's Bernoulli: a 64-bit
    /// fixed-point threshold compared against one `u64` draw.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool needs p in [0, 1], got {p}"
        );
        if p == 1.0 {
            return true;
        }
        // SCALE = 2^64 exactly.
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }

    /// A value drawn uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_u32_is_low_half() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        assert_eq!(a.next_u32(), b.next_u64() as u32);
    }

    #[test]
    fn gen_bool_extremes_and_rates() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..=3_400).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn gen_bool_one_consumes_no_draw() {
        // Upstream's Bernoulli short-circuits p == 1.0 only at the
        // comparison level (p_int = MAX means every draw passes), but the
        // observable property that matters is the rate; the p == 1.0 arm
        // here intentionally skips the draw, which no workspace stream
        // crosses (no generator calls gen_bool(1.0) mid-stream).
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2..=6u8);
            assert!((2..=6).contains(&w));
            let s = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&s));
            let z = rng.gen_range(10..200usize);
            assert!((10..200).contains(&z));
        }
        // Every value of a small range shows up.
        let seen: std::collections::HashSet<u8> =
            (0..1_000).map(|_| rng.gen_range(0..4u8)).collect();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn gen_range_int_is_unbiased_enough() {
        // The widening-multiply + zone method must not visibly skew a
        // non-power-of-two range.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0..3u32) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..=11_000).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            let w: f64 = rng.gen_range(0.995..=0.9998);
            assert!((0.995..=0.9998).contains(&w));
            let u: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn full_domain_u64_range() {
        // A range spanning most of u64 must not overflow the sampler, and
        // the true full-domain inclusive range must take the bypass.
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..100 {
            let v = rng.gen_range(1..u64::MAX);
            assert!(v >= 1);
            let _ = rng.gen_range(0..=u64::MAX);
        }
    }

    #[test]
    fn splitmix_reference() {
        // First outputs of SplitMix64 from state 0, per the published
        // reference implementation.
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut state), 0x6E78_9E6A_A1B9_65F4);
    }
}
