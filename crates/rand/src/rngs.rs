//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG: xoshiro256++ (Blackman/Vigna,
/// public domain reference implementation), the same algorithm family
/// upstream `rand` 0.8 uses for `SmallRng` on 64-bit platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // xoshiro must not start from the all-zero state; rand_xoshiro
        // rescues it by re-seeding through SplitMix64(0), which this must
        // match for stream compatibility.
        if seed.iter().all(|&b| b == 0) {
            return Self::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        SmallRng { s }
    }
}

/// The "standard" RNG, aliased to [`SmallRng`]: this workspace only needs
/// reproducible simulation streams, not cryptographic quality.
pub type StdRng = SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the all-ones state, computed
        // from the published reference implementation.
        let mut rng = SmallRng::from_seed({
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                chunk.copy_from_slice(&1u64.to_le_bytes());
            }
            seed
        });
        // result = rotl(s0 + s3, 23) + s0 = rotl(2, 23) + 1
        assert_eq!(rng.next_u64(), 16_777_217);
        // after one state update the state is [1, 1, 131072, 0]:
        // result = rotl(1, 23) + 1
        assert_eq!(rng.next_u64(), 8_388_609);
    }

    #[test]
    fn zero_seed_is_rescued_via_splitmix() {
        let mut rescued = SmallRng::from_seed([0u8; 32]);
        let mut reference = SmallRng::seed_from_u64(0);
        let first = rescued.next_u64();
        assert_ne!(first, 0);
        assert_eq!(first, reference.next_u64());
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SmallRng::seed_from_u64(11);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
