//! # bpred-model — the paper's analytical model of skewed prediction
//!
//! Section 5.2 of the paper explains *why* skewing works: in a 1-bank
//! table the probability that aliasing corrupts a prediction grows
//! *linearly* with the per-bank aliasing probability `p`, while in an
//! M-bank skewed organization it grows as an *M-th degree polynomial* —
//! and `p ∈ [0, 1]`, so polynomial beats linear precisely where `p` is
//! small (short last-use distances, i.e. conflict aliasing).
//!
//! * [`prob`] — formulas (1) and (2): the aliasing probability as a
//!   function of last-use distance `D` and table size `N`.
//! * [`skew`] — formulas (3) and (4): the probability that the skewed /
//!   direct-mapped prediction differs from the unaliased prediction, plus
//!   the general M-bank polynomial and the `D ≈ N/10` crossover.
//! * [`curves`] — the data series of figures 9 and 10.
//! * [`extrapolate`] — the figure 11 pipeline: measure `D` per dynamic
//!   reference, apply the formulas, add the unaliased base rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curves;
pub mod extrapolate;
pub mod prob;
pub mod skew;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::curves::{destructive_aliasing_curve, CurvePoint};
    pub use crate::extrapolate::{Extrapolation, Extrapolator};
    pub use crate::prob::{aliasing_probability, aliasing_probability_approx};
    pub use crate::skew::{crossover_distance, p_dm, p_sk, p_sk_m};
}
