//! The figure 11 pipeline: extrapolate the gskew misprediction rate from
//! measured last-use distances and compare against simulation.
//!
//! The paper's procedure (section 5.2):
//!
//! 1. measure the bias `b` over the whole trace (density of static
//!    `(address, history)` pairs biased taken);
//! 2. re-walk the trace, measuring the last-use distance `D` of every
//!    dynamic reference, convert it to a per-bank aliasing probability
//!    with formula (1) (`p = 1` for first encounters), and average
//!    formula (3);
//! 3. add the unaliased misprediction rate of the 1-bit ideal predictor
//!    (Table 2) — compulsory encounters only contribute through the
//!    overhead term.
//!
//! The model assumes 1-bit automatons and *total* update, and is expected
//! to slightly **over**-estimate the simulated rate because constructive
//! aliasing is not modeled.

use bpred_aliasing::bias::BiasStats;
use bpred_aliasing::cursor::PairCursor;
use bpred_aliasing::distance::LastUseDistance;
use bpred_core::counter::CounterKind;
use bpred_core::ideal::Ideal;
use bpred_core::predictor::{BranchPredictor, Outcome};
use bpred_trace::record::{BranchKind, BranchRecord};

use crate::prob::aliasing_probability;
use crate::skew::p_sk;

/// The result of an extrapolation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Extrapolation {
    /// Measured bias `b` (static pairs biased taken).
    pub bias: f64,
    /// Unaliased 1-bit misprediction rate (compulsory excluded).
    pub unaliased_rate: f64,
    /// Average of formula (3) over all dynamic references.
    pub aliasing_overhead: f64,
    /// `unaliased_rate + aliasing_overhead` — the figure 11 estimate.
    pub extrapolated_rate: f64,
    /// Dynamic conditional branches processed.
    pub references: u64,
}

/// Configured extrapolator for one gskew geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extrapolator {
    /// Entries per bank of the modeled 3-bank skewed predictor.
    pub bank_entries: u64,
    /// Global history length in bits.
    pub history_bits: u32,
}

impl Extrapolator {
    /// Run the two-pass pipeline. `pass1` and `pass2` must yield the same
    /// record stream (re-build the workload for each).
    ///
    /// # Panics
    ///
    /// Panics if `bank_entries` is zero.
    pub fn run(
        &self,
        pass1: impl Iterator<Item = BranchRecord>,
        pass2: impl Iterator<Item = BranchRecord>,
    ) -> Extrapolation {
        assert!(self.bank_entries > 0, "bank size must be nonzero");

        // Pass 1: bias over the entire trace.
        let bias = BiasStats::new(self.history_bits).run(pass1);
        let b = bias.static_bias_taken();

        // Pass 2: last-use distances, overhead, and the unaliased 1-bit
        // base rate, in one walk.
        let mut cursor = PairCursor::new(self.history_bits);
        let mut distances = LastUseDistance::new();
        let mut ideal = Ideal::new(self.history_bits, CounterKind::OneBit)
            .expect("history length validated by caller");
        let mut overhead_sum = 0.0f64;
        let mut unaliased_misses = 0u64;
        let mut references = 0u64;

        for record in pass2 {
            if record.kind == BranchKind::Conditional {
                references += 1;
                let pair = cursor.pair(record.pc);
                let p = match distances.observe(pair) {
                    Some(d) => aliasing_probability(d, self.bank_entries),
                    // First encounter: the paper applies formula (3) with
                    // p = 1.
                    None => 1.0,
                };
                overhead_sum += p_sk(p, b);

                let prediction = ideal.predict(record.pc);
                let outcome = Outcome::from(record.taken);
                if !prediction.novel && prediction.outcome != outcome {
                    unaliased_misses += 1;
                }
                ideal.update(record.pc, outcome);
            } else {
                ideal.record_unconditional(record.pc);
            }
            cursor.advance(&record);
        }

        let refs_f = references.max(1) as f64;
        let unaliased_rate = unaliased_misses as f64 / refs_f;
        let aliasing_overhead = overhead_sum / refs_f;
        Extrapolation {
            bias: b,
            unaliased_rate,
            aliasing_overhead,
            extrapolated_rate: unaliased_rate + aliasing_overhead,
            references,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_trace::prelude::*;

    fn run(bank_entries: u64, len: u64) -> Extrapolation {
        let spec = IbsBenchmark::Verilog.spec();
        Extrapolator {
            bank_entries,
            history_bits: 4,
        }
        .run(
            spec.build().take_conditionals(len),
            spec.build().take_conditionals(len),
        )
    }

    #[test]
    fn produces_sane_rates() {
        let e = run(1024, 50_000);
        assert_eq!(e.references, 50_000);
        assert!((0.0..=1.0).contains(&e.bias));
        assert!(e.bias > 0.3, "most pairs lean taken-or-not plausibly");
        assert!(e.unaliased_rate > 0.0 && e.unaliased_rate < 0.3);
        assert!(e.aliasing_overhead >= 0.0);
        assert!((e.extrapolated_rate - e.unaliased_rate - e.aliasing_overhead).abs() < 1e-12);
    }

    #[test]
    fn bigger_banks_shrink_overhead() {
        let small = run(256, 50_000);
        let large = run(8192, 50_000);
        assert!(
            large.aliasing_overhead < small.aliasing_overhead,
            "{} !< {}",
            large.aliasing_overhead,
            small.aliasing_overhead
        );
        // The unaliased base rate does not depend on the bank size.
        assert!((large.unaliased_rate - small.unaliased_rate).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(1024, 20_000), run(1024, 20_000));
    }
}
