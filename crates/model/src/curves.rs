//! Data series for figures 9 and 10: destructive-aliasing probability of
//! the 1-bank and 3-bank organizations as a function of the per-bank
//! aliasing probability, at the worst-case bias `b = 1/2`.

use crate::skew::{p_dm, p_sk};

/// One point of the figure 9/10 curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Per-bank aliasing probability.
    pub p: f64,
    /// Direct-mapped destructive-aliasing probability (`p/2` at `b=1/2`).
    pub direct_mapped: f64,
    /// 3-bank skewed destructive-aliasing probability.
    pub skewed: f64,
}

/// Sample the curves over `p ∈ [0, p_max]` with `points` samples
/// (inclusive of both ends). Figure 9 uses `p_max = 1`; figure 10 zooms
/// into `p_max ≈ 0.2`.
///
/// # Panics
///
/// Panics if `points < 2` or `p_max` is not in `(0, 1]`.
pub fn destructive_aliasing_curve(p_max: f64, points: usize) -> Vec<CurvePoint> {
    assert!(points >= 2, "need at least the two endpoints");
    assert!(p_max > 0.0 && p_max <= 1.0, "p_max must be in (0, 1]");
    (0..points)
        .map(|i| {
            let p = p_max * i as f64 / (points - 1) as f64;
            CurvePoint {
                p,
                direct_mapped: p_dm(p, 0.5),
                skewed: p_sk(p, 0.5),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let c = destructive_aliasing_curve(1.0, 11);
        assert_eq!(c.len(), 11);
        assert_eq!(c[0].p, 0.0);
        assert_eq!(c[0].direct_mapped, 0.0);
        assert_eq!(c[0].skewed, 0.0);
        assert!((c[10].p - 1.0).abs() < 1e-12);
        // At p=1 (b=1/2): P_dm = 1/2, P_sk = 1/2.
        assert!((c[10].direct_mapped - 0.5).abs() < 1e-12);
        assert!((c[10].skewed - 0.5).abs() < 1e-12);
    }

    #[test]
    fn skewed_below_direct_in_zoom_region() {
        // Figure 10's message: for small p the skewed curve hugs zero.
        for point in destructive_aliasing_curve(0.2, 21).iter().skip(1) {
            assert!(
                point.skewed < point.direct_mapped,
                "p={}: {} >= {}",
                point.p,
                point.skewed,
                point.direct_mapped
            );
        }
    }

    #[test]
    #[should_panic(expected = "endpoints")]
    fn one_point_panics() {
        let _ = destructive_aliasing_curve(1.0, 1);
    }
}
