//! Formulas (1) and (2): the per-table aliasing probability.
//!
//! For a dynamic reference whose last-use distance is `D` (the number of
//! distinct `(address, history)` pairs encountered since its previous
//! occurrence), and a hashing function that spreads those `D` vectors
//! uniformly over `N` entries:
//!
//! ```text
//! p_N = 1 - (1 - 1/N)^D            (1)
//! p_N ≈ 1 - e^(-D/N)   for N >> 1  (2)
//! ```

/// Formula (1): exact aliasing probability for last-use distance `d` in an
/// `n`-entry table.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// ```
/// use bpred_model::prob::aliasing_probability;
///
/// assert_eq!(aliasing_probability(0, 1024), 0.0); // immediate reuse
/// assert!(aliasing_probability(1024, 1024) > 0.6);
/// ```
pub fn aliasing_probability(d: u64, n: u64) -> f64 {
    assert!(n > 0, "table size must be nonzero");
    // (1 - 1/N)^D via exp/ln for numerical stability at large D.
    let base = 1.0 - 1.0 / n as f64;
    if base == 0.0 {
        // N = 1: any nonzero distance guarantees aliasing.
        return if d == 0 { 0.0 } else { 1.0 };
    }
    1.0 - (d as f64 * base.ln()).exp()
}

/// Formula (2): the large-`N` exponential approximation `1 - e^(-D/N)`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn aliasing_probability_approx(d: u64, n: u64) -> f64 {
    assert!(n > 0, "table size must be nonzero");
    1.0 - (-(d as f64) / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values() {
        assert_eq!(aliasing_probability(0, 4096), 0.0);
        assert!(aliasing_probability(1, 1) == 1.0);
        assert!(aliasing_probability(u64::MAX / 2, 2) > 0.999);
    }

    #[test]
    fn monotone_in_distance() {
        let mut prev = -1.0;
        for d in [0u64, 1, 10, 100, 1_000, 10_000, 100_000] {
            let p = aliasing_probability(d, 4096);
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn monotone_decreasing_in_size() {
        let mut prev = 2.0;
        for n in [64u64, 256, 1_024, 4_096, 16_384] {
            let p = aliasing_probability(1_000, n);
            assert!(p < prev);
            prev = p;
        }
    }

    #[test]
    fn approximation_close_for_large_n() {
        for d in [10u64, 100, 1_000, 10_000] {
            for n in [1_024u64, 4_096, 65_536] {
                let exact = aliasing_probability(d, n);
                let approx = aliasing_probability_approx(d, n);
                assert!(
                    (exact - approx).abs() < 1e-3,
                    "d={d} n={n}: {exact} vs {approx}"
                );
            }
        }
    }

    #[test]
    fn known_value() {
        // D = N: p = 1 - (1-1/N)^N -> 1 - 1/e as N grows.
        let p = aliasing_probability(65_536, 65_536);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_table_panics() {
        let _ = aliasing_probability(1, 0);
    }
}
