//! Formulas (3) and (4): destructive-aliasing probability of the skewed
//! and direct-mapped organizations, and the crossover analysis.
//!
//! The model assumes 1-bit automatons, total update, and per-bank aliasing
//! events made independent by the distinct hashing functions. `b` is the
//! probability that a substream is biased taken.

/// Formula (4): probability that a 1-bank direct-mapped prediction differs
/// from the unaliased prediction, given per-table aliasing probability `p`
/// and bias `b`: `P_dm = 2 b (1-b) p`.
pub fn p_dm(p: f64, b: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p) && (0.0..=1.0).contains(&b));
    2.0 * b * (1.0 - b) * p
}

/// Formula (3): probability that a 3-bank skewed prediction differs from
/// the unaliased prediction.
///
/// The four cases of section 5.2: with 0 or 1 aliased banks the majority
/// matches the unaliased prediction; with 2 aliased banks both must flip
/// (`b(1-b)² + (1-b)b²`); with all 3 aliased at least two of three
/// independent substream values must oppose the unaliased direction.
pub fn p_sk(p: f64, b: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p) && (0.0..=1.0).contains(&b));
    let q = 1.0 - b;
    3.0 * p * p * (1.0 - p) * b * q
        + p.powi(3) * b * (3.0 * b * q * q + q.powi(3))
        + p.powi(3) * q * (3.0 * q * b * b + b.powi(3))
}

/// The general M-bank polynomial at the worst-case bias `b = 1/2`.
///
/// At `b = 1/2` an aliased bank shows a flipped prediction with
/// probability 1/2 independently, so each bank flips with probability
/// `r = p/2` and the overall prediction flips when a majority of the `m`
/// banks flip. For `m = 3` this reduces exactly to formula (3) at
/// `b = 1/2`; for `m = 1` it reduces to formula (4).
///
/// # Panics
///
/// Panics if `m` is even or zero.
pub fn p_sk_m(p: f64, m: u32) -> f64 {
    assert!(m % 2 == 1, "majority vote needs an odd bank count");
    let r = p / 2.0;
    let need = m / 2 + 1;
    (need..=m)
        .map(|k| binomial(m, k) * r.powi(k as i32) * (1.0 - r).powi((m - k) as i32))
        .sum()
}

/// The exact bias-aware M-bank generalization of formula (3).
///
/// Condition on the unaliased direction `d` (taken with probability `b`,
/// the bias density): a bank differs from `d` when it is aliased (prob
/// `p`) *and* the aliasing substream's automaton points the other way
/// (prob `1-b` when `d` is taken, `b` otherwise). The skewed prediction
/// flips when a majority of the `m` banks differ. For `m = 3` this equals
/// formula (3) term for term; for `m = 1` it reduces to formula (4).
///
/// # Panics
///
/// Panics if `m` is even or zero.
pub fn p_sk_general(p: f64, b: f64, m: u32) -> f64 {
    assert!(m % 2 == 1, "majority vote needs an odd bank count");
    debug_assert!((0.0..=1.0).contains(&p) && (0.0..=1.0).contains(&b));
    let need = m / 2 + 1;
    let flip_given = |differ: f64| -> f64 {
        (need..=m)
            .map(|k| binomial(m, k) * differ.powi(k as i32) * (1.0 - differ).powi((m - k) as i32))
            .sum::<f64>()
    };
    b * flip_given(p * (1.0 - b)) + (1.0 - b) * flip_given(p * b)
}

fn binomial(n: u32, k: u32) -> f64 {
    let k = k.min(n - k);
    let mut num = 1.0f64;
    let mut den = 1.0f64;
    for i in 0..k {
        num *= f64::from(n - i);
        den *= f64::from(i + 1);
    }
    num / den
}

/// Numerically locate the last-use distance `D*` at which a 3×(N/3)-entry
/// skewed predictor stops beating an N-entry direct-mapped table
/// (section 5.2: "approximately N/10").
///
/// Uses bias `b = 1/2` and formula (1) for the per-bank probabilities.
/// Returns the smallest `D` where `P_sk >= P_dm` (with both nonzero).
///
/// # Panics
///
/// Panics if `total_entries < 3`.
pub fn crossover_distance(total_entries: u64) -> u64 {
    assert!(total_entries >= 3, "need at least one entry per bank");
    let bank = total_entries / 3;
    let b = 0.5;
    let mut lo = 1u64;
    let mut hi = total_entries * 4;
    // The sign of (P_sk - P_dm) is monotone in D over the relevant range:
    // bisect on it.
    let diff = |d: u64| {
        let psk = p_sk(crate::prob::aliasing_probability(d, bank), b);
        let pdm = p_dm(crate::prob::aliasing_probability(d, total_entries), b);
        psk - pdm
    };
    if diff(lo) >= 0.0 {
        return lo;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if diff(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_bias_polynomials() {
        // At b = 1/2: P_sk = (3/4)p^2(1-p) + (1/2)p^3, P_dm = p/2.
        for p in [0.0, 0.05, 0.1, 0.3, 0.7, 1.0] {
            let expected_sk = 0.75 * p * p * (1.0 - p) + 0.5 * p * p * p;
            assert!((p_sk(p, 0.5) - expected_sk).abs() < 1e-12, "p={p}");
            assert!((p_dm(p, 0.5) - p / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn general_m_matches_special_cases() {
        for p in [0.0, 0.1, 0.4, 0.9, 1.0] {
            assert!((p_sk_m(p, 3) - p_sk(p, 0.5)).abs() < 1e-12, "m=3 p={p}");
            assert!((p_sk_m(p, 1) - p_dm(p, 0.5)).abs() < 1e-12, "m=1 p={p}");
        }
    }

    #[test]
    fn more_banks_flatten_the_low_p_region() {
        // At small p, higher-degree polynomials are smaller.
        let p = 0.1;
        assert!(p_sk_m(p, 5) < p_sk_m(p, 3));
        assert!(p_sk_m(p, 3) < p_sk_m(p, 1));
    }

    #[test]
    fn skewed_below_direct_at_equal_p() {
        // At the SAME per-bank aliasing probability the 3-bank majority is
        // always at least as good (they meet only at p = 1); the real
        // tradeoff appears because a 3x(N/3) organization has a higher
        // per-bank p than an N-entry table — that is what
        // `crossover_distance` captures.
        let b = 0.5;
        for p in [0.01, 0.05, 0.3, 0.7, 0.9, 0.99] {
            assert!(p_sk(p, b) < p_dm(p, b), "p={p}");
        }
        assert!((p_sk(1.0, b) - p_dm(1.0, b)).abs() < 1e-12);
    }

    #[test]
    fn extreme_bias_removes_destructive_aliasing() {
        // If every substream is biased the same way (b = 0 or 1), aliasing
        // is never destructive in the model.
        for p in [0.1, 0.5, 1.0] {
            assert_eq!(p_dm(p, 0.0), 0.0);
            assert_eq!(p_dm(p, 1.0), 0.0);
            assert!(p_sk(p, 0.0).abs() < 1e-12);
            assert!(p_sk(p, 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn crossover_near_n_over_10() {
        // The paper: "P_sk is lower than P_dm … when the last-use distance
        // D is less than approximately N/10".
        for total in [3_072u64, 12_288, 49_152, 196_608] {
            let d = crossover_distance(total);
            let ratio = d as f64 / total as f64;
            assert!(
                (0.05..0.2).contains(&ratio),
                "total={total}: crossover at D={d} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn general_formula_matches_paper_special_cases() {
        for p in [0.0, 0.05, 0.2, 0.5, 0.8, 1.0] {
            for b in [0.0, 0.3, 0.5, 0.72, 1.0] {
                assert!(
                    (p_sk_general(p, b, 3) - p_sk(p, b)).abs() < 1e-12,
                    "m=3 p={p} b={b}: {} vs {}",
                    p_sk_general(p, b, 3),
                    p_sk(p, b)
                );
                assert!(
                    (p_sk_general(p, b, 1) - p_dm(p, b)).abs() < 1e-12,
                    "m=1 p={p} b={b}"
                );
            }
        }
    }

    #[test]
    fn general_formula_five_banks_below_three_at_small_p() {
        for b in [0.3, 0.5, 0.7] {
            assert!(p_sk_general(0.1, b, 5) <= p_sk_general(0.1, b, 3) + 1e-15);
        }
    }

    #[test]
    fn binomial_sanity() {
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(3, 3), 1.0);
        assert_eq!(binomial(7, 0), 1.0);
    }
}
