//! Minimal hand-rolled argument parsing for `bpsim` (keeps the dependency
//! set to the workspace crates).

use std::collections::HashMap;

/// Parsed command line: positional arguments and `--key value` /
/// `--flag` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Option names that take a value; everything else starting with `--` is
/// a boolean flag.
const VALUED: &[&str] = &[
    "len",
    "threads",
    "bench",
    "pred",
    "out",
    "format",
    "file",
    "history",
    "windows",
    "seed",
    "tol",
    "results-dir",
    "budget",
    "min-speedup",
    "min-aliasing-speedup",
];

impl Args {
    /// Parse raw arguments (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a message when a valued option is missing its value.
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if VALUED.contains(&name) {
                    let value = iter
                        .next()
                        .ok_or_else(|| format!("option --{name} requires a value"))?;
                    args.options.insert(name.to_string(), value);
                } else {
                    args.flags.push(name.to_string());
                }
            } else {
                args.positional.push(arg);
            }
        }
        Ok(args)
    }

    /// Positional argument `i`, if present.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// String value of `--name`.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Parsed numeric value of `--name`. Accepts decimal or `0x`-prefixed
    /// hexadecimal (seeds read naturally either way).
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn option_u64(&self, name: &str) -> Result<Option<u64>, String> {
        match self.option(name) {
            None => Ok(None),
            Some(v) => {
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                parsed
                    .map(Some)
                    .map_err(|_| format!("--{name} expects an integer, got `{v}`"))
            }
        }
    }

    /// Parsed floating-point value of `--name`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn option_f64(&self, name: &str) -> Result<Option<f64>, String> {
        match self.option(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }

    /// Whether `--name` was given as a flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn positionals_and_options() {
        let a = parse("experiment fig5 --len 100000 --quick");
        assert_eq!(a.positional(0), Some("experiment"));
        assert_eq!(a.positional(1), Some("fig5"));
        assert_eq!(a.option_u64("len").unwrap(), Some(100_000));
        assert!(a.flag("quick"));
        assert!(!a.flag("csv"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = Args::parse(vec!["--len".to_string()]).unwrap_err();
        assert!(e.contains("--len"));
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse("run --len abc");
        assert!(a.option_u64("len").is_err());
    }

    #[test]
    fn valued_option_values_may_look_like_flags() {
        let a = parse("run --pred gskew:n=12,h=8");
        assert_eq!(a.option("pred"), Some("gskew:n=12,h=8"));
    }

    #[test]
    fn seeds_parse_in_decimal_and_hex() {
        let a = parse("run --seed 0x5EED0000");
        assert_eq!(a.option_u64("seed").unwrap(), Some(0x5EED_0000));
        let a = parse("run --seed 1234");
        assert_eq!(a.option_u64("seed").unwrap(), Some(1234));
        assert!(parse("run --seed 0xZZ").option_u64("seed").is_err());
    }

    #[test]
    fn tolerances_parse_as_floats() {
        let a = parse("campaign diff a b --tol 0.25");
        assert_eq!(a.option_f64("tol").unwrap(), Some(0.25));
        assert!(parse("x --tol wide").option_f64("tol").is_err());
    }
}
