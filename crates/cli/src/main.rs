//! `bpsim` binary: a thin wrapper around [`bpred_cli::cli_main`].

use std::process::ExitCode;

fn main() -> ExitCode {
    bpred_cli::cli_main()
}
