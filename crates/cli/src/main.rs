//! `bpsim` — command-line driver for the gskew reproduction.
//!
//! ```text
//! bpsim list                                  available experiments & workloads
//! bpsim experiment <id|all> [--len N] [--quick] [--csv] [--out DIR]
//! bpsim run --pred <spec> [--bench <name>] [--len N] [--windows N]
//! bpsim compare <spec> <spec> ... [--bench <name>] [--len N]
//! bpsim duel <specA> <specB> [--bench <name>] [--len N]
//! bpsim sweep --pred <spec-with-{h}> [--bench <name>] [--len N]
//! bpsim trace gen --bench <name> --len N --out FILE [--format bin|text|compact]
//! bpsim trace info --file FILE [--format bin|text|compact]
//! ```

mod args;

use args::Args;
use bpred_core::spec::parse_spec;
use bpred_sim::engine;
use bpred_sim::experiments::{self, ExperimentOpts};
use bpred_trace::cache as trace_cache;
use bpred_trace::io as trace_io;
use bpred_trace::io2 as trace_io2;
use bpred_trace::stats::TraceStats;
use bpred_trace::stream::TraceSourceExt;
use bpred_trace::workload::IbsBenchmark;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

const USAGE: &str = "\
bpsim — skewed branch predictor reproduction (Michaud/Seznec/Uhlig, ISCA'97)

USAGE:
  bpsim list
  bpsim experiment <id|all> [--len N] [--threads T] [--quick] [--csv] [--out DIR]
  bpsim run --pred <spec> [--bench <name>] [--len N] [--windows N]
  bpsim compare <spec> <spec> ... [--bench <name>] [--len N]
  bpsim duel <specA> <specB> [--bench <name>] [--len N]
  bpsim sweep --pred <spec with {h}> [--bench <name>] [--len N]
  bpsim trace gen --bench <name> --len N --out FILE [--format bin|text|compact]
  bpsim trace info --file FILE [--format bin|text|compact]

Global options:
  --no-trace-cache   regenerate workload streams on every use instead of
                     memoizing materialized traces (streaming memory profile)
  --verbose          print a trace-cache summary (hits/misses/resident bytes)
                     after the command

Predictor specs:
  gshare:n=14,h=12 | gselect:n=12,h=6 | bimodal:n=14
  gskew:n=12,h=8[,banks=5][,update=total][,skew=off] | egskew:n=12,h=11
  shgskew:n=12,h=8 (shared hysteresis)  | 2bcgskew:n=12,h=12 (EV8-style)
  agree:n=13,h=8,bias=12 | bimode:n=12,h=8,choice=12 | mcfarling:n=12,h=10
  pas:bht=10,l=8,n=12 | spas:bht=10,l=8,n=10 (per-address)
  ideal:h=12 | falru:cap=4096,h=4 | setassoc:n=10,ways=4,h=4
  always-taken | always-nottaken
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bpsim: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse(raw)?;
    if args.flag("no-trace-cache") {
        // Process-global and single-threaded here: `main` is the only
        // caller that may flip the cache switch.
        trace_cache::set_enabled(false);
    }
    let result = match args.positional(0) {
        None | Some("help") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("list") => cmd_list(),
        Some("experiment") => cmd_experiment(&args),
        Some("run") => cmd_run(&args),
        Some("compare") => cmd_compare(&args),
        Some("duel") => cmd_duel(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("trace") => cmd_trace(&args),
        Some(other) => Err(format!("unknown command `{other}`; try `bpsim help`")),
    };
    if result.is_ok() && args.flag("verbose") {
        print_cache_summary();
    }
    result
}

fn print_cache_summary() {
    if !trace_cache::is_enabled() {
        eprintln!("trace cache: disabled (--no-trace-cache); every stream regenerated");
        return;
    }
    let stats = trace_cache::stats();
    eprintln!(
        "trace cache: {} hits / {} misses ({:.0}% hit), {} evictions, \
         {} traces resident ({:.1} MiB)",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_ratio(),
        stats.evictions,
        stats.entries,
        stats.resident_bytes as f64 / (1 << 20) as f64,
    );
}

fn cmd_list() -> Result<(), String> {
    println!("experiments:");
    for id in experiments::ALL_IDS {
        println!("  {id}");
    }
    println!("\nworkloads (synthetic IBS):");
    for b in IbsBenchmark::all() {
        println!(
            "  {:<10} default len {:>8}  (paper: {} dynamic / {} static)",
            b.name(),
            b.default_len(),
            b.paper_dynamic_branches(),
            b.paper_static_branches()
        );
    }
    Ok(())
}

fn opts_from(args: &Args) -> Result<ExperimentOpts, String> {
    let mut opts = ExperimentOpts {
        len_override: args.option_u64("len")?,
        ..ExperimentOpts::default()
    };
    if let Some(threads) = args.option_u64("threads")? {
        opts.threads = threads.max(1) as usize;
    }
    opts.quick = args.flag("quick");
    Ok(opts)
}

fn cmd_experiment(args: &Args) -> Result<(), String> {
    let id = args
        .positional(1)
        .ok_or("experiment needs an id; try `bpsim list`")?;
    let opts = opts_from(args)?;
    let ids: Vec<&str> = if id == "all" {
        experiments::ALL_IDS.to_vec()
    } else {
        vec![id]
    };
    let out_dir = args.option("out").map(std::path::PathBuf::from);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    for id in ids {
        let output = experiments::run(id, &opts)
            .ok_or_else(|| format!("unknown experiment `{id}`; try `bpsim list`"))?;
        if let Some(dir) = &out_dir {
            // One CSV per table, named <id>-<index>.csv, plus the rendered
            // text report as <id>.txt.
            for (i, table) in output.tables.iter().enumerate() {
                let path = dir.join(format!("{id}-{i}.csv"));
                std::fs::write(&path, table.to_csv())
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
            }
            let path = dir.join(format!("{id}.txt"));
            std::fs::write(&path, output.render())
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            println!(
                "{id}: wrote {} tables to {}",
                output.tables.len(),
                dir.display()
            );
        } else if args.flag("csv") {
            for table in &output.tables {
                println!("# {} — {}", output.id, table.title());
                print!("{}", table.to_csv());
                println!();
            }
        } else {
            print!("{}", output.render());
        }
    }
    Ok(())
}

fn benches_from(args: &Args) -> Result<Vec<IbsBenchmark>, String> {
    match args.option("bench") {
        None | Some("all") => Ok(IbsBenchmark::all().to_vec()),
        Some(name) => IbsBenchmark::from_name(name)
            .map(|b| vec![b])
            .ok_or_else(|| format!("unknown benchmark `{name}`")),
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let spec = args.option("pred").ok_or("run needs --pred <spec>")?;
    // Validate the spec once up front for a friendly error.
    parse_spec(spec).map_err(|e| e.to_string())?;
    let benches = benches_from(args)?;
    let len_override = args.option_u64("len")?;
    if let Some(windows) = args.option_u64("windows")? {
        if windows == 0 {
            return Err("--windows must be nonzero".into());
        }
        // Phase view: one ASCII chart of windowed misprediction rates
        // per benchmark.
        for bench in benches {
            let len = len_override.unwrap_or_else(|| bench.default_len());
            let window = (len / windows).max(1);
            let mut predictor = parse_spec(spec).map_err(|e| e.to_string())?;
            let rates = engine::run_windowed(
                &mut predictor,
                trace_cache::stream(bench, len),
                window,
                engine::NovelPolicy::Count,
            );
            println!(
                "{} — {} ({} windows of {} branches, mispredict %):",
                bench.name(),
                predictor.name(),
                rates.len(),
                window
            );
            print!("{}", bpred_sim::report::ascii_chart(&rates, 10));
            println!();
        }
        return Ok(());
    }
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "benchmark", "branches", "mispredict", "%"
    );
    for bench in benches {
        let len = len_override.unwrap_or_else(|| bench.default_len());
        let mut predictor = parse_spec(spec).map_err(|e| e.to_string())?;
        let result = engine::run(&mut predictor, trace_cache::stream(bench, len));
        println!(
            "{:<12} {:>12} {:>12} {:>9.2}%",
            bench.name(),
            result.conditional,
            result.mispredicted,
            result.mispredict_pct()
        );
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let mut specs = Vec::new();
    let mut i = 1;
    while let Some(spec) = args.positional(i) {
        parse_spec(spec).map_err(|e| format!("{spec}: {e}"))?;
        specs.push(spec.to_string());
        i += 1;
    }
    if specs.is_empty() {
        return Err("compare needs at least one predictor spec".into());
    }
    let benches = benches_from(args)?;
    let len_override = args.option_u64("len")?;
    print!("{:<40} {:>9}", "predictor", "bits");
    for b in &benches {
        print!(" {:>10}", b.name());
    }
    println!(" {:>10}", "mean");
    // One materialized trace per benchmark, every spec driven over it in
    // a single batched pass.
    let mut per_spec_pcts = vec![Vec::new(); specs.len()];
    for &bench in &benches {
        let len = len_override.unwrap_or_else(|| bench.default_len());
        let trace = trace_cache::materialize(bench, len);
        let mut predictors = specs
            .iter()
            .map(|spec| parse_spec(spec).map_err(|e| e.to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let results = engine::run_many(&mut predictors, &trace, engine::NovelPolicy::Count);
        for (pcts, result) in per_spec_pcts.iter_mut().zip(results) {
            pcts.push(result.mispredict_pct());
        }
    }
    for (spec, cells) in specs.iter().zip(per_spec_pcts) {
        let predictor = parse_spec(spec).map_err(|e| e.to_string())?;
        print!("{:<40} {:>9}", predictor.name(), predictor.storage_bits());
        for c in &cells {
            print!(" {:>9.2}%", c);
        }
        println!(
            " {:>9.2}%",
            cells.iter().sum::<f64>() / benches.len() as f64
        );
    }
    Ok(())
}

fn cmd_duel(args: &Args) -> Result<(), String> {
    use bpred_sim::duel::duel;
    use bpred_sim::engine::NovelPolicy;
    let spec_a = args.positional(1).ok_or("duel needs two predictor specs")?;
    let spec_b = args.positional(2).ok_or("duel needs two predictor specs")?;
    parse_spec(spec_a).map_err(|e| format!("{spec_a}: {e}"))?;
    parse_spec(spec_b).map_err(|e| format!("{spec_b}: {e}"))?;
    let benches = benches_from(args)?;
    let len_override = args.option_u64("len")?;
    println!(
        "A = {spec_a}\nB = {spec_b}\n\n{:<12} {:>8} {:>8} {:>9} {:>9} {:>8}  verdict",
        "benchmark", "A %", "B %", "only A x", "only B x", "z"
    );
    for bench in benches {
        let len = len_override.unwrap_or_else(|| bench.default_len());
        let mut a = parse_spec(spec_a).map_err(|e| e.to_string())?;
        let mut b = parse_spec(spec_b).map_err(|e| e.to_string())?;
        let r = duel(
            &mut a,
            &mut b,
            bench.spec().build().take_conditionals(len),
            NovelPolicy::Count,
        );
        let verdict = if r.b_significantly_better() {
            "B wins (p < 0.01)"
        } else if r.a_significantly_better() {
            "A wins (p < 0.01)"
        } else {
            "no significant difference"
        };
        println!(
            "{:<12} {:>7.2}% {:>7.2}% {:>9} {:>9} {:>8.2}  {verdict}",
            bench.name(),
            r.a_pct(),
            r.b_pct(),
            r.only_a_wrong,
            r.only_b_wrong,
            r.mcnemar_z()
        );
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let template = args
        .option("pred")
        .ok_or("sweep needs --pred <spec containing `{h}`>, e.g. gskew:n=12,h={h}")?;
    if !template.contains("{h}") {
        return Err("the sweep spec must contain the `{h}` placeholder".into());
    }
    let benches = benches_from(args)?;
    let len_override = args.option_u64("len")?;
    print!("{:<4}", "h");
    for b in &benches {
        print!(" {:>10}", b.name());
    }
    println!();
    const HISTORIES: std::ops::RangeInclusive<u32> = 0..=16;
    // All 17 history lengths ride one pass per benchmark: materialize the
    // trace once and drive the whole predictor column together.
    let mut columns = Vec::new();
    for &bench in &benches {
        let len = len_override.unwrap_or_else(|| bench.default_len());
        let trace = trace_cache::materialize(bench, len);
        let mut predictors = HISTORIES
            .map(|h| {
                let spec = template.replace("{h}", &h.to_string());
                parse_spec(&spec).map_err(|e| e.to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        columns.push(engine::run_many(
            &mut predictors,
            &trace,
            engine::NovelPolicy::Count,
        ));
    }
    for (row, h) in HISTORIES.enumerate() {
        print!("{h:<4}");
        for column in &columns {
            print!(" {:>9.2}%", column[row].mispredict_pct());
        }
        println!();
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    match args.positional(1) {
        Some("gen") => {
            let bench_name = args.option("bench").ok_or("trace gen needs --bench")?;
            let bench = IbsBenchmark::from_name(bench_name)
                .ok_or_else(|| format!("unknown benchmark `{bench_name}`"))?;
            let len = args
                .option_u64("len")?
                .unwrap_or_else(|| bench.default_len().min(1_000_000));
            let out = args.option("out").ok_or("trace gen needs --out FILE")?;
            let records = bench.spec().build().take_conditionals(len);
            let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
            let mut writer = BufWriter::new(file);
            let written = match args.option("format").unwrap_or("bin") {
                "bin" => trace_io::write_binary(&mut writer, records),
                "text" => trace_io::write_text(&mut writer, records),
                "compact" => trace_io2::write_compact(&mut writer, records),
                other => return Err(format!("unknown format `{other}` (bin|text|compact)")),
            }
            .map_err(|e| format!("write {out}: {e}"))?;
            writer.flush().map_err(|e| format!("flush {out}: {e}"))?;
            println!("wrote {written} records to {out}");
            Ok(())
        }
        Some("info") => {
            let path = args.option("file").ok_or("trace info needs --file FILE")?;
            let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            let records = match args.option("format").unwrap_or("bin") {
                "bin" => trace_io::read_binary(BufReader::new(file)),
                "text" => trace_io::read_text(BufReader::new(file)),
                "compact" => trace_io2::read_compact(BufReader::new(file)),
                other => return Err(format!("unknown format `{other}` (bin|text|compact)")),
            }
            .map_err(|e| format!("read {path}: {e}"))?;
            let stats = TraceStats::collect(records.into_iter());
            println!("records:               {}", stats.total_records);
            println!("dynamic conditional:   {}", stats.dynamic_conditional);
            println!("static conditional:    {}", stats.static_conditional);
            println!("dynamic unconditional: {}", stats.dynamic_unconditional);
            println!("taken ratio:           {:.4}", stats.taken_ratio());
            println!("kernel ratio:          {:.4}", stats.kernel_ratio());
            Ok(())
        }
        _ => Err("trace needs a subcommand: gen | info".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_command_errors() {
        let e = dispatch(vec!["frobnicate".into()]).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn run_requires_pred() {
        let e = dispatch(vec!["run".into()]).unwrap_err();
        assert!(e.contains("--pred"));
    }

    #[test]
    fn run_rejects_bad_spec() {
        let e = dispatch(vec!["run".into(), "--pred".into(), "tage:n=1".into()]).unwrap_err();
        assert!(e.contains("unknown predictor"));
    }

    #[test]
    fn sweep_requires_placeholder() {
        let e = dispatch(vec![
            "sweep".into(),
            "--pred".into(),
            "gshare:n=10,h=4".into(),
        ])
        .unwrap_err();
        assert!(e.contains("{h}"));
    }

    #[test]
    fn experiment_requires_known_id() {
        let e = dispatch(vec!["experiment".into(), "fig99".into()]).unwrap_err();
        assert!(e.contains("unknown experiment"));
    }

    #[test]
    fn list_and_help_work() {
        dispatch(vec!["list".into()]).unwrap();
        dispatch(vec!["help".into()]).unwrap();
        dispatch(vec![]).unwrap();
    }

    #[test]
    fn compact_trace_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("bpsim-test-compact");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bpt2");
        let path_str = path.to_str().unwrap().to_string();
        dispatch(vec![
            "trace".into(),
            "gen".into(),
            "--bench".into(),
            "verilog".into(),
            "--len".into(),
            "2000".into(),
            "--out".into(),
            path_str.clone(),
            "--format".into(),
            "compact".into(),
        ])
        .unwrap();
        dispatch(vec![
            "trace".into(),
            "info".into(),
            "--file".into(),
            path_str,
            "--format".into(),
            "compact".into(),
        ])
        .unwrap();
    }

    #[test]
    fn trace_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("bpsim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bpt");
        let path_str = path.to_str().unwrap().to_string();
        dispatch(vec![
            "trace".into(),
            "gen".into(),
            "--bench".into(),
            "verilog".into(),
            "--len".into(),
            "2000".into(),
            "--out".into(),
            path_str.clone(),
        ])
        .unwrap();
        dispatch(vec![
            "trace".into(),
            "info".into(),
            "--file".into(),
            path_str,
        ])
        .unwrap();
    }

    #[test]
    fn quick_experiment_runs() {
        dispatch(vec!["experiment".into(), "fig9".into(), "--quick".into()]).unwrap();
        dispatch(vec!["experiment".into(), "fig3".into(), "--csv".into()]).unwrap();
    }

    #[test]
    fn experiment_out_dir_writes_files() {
        let dir = std::env::temp_dir().join("bpsim-out-test");
        let _ = std::fs::remove_dir_all(&dir);
        dispatch(vec![
            "experiment".into(),
            "fig3".into(),
            "--out".into(),
            dir.to_str().unwrap().into(),
        ])
        .unwrap();
        assert!(dir.join("fig3.txt").exists());
        assert!(dir.join("fig3-0.csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duel_needs_two_specs() {
        let e = dispatch(vec!["duel".into(), "gshare:n=8".into()]).unwrap_err();
        assert!(e.contains("two predictor specs"));
    }

    #[test]
    fn duel_runs() {
        dispatch(vec![
            "duel".into(),
            "gshare:n=8,h=4".into(),
            "gskew:n=8,h=4".into(),
            "--bench".into(),
            "verilog".into(),
            "--len".into(),
            "5000".into(),
        ])
        .unwrap();
    }

    #[test]
    fn compare_needs_specs() {
        let e = dispatch(vec!["compare".into()]).unwrap_err();
        assert!(e.contains("at least one"));
    }

    #[test]
    fn compare_rejects_bad_spec() {
        let e = dispatch(vec!["compare".into(), "tage:n=2".into()]).unwrap_err();
        assert!(e.contains("unknown predictor"));
    }

    #[test]
    fn compare_runs_two_specs() {
        dispatch(vec![
            "compare".into(),
            "gshare:n=8,h=4".into(),
            "gskew:n=8,h=4".into(),
            "--bench".into(),
            "verilog".into(),
            "--len".into(),
            "3000".into(),
        ])
        .unwrap();
    }

    #[test]
    fn run_windowed_chart() {
        dispatch(vec![
            "run".into(),
            "--pred".into(),
            "gshare:n=8,h=4".into(),
            "--bench".into(),
            "verilog".into(),
            "--len".into(),
            "6000".into(),
            "--windows".into(),
            "6".into(),
        ])
        .unwrap();
        let e = dispatch(vec![
            "run".into(),
            "--pred".into(),
            "gshare:n=8,h=4".into(),
            "--windows".into(),
            "0".into(),
        ])
        .unwrap_err();
        assert!(e.contains("nonzero"));
    }

    #[test]
    fn run_on_one_bench() {
        dispatch(vec![
            "run".into(),
            "--pred".into(),
            "gskew:n=8,h=4".into(),
            "--bench".into(),
            "verilog".into(),
            "--len".into(),
            "5000".into(),
        ])
        .unwrap();
    }
}
