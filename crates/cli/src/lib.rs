//! `bpsim` — command-line driver for the gskew reproduction.
//!
//! The command surface lives in this library crate so both the `bpsim`
//! binary here and the workspace-root `gskew` binary are the same thin
//! wrapper around [`dispatch`].
//!
//! ```text
//! bpsim list                                  available experiments & workloads
//! bpsim experiment <id|all> [--len N] [--quick] [--csv] [--out DIR]
//! bpsim run <experiment-id> | --pred <spec> [--bench <name>] [--len N]
//! bpsim compare <spec> <spec> ... [--bench <name>] [--len N]
//! bpsim duel <specA> <specB> [--bench <name>] [--len N]
//! bpsim sweep --pred <spec-with-{h}> [--bench <name>] [--len N]
//! bpsim campaign <name|list|diff> ...
//! bpsim results <stats|gc> [--results-dir DIR]
//! bpsim trace gen --bench <name> --len N --out FILE [--format bin|text|compact]
//! bpsim trace info --file FILE [--format bin|text|compact]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;

use args::Args;
use bpred_core::spec::parse_spec;
use bpred_results::campaign::CampaignArtifact;
use bpred_results::store::{self, ResultsStore};
use bpred_sim::engine;
use bpred_sim::experiments::{self, ExperimentOpts};
use bpred_sim::resume;
use bpred_sim::runner::default_threads;
use bpred_sim::{campaign, kernel, report, timing};
use bpred_trace::cache as trace_cache;
use bpred_trace::io as trace_io;
use bpred_trace::io2 as trace_io2;
use bpred_trace::stats::TraceStats;
use bpred_trace::stream::TraceSourceExt;
use bpred_trace::workload::IbsBenchmark;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

const USAGE: &str = "\
bpsim — skewed branch predictor reproduction (Michaud/Seznec/Uhlig, ISCA'97)

USAGE:
  bpsim list
  bpsim experiment <id|all> [--len N] [--threads T] [--quick] [--csv] [--out DIR]
  bpsim run <experiment-id> [--quick] ...     (same as `experiment <id>`)
  bpsim run --pred <spec> [--bench <name>] [--len N] [--windows N]
  bpsim compare <spec> <spec> ... [--bench <name>] [--len N]
  bpsim duel <specA> <specB> [--bench <name>] [--len N]
  bpsim sweep --pred <spec with {h}> [--bench <name>] [--len N]
  bpsim bench [--quick] [--out FILE] [--threads T] [--min-speedup X]
              [--min-aliasing-speedup X]
  bpsim campaign list
  bpsim campaign <name> [--out FILE] [--threads T]
  bpsim campaign diff <baseline> <candidate> [--tol T]
  bpsim results stats [--results-dir DIR]
  bpsim results gc --budget BYTES [--results-dir DIR]
  bpsim trace gen --bench <name> --len N --out FILE [--format bin|text|compact]
  bpsim trace info --file FILE [--format bin|text|compact]

Global options:
  --seed S           workload seed base, decimal or 0x-hex (default
                     0x5EED0000, which reproduces the committed tables)
  --resume           skip any cell already in the results store with an
                     identical fingerprint (implies --save-results)
  --save-results     persist every simulated cell to the results store
  --results-dir DIR  results store location (default .gskew/results)
  --no-trace-cache   regenerate workload streams on every use instead of
                     memoizing materialized traces (streaming memory profile)
  --verbose          print trace-cache, results-store and engine-throughput
                     summaries (hits/misses, cells skipped/simulated/saved,
                     records/sec on the kernel and dyn simulation paths)

Environment:
  GSKEW_THREADS      default worker-thread count for parallel sweeps
                     (clamped to at least 1; --threads overrides it)

Predictor specs:
  gshare:n=14,h=12 | gselect:n=12,h=6 | bimodal:n=14
  gskew:n=12,h=8[,banks=5][,update=total][,skew=off] | egskew:n=12,h=11
  shgskew:n=12,h=8 (shared hysteresis)  | 2bcgskew:n=12,h=12 (EV8-style)
  agree:n=13,h=8,bias=12 | bimode:n=12,h=8,choice=12 | mcfarling:n=12,h=10
  pas:bht=10,l=8,n=12 | spas:bht=10,l=8,n=10 (per-address)
  ideal:h=12 | falru:cap=4096,h=4 | setassoc:n=10,ways=4,h=4
  always-taken | always-nottaken
";

/// Binary entry point: parse `std::env::args`, dispatch, report errors.
pub fn cli_main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bpsim: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Run one command line (excluding the program name).
///
/// # Errors
///
/// Returns the message to print on stderr before exiting nonzero.
pub fn dispatch(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse(raw)?;
    if args.flag("no-trace-cache") {
        // Process-global and single-threaded here: `main` is the only
        // caller that may flip the cache switch.
        trace_cache::set_enabled(false);
    }
    if let Some(seed) = args.option_u64("seed")? {
        // Also process-global (see `experiments::set_workload_seed`).
        experiments::set_workload_seed(seed);
    }
    let resume_flag = args.flag("resume");
    let save_flag = resume_flag || args.flag("save-results");
    if save_flag {
        let store = ResultsStore::open(results_dir(&args))?;
        resume::configure(store, resume_flag, true);
    }
    let result = match args.positional(0) {
        None | Some("help") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("list") => cmd_list(),
        Some("experiment") => cmd_experiment(&args),
        Some("run") => cmd_run(&args),
        Some("compare") => cmd_compare(&args),
        Some("duel") => cmd_duel(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("bench") => cmd_bench(&args),
        Some("campaign") => cmd_campaign(&args),
        Some("results") => cmd_results(&args),
        Some("trace") => cmd_trace(&args),
        Some(other) => Err(format!("unknown command `{other}`; try `bpsim help`")),
    };
    if result.is_ok() && args.flag("verbose") {
        print_cache_summary();
        print_resume_summary();
        print_timing_summary();
    }
    // Detach so repeated `dispatch` calls in one process (tests) start
    // clean; the store flushes its index on every put, nothing to close.
    if save_flag {
        resume::deconfigure();
    }
    result
}

fn results_dir(args: &Args) -> String {
    args.option("results-dir")
        .unwrap_or(store::DEFAULT_STORE_DIR)
        .to_string()
}

fn print_cache_summary() {
    if !trace_cache::is_enabled() {
        eprintln!("trace cache: disabled (--no-trace-cache); every stream regenerated");
        return;
    }
    let stats = trace_cache::stats();
    eprintln!(
        "trace cache: {} hits / {} misses ({:.0}% hit), {} evictions, \
         {} traces resident ({:.1} MiB)",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_ratio(),
        stats.evictions,
        stats.entries,
        stats.resident_bytes as f64 / (1 << 20) as f64,
    );
}

fn print_resume_summary() {
    if !resume::is_active() {
        return;
    }
    let stats = resume::stats();
    eprintln!(
        "results store: {} cells skipped (resumed), {} cells simulated, {} records saved",
        stats.cells_skipped, stats.cells_simulated, stats.records_saved,
    );
}

fn print_timing_summary() {
    let t = timing::stats();
    if t.kernel_applications == 0 && t.dyn_applications == 0 {
        return;
    }
    // Rates are per-core (durations summed across workers), so the two
    // paths stay comparable regardless of thread counts.
    if t.kernel_applications > 0 {
        eprintln!(
            "engine (kernel): {} record applications in {:.2}s CPU ({:.1} M records/s)",
            t.kernel_applications,
            t.kernel_seconds(),
            t.kernel_rate() / 1e6,
        );
    }
    if t.dyn_applications > 0 {
        eprintln!(
            "engine (dyn):    {} record applications in {:.2}s CPU ({:.1} M records/s)",
            t.dyn_applications,
            t.dyn_seconds(),
            t.dyn_rate() / 1e6,
        );
    }
}

fn cmd_list() -> Result<(), String> {
    println!("experiments:");
    for id in experiments::ALL_IDS {
        println!("  {id}");
    }
    println!("\ncampaigns:");
    for c in campaign::ALL {
        println!("  {:<10} {}", c.name, c.description);
    }
    println!("\nworkloads (synthetic IBS):");
    for b in IbsBenchmark::all() {
        println!(
            "  {:<10} default len {:>8}  (paper: {} dynamic / {} static)",
            b.name(),
            b.default_len(),
            b.paper_dynamic_branches(),
            b.paper_static_branches()
        );
    }
    Ok(())
}

fn opts_from(args: &Args) -> Result<ExperimentOpts, String> {
    let mut opts = ExperimentOpts {
        len_override: args.option_u64("len")?,
        ..ExperimentOpts::default()
    };
    if let Some(threads) = args.option_u64("threads")? {
        opts.threads = threads.max(1) as usize;
    }
    opts.quick = args.flag("quick");
    Ok(opts)
}

fn cmd_experiment(args: &Args) -> Result<(), String> {
    let id = args
        .positional(1)
        .ok_or("experiment needs an id; try `bpsim list`")?;
    let opts = opts_from(args)?;
    let ids: Vec<&str> = if id == "all" {
        experiments::ALL_IDS.to_vec()
    } else {
        vec![id]
    };
    let out_dir = args.option("out").map(std::path::PathBuf::from);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    for id in ids {
        let output = experiments::run(id, &opts)
            .ok_or_else(|| format!("unknown experiment `{id}`; try `bpsim list`"))?;
        if let Some(dir) = &out_dir {
            // One CSV per table, named <id>-<index>.csv, plus the rendered
            // text report as <id>.txt.
            for (i, table) in output.tables.iter().enumerate() {
                let path = dir.join(format!("{id}-{i}.csv"));
                std::fs::write(&path, table.to_csv())
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
            }
            let path = dir.join(format!("{id}.txt"));
            std::fs::write(&path, output.render())
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            println!(
                "{id}: wrote {} tables to {}",
                output.tables.len(),
                dir.display()
            );
        } else if args.flag("csv") {
            for table in &output.tables {
                println!("# {} — {}", output.id, table.title());
                print!("{}", table.to_csv());
                println!();
            }
        } else {
            print!("{}", output.render());
        }
    }
    Ok(())
}

fn benches_from(args: &Args) -> Result<Vec<IbsBenchmark>, String> {
    match args.option("bench") {
        None | Some("all") => Ok(IbsBenchmark::all().to_vec()),
        Some(name) => IbsBenchmark::from_name(name)
            .map(|b| vec![b])
            .ok_or_else(|| format!("unknown benchmark `{name}`")),
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let Some(spec) = args.option("pred") else {
        // `run fig5` reads naturally; treat a known experiment id as an
        // alias for `experiment fig5` so resumable reruns stay one word.
        if let Some(id) = args.positional(1) {
            if id == "all" || experiments::ALL_IDS.contains(&id) {
                return cmd_experiment(args);
            }
            return Err(format!(
                "run needs --pred <spec>, or an experiment id (`{id}` is neither; try `bpsim list`)"
            ));
        }
        return Err("run needs --pred <spec> or an experiment id".into());
    };
    // Validate the spec once up front for a friendly error.
    parse_spec(spec).map_err(|e| e.to_string())?;
    let benches = benches_from(args)?;
    let len_override = args.option_u64("len")?;
    let seed = experiments::workload_seed();
    if let Some(windows) = args.option_u64("windows")? {
        if windows == 0 {
            return Err("--windows must be nonzero".into());
        }
        // Phase view: one ASCII chart of windowed misprediction rates
        // per benchmark.
        for bench in benches {
            let len = len_override.unwrap_or_else(|| bench.default_len());
            let window = (len / windows).max(1);
            let mut predictor = parse_spec(spec).map_err(|e| e.to_string())?;
            let rates = engine::run_windowed(
                &mut predictor,
                trace_cache::stream_seeded(bench, len, seed),
                window,
                engine::NovelPolicy::Count,
            );
            println!(
                "{} — {} ({} windows of {} branches, mispredict %):",
                bench.name(),
                predictor.name(),
                rates.len(),
                window
            );
            print!("{}", report::ascii_chart(&rates, 10));
            println!();
        }
        return Ok(());
    }
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "benchmark", "branches", "mispredict", "%"
    );
    for bench in benches {
        let len = len_override.unwrap_or_else(|| bench.default_len());
        let mut predictor = parse_spec(spec).map_err(|e| e.to_string())?;
        let result = engine::run(&mut predictor, trace_cache::stream_seeded(bench, len, seed));
        println!(
            "{:<12} {:>12} {:>12} {:>9.2}%",
            bench.name(),
            result.conditional,
            result.mispredicted,
            result.mispredict_pct()
        );
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let mut specs = Vec::new();
    let mut i = 1;
    while let Some(spec) = args.positional(i) {
        parse_spec(spec).map_err(|e| format!("{spec}: {e}"))?;
        specs.push(spec.to_string());
        i += 1;
    }
    if specs.is_empty() {
        return Err("compare needs at least one predictor spec".into());
    }
    let benches = benches_from(args)?;
    let len_override = args.option_u64("len")?;
    let seed = experiments::workload_seed();
    print!("{:<40} {:>9}", "predictor", "bits");
    for b in &benches {
        print!(" {:>10}", b.name());
    }
    println!(" {:>10}", "mean");
    // One materialized trace per benchmark; specs with a kernel fast
    // path run as monomorphized loops over the shared column view, the
    // rest ride one batched dyn pass.
    let mut per_spec_pcts = vec![Vec::new(); specs.len()];
    for &bench in &benches {
        let len = len_override.unwrap_or_else(|| bench.default_len());
        let trace = trace_cache::materialize_seeded(bench, len, seed);
        let cols = trace_cache::columns_seeded(bench, len, seed);
        let results = kernel::run_specs(
            &specs,
            &trace,
            &cols,
            engine::NovelPolicy::Count,
            default_threads(),
        )
        .map_err(|e| e.to_string())?;
        for (pcts, result) in per_spec_pcts.iter_mut().zip(results) {
            pcts.push(result.mispredict_pct());
        }
    }
    for (spec, cells) in specs.iter().zip(per_spec_pcts) {
        let predictor = parse_spec(spec).map_err(|e| e.to_string())?;
        print!("{:<40} {:>9}", predictor.name(), predictor.storage_bits());
        for c in &cells {
            print!(" {:>9.2}%", c);
        }
        println!(
            " {:>9.2}%",
            cells.iter().sum::<f64>() / benches.len() as f64
        );
    }
    Ok(())
}

fn cmd_duel(args: &Args) -> Result<(), String> {
    use bpred_sim::duel::duel;
    use bpred_sim::engine::NovelPolicy;
    let spec_a = args.positional(1).ok_or("duel needs two predictor specs")?;
    let spec_b = args.positional(2).ok_or("duel needs two predictor specs")?;
    parse_spec(spec_a).map_err(|e| format!("{spec_a}: {e}"))?;
    parse_spec(spec_b).map_err(|e| format!("{spec_b}: {e}"))?;
    let benches = benches_from(args)?;
    let len_override = args.option_u64("len")?;
    let seed = experiments::workload_seed();
    println!(
        "A = {spec_a}\nB = {spec_b}\n\n{:<12} {:>8} {:>8} {:>9} {:>9} {:>8}  verdict",
        "benchmark", "A %", "B %", "only A x", "only B x", "z"
    );
    for bench in benches {
        let len = len_override.unwrap_or_else(|| bench.default_len());
        let mut a = parse_spec(spec_a).map_err(|e| e.to_string())?;
        let mut b = parse_spec(spec_b).map_err(|e| e.to_string())?;
        let r = duel(
            &mut a,
            &mut b,
            bench.spec_seeded(seed).build().take_conditionals(len),
            NovelPolicy::Count,
        );
        let verdict = if r.b_significantly_better() {
            "B wins (p < 0.01)"
        } else if r.a_significantly_better() {
            "A wins (p < 0.01)"
        } else {
            "no significant difference"
        };
        println!(
            "{:<12} {:>7.2}% {:>7.2}% {:>9} {:>9} {:>8.2}  {verdict}",
            bench.name(),
            r.a_pct(),
            r.b_pct(),
            r.only_a_wrong,
            r.only_b_wrong,
            r.mcnemar_z()
        );
    }
    Ok(())
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let template = args
        .option("pred")
        .ok_or("sweep needs --pred <spec containing `{h}`>, e.g. gskew:n=12,h={h}")?;
    if !template.contains("{h}") {
        return Err("the sweep spec must contain the `{h}` placeholder".into());
    }
    let benches = benches_from(args)?;
    let len_override = args.option_u64("len")?;
    let seed = experiments::workload_seed();
    print!("{:<4}", "h");
    for b in &benches {
        print!(" {:>10}", b.name());
    }
    println!();
    const HISTORIES: std::ops::RangeInclusive<u32> = 0..=16;
    // All 17 history lengths ride one pass per benchmark: kernels over
    // the shared column view where supported, one batched dyn pass for
    // the rest.
    let specs: Vec<String> = HISTORIES
        .map(|h| template.replace("{h}", &h.to_string()))
        .collect();
    let mut columns = Vec::new();
    for &bench in &benches {
        let len = len_override.unwrap_or_else(|| bench.default_len());
        let trace = trace_cache::materialize_seeded(bench, len, seed);
        let cols = trace_cache::columns_seeded(bench, len, seed);
        columns.push(
            kernel::run_specs(
                &specs,
                &trace,
                &cols,
                engine::NovelPolicy::Count,
                default_threads(),
            )
            .map_err(|e| e.to_string())?,
        );
    }
    for (row, h) in HISTORIES.enumerate() {
        print!("{h:<4}");
        for column in &columns {
            print!(" {:>9.2}%", column[row].mispredict_pct());
        }
        println!();
    }
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    use bpred_bench::kernel_bench;
    let quick = args.flag("quick");
    let threads = match args.option_u64("threads")? {
        Some(t) => (t.max(1)) as usize,
        None => default_threads(),
    };
    let min_speedup = args.option_f64("min-speedup")?.unwrap_or(1.0);
    if min_speedup.is_nan() || min_speedup < 0.0 {
        return Err(format!(
            "--min-speedup must be a nonnegative number, got {min_speedup}"
        ));
    }
    let min_aliasing = args.option_f64("min-aliasing-speedup")?.unwrap_or(1.0);
    if min_aliasing.is_nan() || min_aliasing < 0.0 {
        return Err(format!(
            "--min-aliasing-speedup must be a nonnegative number, got {min_aliasing}"
        ));
    }
    let out = args.option("out").unwrap_or("BENCH_kernels.json");
    let cases = kernel_bench::default_cases();
    let mut report = kernel_bench::run(&cases, quick, threads);
    report.aliasing = Some(kernel_bench::run_aliasing(
        &kernel_bench::default_aliasing_grid(),
        quick,
        threads,
    ));

    println!(
        "{:<16} {:>6} {:>14} {:>12} {:>12} {:>9}  match",
        "case", "specs", "record-apps", "dyn M/s", "kernel M/s", "speedup"
    );
    for case in &report.cases {
        println!(
            "{:<16} {:>6} {:>14} {:>12.1} {:>12.1} {:>8.2}x  {}",
            case.name,
            case.specs,
            case.applications,
            case.dyn_rate() / 1e6,
            case.kernel_rate() / 1e6,
            case.speedup(),
            if case.matched { "ok" } else { "MISMATCH" },
        );
    }
    if let Some(a) = &report.aliasing {
        println!(
            "{:<16} {:>6} {:>14} {:>12.1} {:>12.1} {:>8.2}x  {}",
            "aliasing-3c",
            a.cells,
            a.applications,
            a.dyn_rate() / 1e6,
            a.batch_rate() / 1e6,
            a.speedup(),
            if a.matched { "ok" } else { "MISMATCH" },
        );
    }
    println!(
        "overall: {} record applications, dyn {:.2}s vs kernel {:.2}s CPU -> {:.2}x speedup",
        report.applications(),
        report.dyn_seconds(),
        report.kernel_seconds(),
        report.speedup()
    );
    store::write_atomic(
        std::path::Path::new(out),
        report.to_json().to_string_compact().as_bytes(),
    )?;
    println!("wrote {out}");

    if !report.all_matched() {
        return Err("kernel results diverged from the dyn engine (see MISMATCH rows)".into());
    }
    if report.speedup() < min_speedup {
        return Err(format!(
            "kernel speedup {:.2}x is below the required {min_speedup}x",
            report.speedup()
        ));
    }
    if let Some(a) = &report.aliasing {
        if !a.matched {
            return Err("batched three-C counts diverged from the per-config classifier".into());
        }
        if a.speedup() < min_aliasing {
            return Err(format!(
                "batched three-C speedup {:.2}x is below the required {min_aliasing}x",
                a.speedup()
            ));
        }
    }
    Ok(())
}

/// Default absolute tolerance (percentage points) for `campaign diff`.
const DEFAULT_DIFF_TOLERANCE: f64 = 0.05;

fn cmd_campaign(args: &Args) -> Result<(), String> {
    match args.positional(1) {
        None | Some("list") => {
            for c in campaign::ALL {
                println!("{:<10} {}", c.name, c.description);
                println!("{:<10}   experiments: {}", "", c.experiments.join(" "));
            }
            Ok(())
        }
        Some("diff") => {
            let baseline_path = args
                .positional(2)
                .ok_or("campaign diff needs <baseline> <candidate>")?;
            let candidate_path = args
                .positional(3)
                .ok_or("campaign diff needs <baseline> <candidate>")?;
            let tolerance = args.option_f64("tol")?.unwrap_or(DEFAULT_DIFF_TOLERANCE);
            if tolerance.is_nan() || tolerance < 0.0 {
                return Err(format!(
                    "--tol must be a nonnegative number, got {tolerance}"
                ));
            }
            let load = |path: &str| -> Result<CampaignArtifact, String> {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
                CampaignArtifact::parse(&text).map_err(|e| format!("{path}: {e}"))
            };
            let baseline = load(baseline_path)?;
            let candidate = load(candidate_path)?;
            let diff = bpred_results::campaign::diff(&baseline, &candidate, tolerance);
            if diff.is_clean() {
                println!(
                    "campaign `{}`: {} cells compared, none beyond tolerance {tolerance}",
                    baseline.name, diff.cells_compared
                );
                Ok(())
            } else {
                print!("{}", diff.report());
                Err(format!(
                    "campaign `{}`: {} regression(s) beyond tolerance {tolerance} \
                     ({} cells compared)",
                    baseline.name,
                    diff.regressions.len(),
                    diff.cells_compared
                ))
            }
        }
        Some(name) => {
            let c = campaign::find(name)
                .ok_or_else(|| format!("unknown campaign `{name}`; try `bpsim campaign list`"))?;
            let opts = opts_from(args)?;
            let artifact = campaign::run(c, &opts);
            let out = args.option("out").unwrap_or("campaign.json");
            store::write_atomic(
                std::path::Path::new(out),
                artifact.to_pretty_string().as_bytes(),
            )?;
            let cells: usize = artifact
                .experiments
                .iter()
                .flat_map(|e| e.tables.iter())
                .map(|t| t.rows.iter().map(Vec::len).sum::<usize>())
                .sum();
            println!(
                "campaign `{}`: {} experiments, {} cells -> {out}",
                artifact.name,
                artifact.experiments.len(),
                cells
            );
            Ok(())
        }
    }
}

fn cmd_results(args: &Args) -> Result<(), String> {
    let dir = results_dir(args);
    match args.positional(1) {
        Some("stats") => {
            let store = ResultsStore::open(&dir)?;
            println!("store:    {dir}");
            println!("records:  {}", store.len());
            println!("bytes:    {}", store.total_bytes());
            let mut by_experiment: Vec<(String, usize)> = Vec::new();
            for record in store.records() {
                match by_experiment
                    .iter_mut()
                    .find(|(e, _)| *e == record.experiment)
                {
                    Some((_, n)) => *n += 1,
                    None => by_experiment.push((record.experiment.clone(), 1)),
                }
            }
            by_experiment.sort();
            for (experiment, n) in by_experiment {
                println!("  {experiment:<16} {n}");
            }
            Ok(())
        }
        Some("gc") => {
            let budget = args
                .option_u64("budget")?
                .ok_or("results gc needs --budget BYTES")?;
            let mut store = ResultsStore::open(&dir)?;
            let stats = store.gc(budget)?;
            println!(
                "gc: removed {} record(s), freed {} bytes, {} bytes resident (budget {budget})",
                stats.removed, stats.freed_bytes, stats.remaining_bytes
            );
            Ok(())
        }
        _ => Err("results needs a subcommand: stats | gc".into()),
    }
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    match args.positional(1) {
        Some("gen") => {
            let bench_name = args.option("bench").ok_or("trace gen needs --bench")?;
            let bench = IbsBenchmark::from_name(bench_name)
                .ok_or_else(|| format!("unknown benchmark `{bench_name}`"))?;
            let len = args
                .option_u64("len")?
                .unwrap_or_else(|| bench.default_len().min(1_000_000));
            let out = args.option("out").ok_or("trace gen needs --out FILE")?;
            let records = bench
                .spec_seeded(experiments::workload_seed())
                .build()
                .take_conditionals(len);
            let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
            let mut writer = BufWriter::new(file);
            let written = match args.option("format").unwrap_or("bin") {
                "bin" => trace_io::write_binary(&mut writer, records),
                "text" => trace_io::write_text(&mut writer, records),
                "compact" => trace_io2::write_compact(&mut writer, records),
                other => return Err(format!("unknown format `{other}` (bin|text|compact)")),
            }
            .map_err(|e| format!("write {out}: {e}"))?;
            writer.flush().map_err(|e| format!("flush {out}: {e}"))?;
            println!("wrote {written} records to {out}");
            Ok(())
        }
        Some("info") => {
            let path = args.option("file").ok_or("trace info needs --file FILE")?;
            let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            let records = match args.option("format").unwrap_or("bin") {
                "bin" => trace_io::read_binary(BufReader::new(file)),
                "text" => trace_io::read_text(BufReader::new(file)),
                "compact" => trace_io2::read_compact(BufReader::new(file)),
                other => return Err(format!("unknown format `{other}` (bin|text|compact)")),
            }
            .map_err(|e| format!("read {path}: {e}"))?;
            let stats = TraceStats::collect(records.into_iter());
            println!("records:               {}", stats.total_records);
            println!("dynamic conditional:   {}", stats.dynamic_conditional);
            println!("static conditional:    {}", stats.static_conditional);
            println!("dynamic unconditional: {}", stats.dynamic_unconditional);
            println!("taken ratio:           {:.4}", stats.taken_ratio());
            println!("kernel ratio:          {:.4}", stats.kernel_ratio());
            Ok(())
        }
        _ => Err("trace needs a subcommand: gen | info".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_command_errors() {
        let e = dispatch(vec!["frobnicate".into()]).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn run_requires_pred_or_experiment() {
        let e = dispatch(vec!["run".into()]).unwrap_err();
        assert!(e.contains("--pred"));
        let e = dispatch(vec!["run".into(), "fig99".into()]).unwrap_err();
        assert!(e.contains("neither"), "{e}");
    }

    #[test]
    fn run_delegates_to_experiments() {
        dispatch(vec![
            "run".into(),
            "fig3".into(),
            "--len".into(),
            "5000".into(),
        ])
        .unwrap();
    }

    #[test]
    fn run_rejects_bad_spec() {
        let e = dispatch(vec!["run".into(), "--pred".into(), "tage:n=1".into()]).unwrap_err();
        assert!(e.contains("unknown predictor"));
    }

    #[test]
    fn sweep_requires_placeholder() {
        let e = dispatch(vec![
            "sweep".into(),
            "--pred".into(),
            "gshare:n=10,h=4".into(),
        ])
        .unwrap_err();
        assert!(e.contains("{h}"));
    }

    #[test]
    fn experiment_requires_known_id() {
        let e = dispatch(vec!["experiment".into(), "fig99".into()]).unwrap_err();
        assert!(e.contains("unknown experiment"));
    }

    #[test]
    fn list_and_help_work() {
        dispatch(vec!["list".into()]).unwrap();
        dispatch(vec!["help".into()]).unwrap();
        dispatch(vec![]).unwrap();
    }

    #[test]
    fn campaign_list_and_unknown_name() {
        dispatch(vec!["campaign".into()]).unwrap();
        dispatch(vec!["campaign".into(), "list".into()]).unwrap();
        let e = dispatch(vec!["campaign".into(), "nope".into()]).unwrap_err();
        assert!(e.contains("unknown campaign"));
    }

    #[test]
    fn campaign_diff_needs_two_paths_and_real_files() {
        let e = dispatch(vec!["campaign".into(), "diff".into()]).unwrap_err();
        assert!(e.contains("baseline"));
        let e = dispatch(vec![
            "campaign".into(),
            "diff".into(),
            "/nonexistent/a.json".into(),
            "/nonexistent/b.json".into(),
        ])
        .unwrap_err();
        assert!(e.contains("read"));
    }

    #[test]
    fn results_needs_subcommand_and_gc_needs_budget() {
        let e = dispatch(vec!["results".into()]).unwrap_err();
        assert!(e.contains("stats | gc"));
        let dir = std::env::temp_dir().join(format!("bpsim-results-cli-{}", std::process::id()));
        let dir_str = dir.to_str().unwrap().to_string();
        let e = dispatch(vec![
            "results".into(),
            "gc".into(),
            "--results-dir".into(),
            dir_str.clone(),
        ])
        .unwrap_err();
        assert!(e.contains("--budget"));
        dispatch(vec![
            "results".into(),
            "stats".into(),
            "--results-dir".into(),
            dir_str.clone(),
        ])
        .unwrap();
        dispatch(vec![
            "results".into(),
            "gc".into(),
            "--budget".into(),
            "1000000".into(),
            "--results-dir".into(),
            dir_str,
        ])
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_trace_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("bpsim-test-compact");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bpt2");
        let path_str = path.to_str().unwrap().to_string();
        dispatch(vec![
            "trace".into(),
            "gen".into(),
            "--bench".into(),
            "verilog".into(),
            "--len".into(),
            "2000".into(),
            "--out".into(),
            path_str.clone(),
            "--format".into(),
            "compact".into(),
        ])
        .unwrap();
        dispatch(vec![
            "trace".into(),
            "info".into(),
            "--file".into(),
            path_str,
            "--format".into(),
            "compact".into(),
        ])
        .unwrap();
    }

    #[test]
    fn trace_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("bpsim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bpt");
        let path_str = path.to_str().unwrap().to_string();
        dispatch(vec![
            "trace".into(),
            "gen".into(),
            "--bench".into(),
            "verilog".into(),
            "--len".into(),
            "2000".into(),
            "--out".into(),
            path_str.clone(),
        ])
        .unwrap();
        dispatch(vec![
            "trace".into(),
            "info".into(),
            "--file".into(),
            path_str,
        ])
        .unwrap();
    }

    #[test]
    fn quick_experiment_runs() {
        dispatch(vec!["experiment".into(), "fig9".into(), "--quick".into()]).unwrap();
        dispatch(vec!["experiment".into(), "fig3".into(), "--csv".into()]).unwrap();
    }

    #[test]
    fn experiment_out_dir_writes_files() {
        let dir = std::env::temp_dir().join("bpsim-out-test");
        let _ = std::fs::remove_dir_all(&dir);
        dispatch(vec![
            "experiment".into(),
            "fig3".into(),
            "--out".into(),
            dir.to_str().unwrap().into(),
        ])
        .unwrap();
        assert!(dir.join("fig3.txt").exists());
        assert!(dir.join("fig3-0.csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duel_needs_two_specs() {
        let e = dispatch(vec!["duel".into(), "gshare:n=8".into()]).unwrap_err();
        assert!(e.contains("two predictor specs"));
    }

    #[test]
    fn duel_runs() {
        dispatch(vec![
            "duel".into(),
            "gshare:n=8,h=4".into(),
            "gskew:n=8,h=4".into(),
            "--bench".into(),
            "verilog".into(),
            "--len".into(),
            "5000".into(),
        ])
        .unwrap();
    }

    #[test]
    fn compare_needs_specs() {
        let e = dispatch(vec!["compare".into()]).unwrap_err();
        assert!(e.contains("at least one"));
    }

    #[test]
    fn compare_rejects_bad_spec() {
        let e = dispatch(vec!["compare".into(), "tage:n=2".into()]).unwrap_err();
        assert!(e.contains("unknown predictor"));
    }

    #[test]
    fn compare_runs_two_specs() {
        dispatch(vec![
            "compare".into(),
            "gshare:n=8,h=4".into(),
            "gskew:n=8,h=4".into(),
            "--bench".into(),
            "verilog".into(),
            "--len".into(),
            "3000".into(),
        ])
        .unwrap();
    }

    #[test]
    fn run_windowed_chart() {
        dispatch(vec![
            "run".into(),
            "--pred".into(),
            "gshare:n=8,h=4".into(),
            "--bench".into(),
            "verilog".into(),
            "--len".into(),
            "6000".into(),
            "--windows".into(),
            "6".into(),
        ])
        .unwrap();
        let e = dispatch(vec![
            "run".into(),
            "--pred".into(),
            "gshare:n=8,h=4".into(),
            "--windows".into(),
            "0".into(),
        ])
        .unwrap_err();
        assert!(e.contains("nonzero"));
    }

    #[test]
    fn run_on_one_bench() {
        dispatch(vec![
            "run".into(),
            "--pred".into(),
            "gskew:n=8,h=4".into(),
            "--bench".into(),
            "verilog".into(),
            "--len".into(),
            "5000".into(),
        ])
        .unwrap();
    }
}
