//! End-to-end acceptance pins for ISSUE 2, driven through the real
//! `bpsim` binary so exit codes, stdout bytes and the `--verbose`
//! counters are all exercised exactly as CI and users see them.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bpsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bpsim"))
        .args(args)
        .output()
        .expect("spawn bpsim")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bpsim-accept-{tag}-{}", std::process::id()))
}

#[test]
fn resumed_rerun_skips_every_cell_and_is_byte_identical() {
    let store = temp_path("store");
    let _ = std::fs::remove_dir_all(&store);
    let store = store.to_str().unwrap();
    // Keep the pin fast: fig5 at a small fixed length.
    let run = |_: ()| {
        bpsim(&[
            "run",
            "fig5",
            "--quick",
            "--len",
            "20000",
            "--resume",
            "--verbose",
            "--results-dir",
            store,
        ])
    };

    let cold = run(());
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(
        cold_err.contains("0 cells skipped"),
        "cold run starts empty: {cold_err}"
    );

    let warm = run(());
    assert!(warm.status.success());
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_err.contains("0 cells simulated"),
        "warm rerun performs zero simulations: {warm_err}"
    );
    assert!(
        warm_err.contains("150 cells skipped"),
        "the skip counter reports every cell: {warm_err}"
    );
    assert_eq!(
        cold.stdout, warm.stdout,
        "resumed table is byte-identical to the cold run"
    );
    let _ = std::fs::remove_dir_all(store);
}

#[test]
fn campaign_diff_gates_on_tolerance_with_proper_exit_codes() {
    let dir = temp_path("campaign");
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.json");
    let baseline_str = baseline.to_str().unwrap();

    // A tiny artifact pair: the gate's exit-code contract does not need a
    // real simulation run.
    let artifact = |cell: &str| {
        format!(
            concat!(
                "{{\"name\":\"quick\",\"engine_version\":\"1\",\"seed\":\"000000005eed0000\",",
                "\"experiments\":[{{\"id\":\"fig5\",\"title\":\"t\",\"tables\":[{{\"title\":\"g\",",
                "\"columns\":[\"size\",\"groff\"],\"rows\":[[\"64\",\"{}\"]]}}]}}]}}"
            ),
            cell
        )
    };
    std::fs::write(&baseline, artifact("9.41")).unwrap();
    let candidate = dir.join("candidate.json");
    let candidate_str = candidate.to_str().unwrap();
    std::fs::write(&candidate, artifact("9.81")).unwrap();

    // Identical artifacts: exit 0.
    let same = bpsim(&["campaign", "diff", baseline_str, baseline_str]);
    assert!(same.status.success());

    // 0.40 beyond a 0.25 tolerance: nonzero exit and a per-cell report.
    let bad = bpsim(&[
        "campaign",
        "diff",
        baseline_str,
        candidate_str,
        "--tol",
        "0.25",
    ]);
    assert!(!bad.status.success());
    let report = String::from_utf8_lossy(&bad.stdout);
    assert!(
        report.contains("fig5/g/64/groff") && report.contains("9.41 -> 9.81"),
        "per-cell report names the cell: {report}"
    );

    // The same delta within tolerance: exit 0.
    let ok = bpsim(&[
        "campaign",
        "diff",
        baseline_str,
        candidate_str,
        "--tol",
        "0.5",
    ]);
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seed_changes_direct_runs_deterministically() {
    let base = bpsim(&[
        "run",
        "--pred",
        "gshare:n=8,h=4",
        "--bench",
        "verilog",
        "--len",
        "5000",
    ]);
    assert!(base.status.success());
    let seeded = bpsim(&[
        "run",
        "--pred",
        "gshare:n=8,h=4",
        "--bench",
        "verilog",
        "--len",
        "5000",
        "--seed",
        "0x1234",
    ]);
    assert!(seeded.status.success());
    let seeded_again = bpsim(&[
        "run",
        "--pred",
        "gshare:n=8,h=4",
        "--bench",
        "verilog",
        "--len",
        "5000",
        "--seed",
        "4660",
    ]);
    assert!(seeded_again.status.success());
    assert_ne!(base.stdout, seeded.stdout, "a new seed is a new workload");
    assert_eq!(
        seeded.stdout, seeded_again.stdout,
        "hex and decimal spellings of one seed agree"
    );
}
