//! Dyn-vs-kernel throughput measurement behind `bpsim bench`.
//!
//! Each [`BenchCase`] is a sweep-shaped list of predictor specs (the
//! same shapes the quick campaign simulates) driven over the
//! quick-campaign workloads twice: once through the batched
//! `Box<dyn BranchPredictor>` engine pass and once through the
//! monomorphized kernels walking the shared
//! [`TraceColumns`](bpred_trace::soa::TraceColumns) view. Both
//! paths are timed as summed CPU seconds, so the reported speedup is
//! independent of the worker-thread count, and both results are compared
//! cell by cell — a throughput run doubles as an end-to-end equivalence
//! check.
//!
//! [`BenchReport::to_json`] serializes the measurement for
//! `BENCH_kernels.json`, the artifact the CI bench smoke job tracks.

use bpred_aliasing::batch::{self, ThreeCCell};
use bpred_aliasing::three_c::ThreeCClassifier;
use bpred_core::index::IndexFunction;
use bpred_core::spec::parse_spec;
use bpred_results::json::Json;
use bpred_sim::engine::{self, NovelPolicy};
use bpred_sim::experiments::workload_seed;
use bpred_sim::kernel::{self, PredictorKernel};
use bpred_sim::runner::parallel_map;
use bpred_trace::cache;
use bpred_trace::workload::IbsBenchmark;
use std::time::Instant;

/// The quick-campaign trace-length cap (`ExperimentOpts::len_for`).
pub const QUICK_LEN_CAP: u64 = 120_000;

/// One named list of predictor specs to race.
#[derive(Debug, Clone)]
pub struct BenchCase {
    /// Case name (one row of the report).
    pub name: &'static str,
    /// The predictor specs the case drives; every spec must have a
    /// kernel fast path.
    pub specs: Vec<String>,
}

/// The default case list: the sweep shapes of the paper's fig. 5 and
/// fig. 7 plus the gskew variant axis, all kernel-eligible.
pub fn default_cases() -> Vec<BenchCase> {
    vec![
        BenchCase {
            name: "gshare-size",
            specs: (6..=13).map(|n| format!("gshare:n={n},h=4")).collect(),
        },
        BenchCase {
            name: "gskew-size",
            specs: (5..=12).map(|n| format!("gskew:n={n},h=4")).collect(),
        },
        BenchCase {
            name: "gskew-history",
            specs: (0..=8).map(|h| format!("gskew:n=12,h={h}")).collect(),
        },
        BenchCase {
            name: "variants",
            specs: vec![
                "bimodal:n=12".into(),
                "gselect:n=10,h=6".into(),
                "egskew:n=10,h=6".into(),
                "gskew:n=10,h=6,update=total".into(),
                "gskew:n=10,h=6,banks=5".into(),
                "gskew:n=10,h=6,skew=off".into(),
            ],
        },
    ]
}

/// The timing of one [`BenchCase`] across all workloads.
#[derive(Debug, Clone)]
pub struct CaseMeasurement {
    /// Case name.
    pub name: &'static str,
    /// Number of predictor specs driven.
    pub specs: usize,
    /// Record applications per path (records × specs, summed over
    /// workloads).
    pub applications: u64,
    /// CPU seconds spent in the dyn pass.
    pub dyn_seconds: f64,
    /// CPU seconds spent in the kernels (summed across workers).
    pub kernel_seconds: f64,
    /// Whether every kernel result matched the dyn result bit for bit.
    pub matched: bool,
}

impl CaseMeasurement {
    /// Dyn-path throughput in record applications per second.
    pub fn dyn_rate(&self) -> f64 {
        rate(self.applications, self.dyn_seconds)
    }

    /// Kernel-path throughput in record applications per second.
    pub fn kernel_rate(&self) -> f64 {
        rate(self.applications, self.kernel_seconds)
    }

    /// Kernel speedup over the dyn path (CPU-time ratio).
    pub fn speedup(&self) -> f64 {
        if self.kernel_seconds == 0.0 {
            0.0
        } else {
            self.dyn_seconds / self.kernel_seconds
        }
    }
}

fn rate(applications: u64, seconds: f64) -> f64 {
    if seconds == 0.0 {
        0.0
    } else {
        applications as f64 / seconds
    }
}

/// The quick three-C sweep shape raced by [`run_aliasing`]: the fig-1/2
/// size axis at two history lengths, both indexed flavors.
pub fn default_aliasing_grid() -> Vec<ThreeCCell> {
    let mut cells = Vec::new();
    for h in [4u32, 12] {
        for n in 6..=13 {
            for func in [IndexFunction::Gshare, IndexFunction::Gselect] {
                cells.push(ThreeCCell {
                    entries_log2: n,
                    history_bits: h,
                    func,
                });
            }
        }
    }
    cells
}

/// The timing of one three-C grid across all workloads: per-config
/// classifier walks vs the batched single-pass engine.
#[derive(Debug, Clone)]
pub struct AliasingMeasurement {
    /// Grid cells classified.
    pub cells: usize,
    /// Record applications per path (records × cells, summed over
    /// workloads) — the work both paths account for, however many trace
    /// traversals they need to do it.
    pub applications: u64,
    /// CPU seconds spent in the per-configuration classifiers.
    pub dyn_seconds: f64,
    /// CPU seconds spent in the batched passes (summed across workers).
    pub batch_seconds: f64,
    /// Whether every batched cell matched the classifier bit for bit —
    /// raw counts and the derived breakdown.
    pub matched: bool,
}

impl AliasingMeasurement {
    /// Per-config-path throughput in record applications per second.
    pub fn dyn_rate(&self) -> f64 {
        rate(self.applications, self.dyn_seconds)
    }

    /// Batched-path throughput in record applications per second.
    pub fn batch_rate(&self) -> f64 {
        rate(self.applications, self.batch_seconds)
    }

    /// Batched speedup over the per-config path (CPU-time ratio).
    pub fn speedup(&self) -> f64 {
        if self.batch_seconds == 0.0 {
            0.0
        } else {
            self.dyn_seconds / self.batch_seconds
        }
    }

    /// The JSON fragment stored under `aliasing` in the bench report.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cells", Json::Num(self.cells as f64)),
            ("applications", Json::Num(self.applications as f64)),
            ("dyn_seconds", Json::Num(self.dyn_seconds)),
            ("batch_seconds", Json::Num(self.batch_seconds)),
            ("dyn_rate", Json::Num(self.dyn_rate())),
            ("batch_rate", Json::Num(self.batch_rate())),
            ("speedup", Json::Num(self.speedup())),
            ("matched", Json::Bool(self.matched)),
        ])
    }
}

/// Race one three-C grid over the six IBS-like workloads: the
/// per-configuration [`ThreeCClassifier`] (one full trace walk per cell)
/// against the batched engine ([`kernel::run_three_c_units`]: one
/// direct-mapped kernel pass per cell plus one shared-distance pass per
/// distinct history). Both paths are timed as summed CPU seconds and
/// compared cell by cell — counts must be identical integer for integer,
/// and the derived breakdowns bit for bit.
pub fn run_aliasing(cells: &[ThreeCCell], quick: bool, threads: usize) -> AliasingMeasurement {
    let seed = workload_seed();
    let mut applications = 0u64;
    let mut dyn_seconds = 0.0;
    let mut batch_seconds = 0.0;
    let mut matched = true;
    for bench in IbsBenchmark::all() {
        let len = if quick {
            bench.default_len().min(QUICK_LEN_CAP)
        } else {
            bench.default_len()
        };
        let (trace, cols) = cache::records_and_columns(bench, len, seed);
        applications += trace.len() as u64 * cells.len() as u64;

        let trace_ref = &trace;
        let timed_dyn: Vec<_> = parallel_map(cells.to_vec(), threads, move |cell| {
            let start = Instant::now();
            let counts = ThreeCClassifier::new(cell.entries_log2, cell.history_bits, cell.func)
                .run_counts(trace_ref.iter().copied());
            (counts, start.elapsed().as_secs_f64())
        });
        dyn_seconds += timed_dyn.iter().map(|(_, s)| s).sum::<f64>();

        let groups = batch::fa_groups(cells);
        let (dm_done, fa_done) = kernel::run_three_c_units(cells, &groups, &cols, threads);
        batch_seconds += dm_done.iter().map(|(_, ms)| ms).sum::<f64>() / 1e3
            + fa_done.iter().map(|(_, ms)| ms).sum::<f64>() / 1e3;
        let dm: Vec<_> = dm_done.into_iter().map(|(c, _)| c).collect();
        let fa: Vec<_> = fa_done.into_iter().map(|(c, _)| c).collect();
        let batched = batch::assemble(cells, &groups, &dm, &fa);
        for ((dyn_counts, _), batch_counts) in timed_dyn.iter().zip(&batched) {
            matched &=
                dyn_counts == batch_counts && dyn_counts.breakdown() == batch_counts.breakdown();
        }
    }
    AliasingMeasurement {
        cells: cells.len(),
        applications,
        dyn_seconds,
        batch_seconds,
        matched,
    }
}

/// A full `bpsim bench` measurement.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Whether trace lengths were capped at [`QUICK_LEN_CAP`].
    pub quick: bool,
    /// The per-benchmark trace-length cap in effect.
    pub len_cap: Option<u64>,
    /// Per-case measurements.
    pub cases: Vec<CaseMeasurement>,
    /// The batched three-C race, when the bench ran it
    /// ([`run_aliasing`]); `None` in kernel-only runs.
    pub aliasing: Option<AliasingMeasurement>,
}

impl BenchReport {
    /// Total record applications across cases.
    pub fn applications(&self) -> u64 {
        self.cases.iter().map(|c| c.applications).sum()
    }

    /// Total dyn CPU seconds.
    pub fn dyn_seconds(&self) -> f64 {
        self.cases.iter().map(|c| c.dyn_seconds).sum()
    }

    /// Total kernel CPU seconds.
    pub fn kernel_seconds(&self) -> f64 {
        self.cases.iter().map(|c| c.kernel_seconds).sum()
    }

    /// Overall kernel speedup (total CPU-time ratio).
    pub fn speedup(&self) -> f64 {
        if self.kernel_seconds() == 0.0 {
            0.0
        } else {
            self.dyn_seconds() / self.kernel_seconds()
        }
    }

    /// Whether every case's kernel results matched the dyn results.
    pub fn all_matched(&self) -> bool {
        self.cases.iter().all(|c| c.matched)
    }

    /// The JSON document written to `BENCH_kernels.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("version", Json::Num(1.0)),
            ("quick", Json::Bool(self.quick)),
            (
                "len_cap",
                match self.len_cap {
                    Some(cap) => Json::Num(cap as f64),
                    None => Json::Null,
                },
            ),
            (
                "cases",
                Json::Arr(
                    self.cases
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("name", Json::Str(c.name.to_string())),
                                ("specs", Json::Num(c.specs as f64)),
                                ("applications", Json::Num(c.applications as f64)),
                                ("dyn_seconds", Json::Num(c.dyn_seconds)),
                                ("kernel_seconds", Json::Num(c.kernel_seconds)),
                                ("dyn_rate", Json::Num(c.dyn_rate())),
                                ("kernel_rate", Json::Num(c.kernel_rate())),
                                ("speedup", Json::Num(c.speedup())),
                                ("matched", Json::Bool(c.matched)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "aliasing",
                match &self.aliasing {
                    Some(a) => a.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "overall",
                Json::obj(vec![
                    ("applications", Json::Num(self.applications() as f64)),
                    ("dyn_seconds", Json::Num(self.dyn_seconds())),
                    ("kernel_seconds", Json::Num(self.kernel_seconds())),
                    ("speedup", Json::Num(self.speedup())),
                    ("matched", Json::Bool(self.all_matched())),
                ]),
            ),
        ])
    }
}

/// Race `cases` over the six IBS-like workloads, dyn pass vs kernels.
///
/// `quick` caps every trace at [`QUICK_LEN_CAP`] conditional branches
/// (the quick-campaign lengths); `threads` bounds the kernel workers —
/// timing is per-run CPU seconds either way, so the speedup does not
/// depend on it.
///
/// # Panics
///
/// Panics if a case holds an invalid spec or one without a kernel fast
/// path — the case lists are bench-owned, so that is a bug, not input.
pub fn run(cases: &[BenchCase], quick: bool, threads: usize) -> BenchReport {
    let seed = workload_seed();
    let mut measurements = Vec::with_capacity(cases.len());
    for case in cases {
        let mut applications = 0u64;
        let mut dyn_seconds = 0.0;
        let mut kernel_seconds = 0.0;
        let mut matched = true;
        for bench in IbsBenchmark::all() {
            let len = if quick {
                bench.default_len().min(QUICK_LEN_CAP)
            } else {
                bench.default_len()
            };
            let trace = cache::materialize_seeded(bench, len, seed);
            let cols = cache::columns_seeded(bench, len, seed);
            applications += trace.len() as u64 * case.specs.len() as u64;

            let mut predictors: Vec<_> = case
                .specs
                .iter()
                .map(|s| parse_spec(s).unwrap_or_else(|e| panic!("bad bench spec `{s}`: {e}")))
                .collect();
            let start = Instant::now();
            let dyn_results = engine::run_many(&mut predictors, &trace, NovelPolicy::Count);
            dyn_seconds += start.elapsed().as_secs_f64();

            let kernels: Vec<PredictorKernel> = case
                .specs
                .iter()
                .map(|s| {
                    PredictorKernel::from_spec(
                        &bpred_core::spec::PredictorSpec::parse(s)
                            .unwrap_or_else(|e| panic!("bad bench spec `{s}`: {e}")),
                    )
                    .unwrap_or_else(|| panic!("bench spec `{s}` has no kernel"))
                })
                .collect();
            let cols = &cols;
            let timed: Vec<_> = parallel_map(kernels, threads, move |mut kernel| {
                let start = Instant::now();
                let result = kernel.run(cols);
                (result, start.elapsed().as_secs_f64())
            });
            for ((kernel_result, seconds), dyn_result) in timed.into_iter().zip(dyn_results) {
                kernel_seconds += seconds;
                matched &= kernel_result == dyn_result;
            }
        }
        measurements.push(CaseMeasurement {
            name: case.name,
            specs: case.specs.len(),
            applications,
            dyn_seconds,
            kernel_seconds,
            matched,
        });
    }
    BenchReport {
        quick,
        len_cap: quick.then_some(QUICK_LEN_CAP),
        cases: measurements,
        aliasing: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_bench_runs_and_serializes() {
        let cases = vec![BenchCase {
            name: "tiny",
            specs: vec!["gshare:n=8,h=4".into(), "gskew:n=8,h=4".into()],
        }];
        // Exercise the full path on one tiny case; `quick` lengths are
        // still too slow for a unit test, so shrink through the cache
        // seed-length axis by racing on the quick cap directly.
        let report = run(&cases, true, 2);
        assert_eq!(report.cases.len(), 1);
        let case = &report.cases[0];
        assert!(case.matched, "kernel diverged from the dyn engine");
        assert!(case.applications > 0);
        assert!(case.dyn_seconds > 0.0);
        assert!(case.kernel_seconds > 0.0);
        let doc = report.to_json();
        let text = doc.to_string_compact();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("quick").unwrap(), &Json::Bool(true));
        let overall = parsed.get("overall").unwrap();
        assert_eq!(overall.get("matched").unwrap(), &Json::Bool(true));
        assert!(overall.get("speedup").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn tiny_aliasing_race_matches_and_serializes() {
        // A two-cell grid keeps the per-config path affordable in a unit
        // test while still exercising the shared-distance FA pass (both
        // cells share one history).
        let cells = vec![
            ThreeCCell {
                entries_log2: 8,
                history_bits: 4,
                func: IndexFunction::Gshare,
            },
            ThreeCCell {
                entries_log2: 8,
                history_bits: 4,
                func: IndexFunction::Gselect,
            },
        ];
        let a = run_aliasing(&cells, true, 2);
        assert!(a.matched, "batched three-C diverged from the classifier");
        assert_eq!(a.cells, 2);
        assert!(a.applications > 0);
        assert!(a.dyn_seconds > 0.0);
        assert!(a.batch_seconds > 0.0);
        let mut report = run(&[], true, 1);
        report.aliasing = Some(a);
        let parsed = Json::parse(&report.to_json().to_string_compact()).unwrap();
        let aliasing = parsed.get("aliasing").unwrap();
        assert_eq!(aliasing.get("matched").unwrap(), &Json::Bool(true));
        assert!(aliasing.get("speedup").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn default_aliasing_grid_is_the_quick_sweep_shape() {
        let grid = default_aliasing_grid();
        assert_eq!(grid.len(), 2 * 8 * 2, "2 histories × 8 sizes × 2 fns");
        assert!(grid.iter().all(|c| (6..=13).contains(&c.entries_log2)));
        // Exactly two distinct FA groups: one shared-distance pass per
        // history, regardless of index function.
        assert_eq!(batch::fa_groups(&grid).len(), 2);
    }

    #[test]
    fn default_cases_are_kernel_eligible() {
        for case in default_cases() {
            for spec in &case.specs {
                let parsed = bpred_core::spec::PredictorSpec::parse(spec).unwrap();
                assert!(
                    PredictorKernel::from_spec(&parsed).is_some(),
                    "{spec} in case {} lacks a kernel",
                    case.name
                );
            }
        }
    }
}
