//! Shared helpers for the criterion benchmarks, plus [`kernel_bench`],
//! the tracked dyn-vs-kernel throughput measurement behind `bpsim bench`.

pub mod kernel_bench;

use bpred_trace::record::BranchRecord;
use bpred_trace::stream::TraceSourceExt;
use bpred_trace::workload::IbsBenchmark;

/// Materialize a bounded record stream once, so per-iteration bench cost
/// is the structure under test rather than workload generation.
pub fn materialize(bench: IbsBenchmark, conditionals: u64) -> Vec<BranchRecord> {
    bench
        .spec()
        .build()
        .take_conditionals(conditionals)
        .collect()
}

/// The workload used by the throughput benches.
pub fn default_bench() -> IbsBenchmark {
    IbsBenchmark::Groff
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_trace::record::BranchKind;

    #[test]
    fn materialize_bounds_conditionals() {
        let records = materialize(default_bench(), 1_000);
        let cond = records
            .iter()
            .filter(|r| r.kind == BranchKind::Conditional)
            .count();
        assert_eq!(cond, 1_000);
    }
}
