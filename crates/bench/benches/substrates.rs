//! Throughput of the substrates: workload generation, trace file I/O, and
//! the aliasing instruments (tagged tables, FA-LRU, stack distance).

use bpred_aliasing::cursor::PairCursor;
use bpred_aliasing::distance::LastUseDistance;
use bpred_aliasing::fully_assoc::TaggedFullyAssociative;
use bpred_aliasing::tagged::TaggedDirectMapped;
use bpred_bench::{default_bench, materialize};
use bpred_core::index::IndexFunction;
use bpred_trace::io::{read_binary, write_binary};
use bpred_trace::record::BranchKind;
use bpred_trace::stream::TraceSourceExt;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const TRACE_LEN: u64 = 50_000;

fn workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload-generation");
    group.throughput(Throughput::Elements(TRACE_LEN));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("ibs-groff", |b| {
        b.iter(|| {
            default_bench()
                .spec()
                .build()
                .take_conditionals(TRACE_LEN)
                .count()
        });
    });
    group.finish();
}

fn trace_io(c: &mut Criterion) {
    let records = materialize(default_bench(), TRACE_LEN);
    let mut serialized = Vec::new();
    write_binary(&mut serialized, records.iter().copied()).expect("in-memory write");
    let mut group = c.benchmark_group("trace-io");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("write-binary", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(serialized.len());
            write_binary(&mut buf, records.iter().copied()).expect("in-memory write");
            buf
        });
    });
    group.bench_function("read-binary", |b| {
        b.iter(|| read_binary(serialized.as_slice()).expect("valid trace"));
    });
    group.finish();
}

fn aliasing_instruments(c: &mut Criterion) {
    let records = materialize(default_bench(), TRACE_LEN);
    let mut group = c.benchmark_group("aliasing");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("tagged-direct-mapped", |b| {
        b.iter(|| {
            let mut cursor = PairCursor::new(8);
            let mut table = TaggedDirectMapped::new(12, IndexFunction::Gshare);
            for r in &records {
                if r.kind == BranchKind::Conditional {
                    table.access(&cursor.vector(r.pc));
                }
                cursor.advance(r);
            }
            table.misses()
        });
    });
    group.bench_function("tagged-fully-associative", |b| {
        b.iter(|| {
            let mut cursor = PairCursor::new(8);
            let mut table = TaggedFullyAssociative::new(4096);
            for r in &records {
                if r.kind == BranchKind::Conditional {
                    table.access(cursor.pair(r.pc));
                }
                cursor.advance(r);
            }
            table.misses()
        });
    });
    group.bench_function("stack-distance", |b| {
        b.iter(|| {
            let mut cursor = PairCursor::new(8);
            let mut distance = LastUseDistance::new();
            let mut sum = 0u64;
            for r in &records {
                if r.kind == BranchKind::Conditional {
                    sum += distance.observe(cursor.pair(r.pc)).unwrap_or(0);
                }
                cursor.advance(r);
            }
            sum
        });
    });
    group.finish();
}

fn duel_and_offenders(c: &mut Criterion) {
    use bpred_aliasing::offenders::OffenderAnalysis;
    use bpred_core::spec::parse_spec;
    use bpred_sim::duel::duel;
    use bpred_sim::engine::NovelPolicy;
    use bpred_trace::io2::{read_compact, write_compact};

    let records = materialize(default_bench(), TRACE_LEN);
    let mut group = c.benchmark_group("analysis");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("duel-gshare-vs-gskew", |b| {
        b.iter(|| {
            let mut p1 = parse_spec("gshare:n=12,h=8").expect("valid spec");
            let mut p2 = parse_spec("gskew:n=12,h=8").expect("valid spec");
            duel(
                &mut p1,
                &mut p2,
                records.iter().copied(),
                NovelPolicy::Count,
            )
        });
    });
    group.bench_function("offender-analysis", |b| {
        b.iter(|| {
            OffenderAnalysis::new(12, 8, IndexFunction::Gshare)
                .run(records.iter().copied())
                .total_aliasing()
        });
    });
    group.bench_function("write-compact", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            write_compact(&mut buf, records.iter().copied()).expect("in-memory write");
            buf
        });
    });
    let mut compact = Vec::new();
    write_compact(&mut compact, records.iter().copied()).expect("in-memory write");
    group.bench_function("read-compact", |b| {
        b.iter(|| read_compact(compact.as_slice()).expect("valid trace"));
    });
    group.finish();
}

criterion_group!(
    benches,
    workload_generation,
    trace_io,
    aliasing_instruments,
    duel_and_offenders
);
criterion_main!(benches);
