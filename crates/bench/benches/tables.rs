//! Regeneration benchmarks for the paper's tables: `cargo bench` runs a
//! quick-mode version of each table harness (table 1 and table 2), timing
//! the full pipeline that `bpsim experiment table1|table2` executes.

use bpred_sim::experiments::{self, ExperimentOpts};
use criterion::{criterion_group, criterion_main, Criterion};

fn quick_opts() -> ExperimentOpts {
    ExperimentOpts {
        len_override: Some(20_000),
        quick: true,
        ..ExperimentOpts::default()
    }
}

fn table_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for id in ["table1", "table2"] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let output = experiments::run(id, &quick_opts()).expect("experiment id exists");
                assert!(!output.tables.is_empty());
                output
            });
        });
    }
    group.finish();
}

criterion_group!(benches, table_benches);
criterion_main!(benches);
