//! Regeneration benchmarks for the paper's figures: `cargo bench` runs a
//! quick-mode version of every figure harness, timing the pipelines that
//! `bpsim experiment figN` executes at full length.
//!
//! The analytical figures (3, 9, 10) run at full fidelity; the
//! simulation-driven ones run on shortened workloads so a full
//! `cargo bench --workspace` stays laptop-sized.

use bpred_sim::experiments::{self, ExperimentOpts};
use criterion::{criterion_group, criterion_main, Criterion};

fn quick_opts(len: u64) -> ExperimentOpts {
    ExperimentOpts {
        len_override: Some(len),
        quick: true,
        ..ExperimentOpts::default()
    }
}

fn analytical_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures-analytical");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for id in ["fig3", "fig9", "fig10"] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let output =
                    experiments::run(id, &quick_opts(1_000)).expect("experiment id exists");
                assert!(!output.tables.is_empty());
                output
            });
        });
    }
    group.finish();
}

fn simulation_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures-simulated");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for id in [
        "fig1",
        "fig2",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig11",
        "fig12",
        "ablation-banks",
        "ablation-update",
        "ablation-counters",
        "ext-hybrid",
    ] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let output =
                    experiments::run(id, &quick_opts(4_000)).expect("experiment id exists");
                assert!(!output.tables.is_empty());
                output
            });
        });
    }
    group.finish();
}

criterion_group!(benches, analytical_figures, simulation_figures);
criterion_main!(benches);
