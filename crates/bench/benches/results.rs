//! Results-store benchmarks: fingerprinting, JSON round-trips, and the
//! put/get path the resume layer rides on every cell. These bound the
//! bookkeeping overhead a `--resume` run adds on top of simulation.

use bpred_results::campaign::CampaignArtifact;
use bpred_results::fingerprint::fnv1a_fields;
use bpred_results::record::{CellKey, ResultRecord};
use bpred_results::store::ResultsStore;
use criterion::{criterion_group, criterion_main, Criterion};

fn record(i: u64) -> ResultRecord {
    let key = CellKey {
        bench: "groff".to_string(),
        spec: format!("gskew:n={},h=8", 8 + (i % 8)),
        len: 1_000_000,
        seed: 0x5EED_0000 + i,
        policy: "count".to_string(),
    };
    let fingerprint = key.fingerprint("workload-params", "1");
    ResultRecord {
        experiment: "bench".to_string(),
        key,
        fingerprint,
        engine_version: "1".to_string(),
        conditional: 1_000_000,
        mispredicted: 48_123 + i,
        novel: 291,
        elapsed_ms: 104.2,
    }
}

fn fingerprinting(c: &mut Criterion) {
    let mut group = c.benchmark_group("results-fingerprint");
    group.bench_function("cell-key", |b| {
        let key = record(0).key;
        b.iter(|| key.fingerprint("workload-params-of-representative-length", "1"));
    });
    group.bench_function("fnv1a-fields", |b| {
        b.iter(|| fnv1a_fields(&["cell/v1", "groff", "gskew:n=12,h=8", "1000000", "5eed0000"]));
    });
    group.finish();
}

fn json_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("results-json");
    let rec = record(0);
    let text = rec.to_json().to_string_compact();
    group.bench_function("record-serialize", |b| {
        b.iter(|| rec.to_json().to_string_compact())
    });
    group.bench_function("record-parse", |b| {
        b.iter(|| {
            let json = bpred_results::json::Json::parse(&text).unwrap();
            ResultRecord::from_json(&json).unwrap()
        })
    });
    let artifact = CampaignArtifact {
        name: "bench".to_string(),
        engine_version: "1".to_string(),
        seed: 0x5EED_0000,
        experiments: Vec::new(),
    };
    group.bench_function("artifact-serialize", |b| {
        b.iter(|| artifact.to_pretty_string())
    });
    group.finish();
}

fn store_put_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("results-store");
    group.sample_size(20);
    let root = std::env::temp_dir().join(format!("bpred-bench-results-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut store = ResultsStore::open(&root).unwrap();
    // `put` includes the atomic write and index flush — the real
    // per-simulated-cell cost of --save-results.
    let mut i = 0u64;
    group.bench_function("put", |b| {
        b.iter(|| {
            i += 1;
            store.put(&record(i)).unwrap()
        })
    });
    let warm = record(1);
    group.bench_function("get-hit", |b| {
        b.iter(|| store.get(warm.fingerprint).expect("stored above"))
    });
    group.bench_function("get-miss", |b| b.iter(|| store.get(0xDEAD_BEEF)));
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, fingerprinting, json_roundtrip, store_put_get);
criterion_main!(benches);
