//! Prediction throughput of every predictor family: how many dynamic
//! branches per second each structure can simulate.

use bpred_bench::{default_bench, materialize};
use bpred_core::spec::parse_spec;
use bpred_sim::engine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const TRACE_LEN: u64 = 50_000;

fn predictor_throughput(c: &mut Criterion) {
    let records = materialize(default_bench(), TRACE_LEN);
    let mut group = c.benchmark_group("predict+update");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for spec in [
        "bimodal:n=12",
        "gshare:n=12,h=8",
        "gselect:n=12,h=8",
        "gskew:n=12,h=8",
        "gskew:n=12,h=8,banks=5",
        "gskew:n=12,h=8,update=total",
        "egskew:n=12,h=8",
        "mcfarling:n=12,h=8",
        "2bcgskew:n=12,h=8",
        "shgskew:n=12,h=8",
        "agree:n=12,h=8",
        "bimode:n=12,h=8",
        "pas:bht=10,l=8,n=12",
        "spas:bht=10,l=8,n=10",
        "falru:cap=4096,h=8",
        "setassoc:n=10,ways=4,h=8",
        "ideal:h=8",
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(spec), spec, |b, spec| {
            b.iter(|| {
                let mut predictor = parse_spec(spec).expect("valid spec");
                engine::run(&mut predictor, records.iter().copied())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, predictor_throughput);
criterion_main!(benches);
