//! Benchmarks the trace-cache + batched-engine sweep path against the
//! per-cell baseline it replaced: generating a fresh trace for every
//! (predictor, benchmark) cell and running each predictor alone.
//!
//! The batched path materializes the benchmark's records once and drives
//! the whole predictor column over them in a single `run_many` pass, so
//! it should win by well over the 1.5x acceptance bar.

use bpred_core::predictor::BranchPredictor;
use bpred_core::spec::parse_spec;
use bpred_sim::engine::{self, NovelPolicy};
use bpred_trace::cache;
use bpred_trace::stream::TraceSourceExt;
use bpred_trace::workload::IbsBenchmark;
use criterion::{criterion_group, criterion_main, Criterion};

const BENCH: IbsBenchmark = IbsBenchmark::Groff;
const LEN: u64 = 60_000;

fn specs() -> Vec<String> {
    (6..=11u32).map(|n| format!("gshare:n={n},h=4")).collect()
}

fn per_cell_fresh(specs: &[String]) -> Vec<f64> {
    specs
        .iter()
        .map(|spec| {
            let mut predictor = parse_spec(spec).expect("spec parses");
            let trace = BENCH.spec().build().take_conditionals(LEN);
            engine::run(&mut predictor, trace).mispredict_pct()
        })
        .collect()
}

fn cached_batched(specs: &[String]) -> Vec<f64> {
    let trace = cache::materialize(BENCH, LEN);
    let mut predictors: Vec<Box<dyn BranchPredictor>> = specs
        .iter()
        .map(|spec| parse_spec(spec).expect("spec parses"))
        .collect();
    engine::run_many(&mut predictors, &trace, NovelPolicy::Count)
        .into_iter()
        .map(|r| r.mispredict_pct())
        .collect()
}

fn sweep_benches(c: &mut Criterion) {
    let specs = specs();
    // Sanity check outside the timing loop: both paths must agree cell
    // for cell, otherwise the comparison is meaningless.
    assert_eq!(per_cell_fresh(&specs), cached_batched(&specs));

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("per_cell_fresh", |b| b.iter(|| per_cell_fresh(&specs)));
    group.bench_function("cached_batched", |b| b.iter(|| cached_batched(&specs)));
    group.finish();
}

criterion_group!(benches, sweep_benches);
criterion_main!(benches);
