//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! crate vendors the minimal subset of the proptest API that
//! `tests/properties.rs` uses: the [`Strategy`] trait with `prop_map`,
//! range / `any` / `Just` / tuple / `prop_oneof!` / collection-vec /
//! char-class-string strategies, and the `proptest!`, `prop_assert!`,
//! `prop_assert_eq!` and `prop_assume!` macros.
//!
//! Semantics match upstream where the tests can observe them: each
//! `proptest!` test body runs for a fixed number of generated cases
//! (256, upstream's default), `prop_assume!` rejects a case without
//! failing, and any `prop_assert*` failure panics with the formatted
//! message. Shrinking is not implemented — a failing case panics with
//! the raw inputs' iteration index instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Number of generated cases per `proptest!` test (upstream default).
pub const CASES: usize = 256;

/// Maximum rejected cases (via `prop_assume!`) before a test gives up.
pub const MAX_REJECTS: usize = CASES * 16;

/// The RNG driving generation. Deterministic per test name.
pub type TestRng = SmallRng;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; try another.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-domain generator, for [`any`].
pub trait Arbitrary {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: rand::SampleUniform + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// A boxed, object-safe strategy (used by [`prop_oneof!`]).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Uniform choice among boxed strategies; built by [`prop_oneof!`].
pub struct OneOf<T> {
    /// The alternatives; one is drawn uniformly per case.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs alternatives");
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// A character-class string strategy: `&'static str` patterns of the
/// form `[class]{lo,hi}` (the only regex shape the workspace's tests
/// use) generate strings of `lo..=hi` characters drawn uniformly from
/// the class. Classes support `a-z` ranges and `\x` escapes.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern `{self}`"));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

/// Parse `[class]{lo,hi}` into (alphabet, lo, hi).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let class_end = {
        // Find the unescaped closing bracket.
        let mut prev_backslash = false;
        rest.char_indices()
            .find(|&(_, c)| {
                let close = c == ']' && !prev_backslash;
                prev_backslash = c == '\\' && !prev_backslash;
                close
            })
            .map(|(i, _)| i)?
    };
    let class: Vec<char> = rest[..class_end].chars().collect();
    let reps = rest[class_end + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let lo: usize = reps.0.parse().ok()?;
    let hi: usize = reps.1.parse().ok()?;

    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        match class[i] {
            '\\' if i + 1 < class.len() => {
                alphabet.push(class[i + 1]);
                i += 2;
            }
            c if i + 2 < class.len() && class[i + 1] == '-' && class[i + 2] != ']' => {
                for v in c as u32..=class[i + 2] as u32 {
                    alphabet.push(char::from_u32(v)?);
                }
                i += 3;
            }
            c => {
                alphabet.push(c);
                i += 1;
            }
        }
    }
    (!alphabet.is_empty() && lo <= hi).then_some((alphabet, lo, hi))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A deterministic per-test seed derived from the test's name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Run one proptest-style test loop. Called by the `proptest!` macro.
///
/// # Panics
///
/// Panics when a case fails, or when too many cases are rejected.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_from_u64(seed_for(name));
    let mut passed = 0usize;
    let mut rejected = 0usize;
    let mut attempt = 0usize;
    while passed < CASES {
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= MAX_REJECTS,
                    "{name}: too many rejected cases ({rejected}) — \
                     prop_assume! condition is too strict"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("{name}: case {attempt} failed: {message}")
            }
        }
    }
}

/// Declare property tests. Each function parameter is drawn from its
/// strategy for every generated case.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)*
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

/// Assert a condition inside a `proptest!` body; failure fails the case
/// with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf {
            options: vec![$(
                ::std::boxed::Box::new($strategy)
                    as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
            )+],
        }
    };
}

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Just, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn class_pattern_parses_escapes_and_ranges() {
        let (alphabet, lo, hi) = parse_class_pattern("[a-z0-9:,=\\-{}]{0,40}").unwrap();
        assert_eq!(lo, 0);
        assert_eq!(hi, 40);
        for c in ['a', 'z', 'q', '0', '9', ':', ',', '=', '-', '{', '}'] {
            assert!(alphabet.contains(&c), "missing {c:?}");
        }
        assert!(!alphabet.contains(&'\\'));
        assert!(!alphabet.contains(&'A'));
    }

    #[test]
    fn string_strategy_respects_length_and_alphabet() {
        let mut rng = TestRng::seed_from_u64(1);
        let strategy = "[ab]{2,5}";
        for _ in 0..200 {
            let s = strategy.generate(&mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn oneof_hits_every_alternative() {
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::seed_from_u64(2);
        let seen: std::collections::HashSet<u8> =
            (0..200).map(|_| strategy.generate(&mut rng)).collect();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn vec_strategy_length_band() {
        let strategy = collection::vec(any::<bool>(), 3..7);
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strategy = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        let mut rng = TestRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(strategy.generate(&mut rng) < 19);
        }
    }

    proptest! {
        #[test]
        fn macro_roundtrip(x in 0u32..1000, flip in any::<bool>()) {
            prop_assume!(x != 999);
            let y = if flip { x + 1 } else { x };
            prop_assert!(y >= x, "y {y} < x {x}");
            prop_assert_eq!(y.saturating_sub(u32::from(flip)), x);
        }
    }
}
