//! The on-disk results store: content-addressed, atomic, checksummed,
//! byte-budgeted.
//!
//! Layout under the store root (default `.gskew/results/`):
//!
//! ```text
//! index.json                 fingerprint -> file/bytes/stamp map
//! records/<fp-hex>.json      {"checksum": "<fnv1a hex>", "record": {...}}
//! ```
//!
//! Every write goes through a tmp-file + rename, so a crashed or killed
//! process never leaves a half-written record or index visible. Loads
//! verify the stored checksum against the serialized record bytes and
//! that the record's fingerprint matches its address; a corrupt file is
//! treated as absent (the cell just re-simulates). [`ResultsStore::gc`]
//! evicts the oldest-inserted records until a byte budget holds.

use crate::fingerprint::{self, fnv1a};
use crate::json::Json;
use crate::record::ResultRecord;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The default store location, relative to the working directory.
pub const DEFAULT_STORE_DIR: &str = ".gskew/results";

#[derive(Debug, Clone)]
struct IndexEntry {
    file: String,
    bytes: u64,
    /// Monotonic insertion stamp; smallest is garbage-collected first.
    stamp: u64,
}

/// A results store rooted at one directory.
#[derive(Debug)]
pub struct ResultsStore {
    root: PathBuf,
    index: HashMap<u64, IndexEntry>,
    next_stamp: u64,
}

/// What one [`ResultsStore::gc`] pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Records deleted.
    pub removed: usize,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Bytes still resident after the pass.
    pub remaining_bytes: u64,
}

impl ResultsStore {
    /// Open (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns a message on filesystem errors or an unreadable index. A
    /// *missing* index is not an error — the store starts empty.
    pub fn open(root: impl Into<PathBuf>) -> Result<ResultsStore, String> {
        let root = root.into();
        fs::create_dir_all(root.join("records"))
            .map_err(|e| format!("create {}: {e}", root.display()))?;
        let mut store = ResultsStore {
            root,
            index: HashMap::new(),
            next_stamp: 0,
        };
        let index_path = store.index_path();
        match fs::read_to_string(&index_path) {
            Ok(text) => store.load_index(&text)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("read {}: {e}", index_path.display())),
        }
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of records in the index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total bytes of all indexed record files.
    pub fn total_bytes(&self) -> u64 {
        self.index.values().map(|e| e.bytes).sum()
    }

    /// Every indexed fingerprint, in unspecified order.
    pub fn fingerprints(&self) -> Vec<u64> {
        self.index.keys().copied().collect()
    }

    /// Whether a record with this fingerprint is indexed.
    pub fn contains(&self, fp: u64) -> bool {
        self.index.contains_key(&fp)
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.json")
    }

    fn record_path(&self, fp: u64) -> PathBuf {
        self.root
            .join("records")
            .join(format!("{}.json", fingerprint::to_hex(fp)))
    }

    /// Insert (or overwrite) a record, addressed by its fingerprint.
    ///
    /// # Errors
    ///
    /// Returns a message on filesystem errors.
    pub fn put(&mut self, record: &ResultRecord) -> Result<(), String> {
        let payload = record.to_json().to_string_compact();
        let wrapped = Json::obj(vec![
            (
                "checksum",
                Json::Str(fingerprint::to_hex(fnv1a(payload.as_bytes()))),
            ),
            (
                "record",
                Json::parse(&payload).expect("own serialization parses"),
            ),
        ])
        .to_string_compact();
        let path = self.record_path(record.fingerprint);
        write_atomic(&path, wrapped.as_bytes())?;
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.index.insert(
            record.fingerprint,
            IndexEntry {
                file: format!("records/{}.json", fingerprint::to_hex(record.fingerprint)),
                bytes: wrapped.len() as u64,
                stamp,
            },
        );
        self.persist_index()
    }

    /// Load the record with this fingerprint, or `None` when it is
    /// absent, unreadable, fails its checksum, or is filed under the
    /// wrong address — a corrupt record is indistinguishable from a
    /// missing one, so the caller simply re-simulates.
    pub fn get(&self, fp: u64) -> Option<ResultRecord> {
        self.load(fp).ok()
    }

    /// As [`Self::get`], surfacing *why* a record failed to load.
    ///
    /// # Errors
    ///
    /// Returns a message for missing/corrupt/misfiled records.
    pub fn load(&self, fp: u64) -> Result<ResultRecord, String> {
        if !self.index.contains_key(&fp) {
            return Err(format!(
                "fingerprint {} not indexed",
                fingerprint::to_hex(fp)
            ));
        }
        let path = self.record_path(fp);
        let text =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let wrapped = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let stored_checksum = wrapped
            .get("checksum")
            .and_then(Json::as_str)
            .and_then(fingerprint::from_hex)
            .ok_or_else(|| format!("{}: missing checksum", path.display()))?;
        let payload = wrapped
            .get("record")
            .ok_or_else(|| format!("{}: missing record body", path.display()))?;
        let canonical = payload.to_string_compact();
        if fnv1a(canonical.as_bytes()) != stored_checksum {
            return Err(format!("{}: checksum mismatch", path.display()));
        }
        let record =
            ResultRecord::from_json(payload).map_err(|e| format!("{}: {e}", path.display()))?;
        if record.fingerprint != fp {
            return Err(format!(
                "{}: record fingerprint {} filed under {}",
                path.display(),
                fingerprint::to_hex(record.fingerprint),
                fingerprint::to_hex(fp)
            ));
        }
        Ok(record)
    }

    /// Load every readable record (corrupt ones are skipped).
    pub fn records(&self) -> Vec<ResultRecord> {
        let mut fps = self.fingerprints();
        fps.sort_unstable();
        fps.into_iter().filter_map(|fp| self.get(fp)).collect()
    }

    /// Delete oldest-inserted records until at most `budget_bytes` of
    /// record files remain, then persist the shrunken index.
    ///
    /// # Errors
    ///
    /// Returns a message on filesystem errors (deletion of an
    /// already-missing file is not an error).
    pub fn gc(&mut self, budget_bytes: u64) -> Result<GcStats, String> {
        let mut stats = GcStats::default();
        let mut resident = self.total_bytes();
        while resident > budget_bytes {
            let oldest = self
                .index
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&fp, _)| fp)
                .expect("nonzero resident bytes implies an entry");
            let entry = self.index.remove(&oldest).expect("key just found");
            match fs::remove_file(self.root.join(&entry.file)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(format!("remove {}: {e}", entry.file)),
            }
            resident -= entry.bytes;
            stats.removed += 1;
            stats.freed_bytes += entry.bytes;
        }
        stats.remaining_bytes = resident;
        self.persist_index()?;
        Ok(stats)
    }

    fn persist_index(&self) -> Result<(), String> {
        let mut entries: Vec<(&u64, &IndexEntry)> = self.index.iter().collect();
        entries.sort_by_key(|(fp, _)| **fp);
        let json = Json::obj(vec![
            ("version", Json::Num(1.0)),
            ("next_stamp", Json::Num(self.next_stamp as f64)),
            (
                "entries",
                Json::Arr(
                    entries
                        .into_iter()
                        .map(|(fp, e)| {
                            Json::obj(vec![
                                ("fingerprint", Json::Str(fingerprint::to_hex(*fp))),
                                ("file", Json::Str(e.file.clone())),
                                ("bytes", Json::Num(e.bytes as f64)),
                                ("stamp", Json::Num(e.stamp as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        write_atomic(&self.index_path(), json.to_string_compact().as_bytes())
    }

    fn load_index(&mut self, text: &str) -> Result<(), String> {
        let json = Json::parse(text).map_err(|e| format!("index.json: {e}"))?;
        self.next_stamp = json
            .get("next_stamp")
            .and_then(Json::as_u64)
            .ok_or("index.json: missing next_stamp")?;
        let entries = json
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("index.json: missing entries")?;
        for entry in entries {
            let fp = entry
                .get("fingerprint")
                .and_then(Json::as_str)
                .and_then(fingerprint::from_hex)
                .ok_or("index.json: bad fingerprint")?;
            let file = entry
                .get("file")
                .and_then(Json::as_str)
                .ok_or("index.json: missing file")?
                .to_string();
            let bytes = entry
                .get("bytes")
                .and_then(Json::as_u64)
                .ok_or("index.json: missing bytes")?;
            let stamp = entry
                .get("stamp")
                .and_then(Json::as_u64)
                .ok_or("index.json: missing stamp")?;
            self.index.insert(fp, IndexEntry { file, bytes, stamp });
        }
        Ok(())
    }
}

/// Write `contents` to `path` atomically: a tmp file in the same
/// directory, flushed, then renamed over the destination.
///
/// # Errors
///
/// Returns a message on filesystem errors.
pub fn write_atomic(path: &Path, contents: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    fs::write(&tmp, contents).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CellKey;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bpred-results-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(spec: &str, mispredicted: u64) -> ResultRecord {
        let key = CellKey {
            bench: "groff".into(),
            spec: spec.into(),
            len: 1_000,
            seed: 0x5EED_0000,
            policy: "count".into(),
        };
        let fingerprint = key.fingerprint("wl", "1");
        ResultRecord {
            experiment: "test".into(),
            key,
            fingerprint,
            engine_version: "1".into(),
            conditional: 1_000,
            mispredicted,
            novel: 0,
            elapsed_ms: 1.0,
        }
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let root = temp_root("roundtrip");
        let mut store = ResultsStore::open(&root).unwrap();
        let r = record("gshare:n=10,h=4", 123);
        store.put(&r).unwrap();
        assert_eq!(store.get(r.fingerprint), Some(r.clone()));
        assert_eq!(store.len(), 1);
        assert!(store.total_bytes() > 0);

        // A fresh handle sees the persisted state.
        let reopened = ResultsStore::open(&root).unwrap();
        assert_eq!(reopened.get(r.fingerprint), Some(r.clone()));
        assert!(reopened.contains(r.fingerprint));
        assert_eq!(reopened.records(), vec![r]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_record_fails_checksum_and_reads_as_absent() {
        let root = temp_root("corrupt");
        let mut store = ResultsStore::open(&root).unwrap();
        let r = record("gshare:n=10,h=4", 123);
        store.put(&r).unwrap();
        let path = store.record_path(r.fingerprint);
        let tampered = fs::read_to_string(&path).unwrap().replace("123", "124");
        fs::write(&path, tampered).unwrap();
        let e = store.load(r.fingerprint).unwrap_err();
        assert!(e.contains("checksum"), "{e}");
        assert_eq!(store.get(r.fingerprint), None);
        assert!(store.records().is_empty(), "corrupt records are skipped");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn misfiled_record_is_rejected() {
        let root = temp_root("misfiled");
        let mut store = ResultsStore::open(&root).unwrap();
        let a = record("gshare:n=10,h=4", 1);
        let b = record("gshare:n=11,h=4", 2);
        store.put(&a).unwrap();
        store.put(&b).unwrap();
        // File b's bytes under a's address.
        fs::copy(
            store.record_path(b.fingerprint),
            store.record_path(a.fingerprint),
        )
        .unwrap();
        let e = store.load(a.fingerprint).unwrap_err();
        assert!(e.contains("filed under"), "{e}");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn gc_enforces_budget_oldest_first() {
        let root = temp_root("gc");
        let mut store = ResultsStore::open(&root).unwrap();
        let first = record("gshare:n=8,h=4", 1);
        let second = record("gshare:n=9,h=4", 2);
        let third = record("gshare:n=10,h=4", 3);
        for r in [&first, &second, &third] {
            store.put(r).unwrap();
        }
        // A budget one byte short of the total must evict exactly the
        // oldest record.
        let budget = store.total_bytes() - 1;
        let stats = store.gc(budget).unwrap();
        assert_eq!(stats.removed, 1);
        assert!(stats.freed_bytes > 0);
        assert!(store.total_bytes() <= budget);
        assert_eq!(store.get(first.fingerprint), None, "oldest evicted");
        assert!(store.get(second.fingerprint).is_some());
        assert!(store.get(third.fingerprint).is_some());
        assert!(!store.record_path(first.fingerprint).exists());

        // A zero budget clears everything; gc on an empty store is a no-op.
        let stats = store.gc(0).unwrap();
        assert_eq!(stats.removed, 2);
        assert_eq!(stats.remaining_bytes, 0);
        assert!(store.is_empty());
        assert_eq!(store.gc(0).unwrap(), GcStats::default());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn overwrite_same_fingerprint_keeps_one_entry() {
        let root = temp_root("overwrite");
        let mut store = ResultsStore::open(&root).unwrap();
        let r = record("gshare:n=10,h=4", 123);
        store.put(&r).unwrap();
        store.put(&r).unwrap();
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn no_tmp_files_survive_writes() {
        let root = temp_root("tmp");
        let mut store = ResultsStore::open(&root).unwrap();
        store.put(&record("gshare:n=10,h=4", 9)).unwrap();
        let stray: Vec<_> = fs::read_dir(root.join("records"))
            .unwrap()
            .chain(fs::read_dir(&root).unwrap())
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.path()
                    .extension()
                    .map(|x| x.to_string_lossy().starts_with("tmp"))
                    .unwrap_or(false)
            })
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
        fs::remove_dir_all(&root).unwrap();
    }
}
