//! The canonical result record: one simulated cell, durably.

use crate::fingerprint::{self, fnv1a_fields};
use crate::json::Json;
use std::fmt;

/// Everything that identifies a cell: the coordinates the paper's grids
/// compare across. Two cells with equal keys (and equal engine/workload
/// versions) are guaranteed to produce identical metrics, which is what
/// makes resume sound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Benchmark name (`groff`, `gs`, …).
    pub bench: String,
    /// Full predictor spec string (`gskew:n=12,h=8`).
    pub spec: String,
    /// Dynamic conditional branch count simulated.
    pub len: u64,
    /// Workload seed base the trace was generated from.
    pub seed: u64,
    /// Novel-reference accounting policy (`count` | `exclude`).
    pub policy: String,
}

impl CellKey {
    /// The cell's stable fingerprint, covering the key itself plus a
    /// fingerprint of the full workload parameter set and the engine
    /// version. Any change to spec, workload shape, length, seed,
    /// accounting or engine invalidates the record.
    pub fn fingerprint(&self, workload_params: &str, engine_version: &str) -> u64 {
        fnv1a_fields(&[
            "cell/v1",
            &self.bench,
            &self.spec,
            &self.len.to_string(),
            &self.seed.to_string(),
            &self.policy,
            workload_params,
            engine_version,
        ])
    }
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} (len {}, seed {:#x}, {})",
            self.spec, self.bench, self.len, self.seed, self.policy
        )
    }
}

/// One persisted experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRecord {
    /// Experiment id the cell was produced under (`fig5`, `adhoc`, …).
    /// Informational: it is not part of the fingerprint, so experiments
    /// sharing a cell share the record.
    pub experiment: String,
    /// The cell coordinates.
    pub key: CellKey,
    /// The stable fingerprint (see [`CellKey::fingerprint`]).
    pub fingerprint: u64,
    /// Engine version the record was produced by.
    pub engine_version: String,
    /// Dynamic conditional branches predicted.
    pub conditional: u64,
    /// Mispredicted conditional branches.
    pub mispredicted: u64,
    /// References flagged novel by the predictor.
    pub novel: u64,
    /// Wall-clock simulation time in milliseconds. For batched passes
    /// this is the whole pass divided evenly over its cells.
    pub elapsed_ms: f64,
}

impl ResultRecord {
    /// Misprediction percentage, recomputed from the stored counts (so a
    /// resumed table is byte-identical to a simulated one).
    pub fn mispredict_pct(&self) -> f64 {
        if self.conditional == 0 {
            0.0
        } else {
            100.0 * self.mispredicted as f64 / self.conditional as f64
        }
    }

    /// Serialize to a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("experiment", Json::Str(self.experiment.clone())),
            ("bench", Json::Str(self.key.bench.clone())),
            ("spec", Json::Str(self.key.spec.clone())),
            ("len", Json::Num(self.key.len as f64)),
            ("seed", Json::Str(fingerprint::to_hex(self.key.seed))),
            ("policy", Json::Str(self.key.policy.clone())),
            (
                "fingerprint",
                Json::Str(fingerprint::to_hex(self.fingerprint)),
            ),
            ("engine_version", Json::Str(self.engine_version.clone())),
            ("conditional", Json::Num(self.conditional as f64)),
            ("mispredicted", Json::Num(self.mispredicted as f64)),
            ("novel", Json::Num(self.novel as f64)),
            ("elapsed_ms", Json::Num(self.elapsed_ms)),
        ])
    }

    /// Deserialize from a JSON object produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(json: &Json) -> Result<ResultRecord, String> {
        let text = |field: &str| -> Result<String, String> {
            json.get(field)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record missing string field `{field}`"))
        };
        let num = |field: &str| -> Result<u64, String> {
            json.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("record missing integer field `{field}`"))
        };
        let hex = |field: &str| -> Result<u64, String> {
            text(field).and_then(|s| {
                fingerprint::from_hex(&s).ok_or_else(|| format!("bad hex in field `{field}`"))
            })
        };
        Ok(ResultRecord {
            experiment: text("experiment")?,
            key: CellKey {
                bench: text("bench")?,
                spec: text("spec")?,
                len: num("len")?,
                seed: hex("seed")?,
                policy: text("policy")?,
            },
            fingerprint: hex("fingerprint")?,
            engine_version: text("engine_version")?,
            conditional: num("conditional")?,
            mispredicted: num("mispredicted")?,
            novel: num("novel")?,
            elapsed_ms: json
                .get("elapsed_ms")
                .and_then(Json::as_f64)
                .ok_or("record missing number field `elapsed_ms`")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultRecord {
        ResultRecord {
            experiment: "fig5".into(),
            key: CellKey {
                bench: "groff".into(),
                spec: "gskew:n=12,h=4".into(),
                len: 120_000,
                seed: 0x5EED_0000,
                policy: "count".into(),
            },
            fingerprint: 0xfeed_beef_dead_cafe,
            engine_version: "1".into(),
            conditional: 120_000,
            mispredicted: 7_345,
            novel: 0,
            elapsed_ms: 41.5,
        }
    }

    #[test]
    fn json_roundtrip() {
        let record = sample();
        let text = record.to_json().to_string_compact();
        let back = ResultRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn pct_recomputes_from_counts() {
        let record = sample();
        assert!((record.mispredict_pct() - 100.0 * 7_345.0 / 120_000.0).abs() < 1e-12);
        let empty = ResultRecord {
            conditional: 0,
            ..sample()
        };
        assert_eq!(empty.mispredict_pct(), 0.0);
    }

    #[test]
    fn fingerprint_covers_every_coordinate() {
        let base = sample().key;
        let fp = base.fingerprint("wl", "1");
        let mut spec = base.clone();
        spec.spec = "gshare:n=14,h=4".into();
        let mut len = base.clone();
        len.len += 1;
        let mut seed = base.clone();
        seed.seed += 1;
        let mut policy = base.clone();
        policy.policy = "exclude".into();
        let mut bench = base.clone();
        bench.bench = "gs".into();
        for other in [&spec, &len, &seed, &policy, &bench] {
            assert_ne!(other.fingerprint("wl", "1"), fp, "{other:?}");
        }
        assert_ne!(base.fingerprint("wl2", "1"), fp, "workload params");
        assert_ne!(base.fingerprint("wl", "2"), fp, "engine version");
        assert_eq!(base.fingerprint("wl", "1"), fp, "stable for equal inputs");
    }

    #[test]
    fn missing_fields_error_by_name() {
        let mut json = sample().to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "mispredicted");
        }
        let e = ResultRecord::from_json(&json).unwrap_err();
        assert!(e.contains("mispredicted"), "{e}");
    }
}
