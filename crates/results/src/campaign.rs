//! Campaign artifacts and regression diffing.
//!
//! A *campaign* is a named set of experiments run as one unit; its
//! artifact (`campaign.json`) captures every result table cell so two
//! artifacts — a committed baseline and a fresh candidate — can be
//! compared cell by cell. Numeric cells are compared under an absolute
//! tolerance; non-numeric cells (labels) must match exactly; structural
//! drift (missing experiments, tables or rows) is always a regression.

use crate::json::Json;
use std::fmt;

/// One result table inside a campaign artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct TableData {
    /// The table's title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (cells as rendered strings, e.g. `"4.02"`).
    pub rows: Vec<Vec<String>>,
}

/// One experiment's tables inside a campaign artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentData {
    /// Experiment id (`fig5`, `table2`, …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The experiment's tables in emission order.
    pub tables: Vec<TableData>,
}

/// A complete campaign artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignArtifact {
    /// Campaign name (`quick`, …).
    pub name: String,
    /// Engine version that produced it.
    pub engine_version: String,
    /// Workload seed base the campaign ran with.
    pub seed: u64,
    /// The experiments, in run order.
    pub experiments: Vec<ExperimentData>,
}

impl CampaignArtifact {
    /// Serialize the artifact.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("engine_version", Json::Str(self.engine_version.clone())),
            ("seed", Json::Str(crate::fingerprint::to_hex(self.seed))),
            (
                "experiments",
                Json::Arr(
                    self.experiments
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("id", Json::Str(e.id.clone())),
                                ("title", Json::Str(e.title.clone())),
                                (
                                    "tables",
                                    Json::Arr(e.tables.iter().map(table_to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serialize with one experiment per line — still valid JSON, but
    /// diffable in review.
    pub fn to_pretty_string(&self) -> String {
        // Render compactly then add line breaks between experiments: the
        // artifact is machine-diffed, the breaks are purely for humans.
        self.to_json()
            .to_string_compact()
            .replace("},{\"id\":", "},\n{\"id\":")
            + "\n"
    }

    /// Parse an artifact produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming what is missing or malformed.
    pub fn from_json(json: &Json) -> Result<CampaignArtifact, String> {
        let name = json
            .get("name")
            .and_then(Json::as_str)
            .ok_or("campaign missing name")?
            .to_string();
        let engine_version = json
            .get("engine_version")
            .and_then(Json::as_str)
            .ok_or("campaign missing engine_version")?
            .to_string();
        let seed = json
            .get("seed")
            .and_then(Json::as_str)
            .and_then(crate::fingerprint::from_hex)
            .ok_or("campaign missing seed")?;
        let experiments = json
            .get("experiments")
            .and_then(Json::as_arr)
            .ok_or("campaign missing experiments")?
            .iter()
            .map(|e| {
                Ok(ExperimentData {
                    id: e
                        .get("id")
                        .and_then(Json::as_str)
                        .ok_or("experiment missing id")?
                        .to_string(),
                    title: e
                        .get("title")
                        .and_then(Json::as_str)
                        .ok_or("experiment missing title")?
                        .to_string(),
                    tables: e
                        .get("tables")
                        .and_then(Json::as_arr)
                        .ok_or("experiment missing tables")?
                        .iter()
                        .map(table_from_json)
                        .collect::<Result<Vec<_>, String>>()?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(CampaignArtifact {
            name,
            engine_version,
            seed,
            experiments,
        })
    }

    /// Parse an artifact from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a malformed artifact.
    pub fn parse(text: &str) -> Result<CampaignArtifact, String> {
        Self::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

fn table_to_json(table: &TableData) -> Json {
    let strings = |items: &[String]| Json::Arr(items.iter().cloned().map(Json::Str).collect());
    Json::obj(vec![
        ("title", Json::Str(table.title.clone())),
        ("columns", strings(&table.columns)),
        (
            "rows",
            Json::Arr(table.rows.iter().map(|r| strings(r)).collect()),
        ),
    ])
}

fn table_from_json(json: &Json) -> Result<TableData, String> {
    let strings = |value: &Json, what: &str| -> Result<Vec<String>, String> {
        value
            .as_arr()
            .ok_or(format!("table {what} is not an array"))?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or(format!("table {what} holds a non-string"))
            })
            .collect()
    };
    Ok(TableData {
        title: json
            .get("title")
            .and_then(Json::as_str)
            .ok_or("table missing title")?
            .to_string(),
        columns: strings(
            json.get("columns").ok_or("table missing columns")?,
            "columns",
        )?,
        rows: json
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("table missing rows")?
            .iter()
            .map(|r| strings(r, "row"))
            .collect::<Result<Vec<_>, String>>()?,
    })
}

/// One cell (or structural) difference between two artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// `experiment/table-title/row-label/column` path of the cell, or
    /// the missing structure.
    pub path: String,
    /// The baseline value (`-` when absent).
    pub baseline: String,
    /// The candidate value (`-` when absent).
    pub candidate: String,
    /// Absolute numeric delta when both sides parse as numbers.
    pub delta: Option<f64>,
}

impl fmt::Display for CellDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.delta {
            Some(delta) => write!(
                f,
                "{}: {} -> {} (|delta| {:.4})",
                self.path, self.baseline, self.candidate, delta
            ),
            None => write!(f, "{}: {} -> {}", self.path, self.baseline, self.candidate),
        }
    }
}

/// The outcome of comparing a candidate artifact against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignDiff {
    /// Cells compared (both sides present).
    pub cells_compared: usize,
    /// Regressions beyond tolerance, plus structural mismatches.
    pub regressions: Vec<CellDiff>,
}

impl CampaignDiff {
    /// `true` when nothing regressed.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }

    /// A per-cell report of every regression.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for diff in &self.regressions {
            out.push_str(&diff.to_string());
            out.push('\n');
        }
        out
    }
}

/// Compare `candidate` against `baseline` cell by cell.
///
/// Numeric cells regress when `|baseline - candidate| > tolerance`
/// (absolute, in the cell's own unit — misprediction percentage points
/// for the sweep tables). Non-numeric cells regress on any inequality.
/// Experiments, tables or rows present on one side only are structural
/// regressions.
pub fn diff(
    baseline: &CampaignArtifact,
    candidate: &CampaignArtifact,
    tolerance: f64,
) -> CampaignDiff {
    let mut out = CampaignDiff::default();
    let absent = |path: String, baseline: &str, candidate: &str| CellDiff {
        path,
        baseline: baseline.to_string(),
        candidate: candidate.to_string(),
        delta: None,
    };
    for b_exp in &baseline.experiments {
        let Some(c_exp) = candidate.experiments.iter().find(|e| e.id == b_exp.id) else {
            out.regressions
                .push(absent(b_exp.id.clone(), "present", "missing"));
            continue;
        };
        for (t, b_table) in b_exp.tables.iter().enumerate() {
            let path = format!("{}/{}", b_exp.id, b_table.title);
            let Some(c_table) = c_exp.tables.get(t) else {
                out.regressions.push(absent(path, "present", "missing"));
                continue;
            };
            for (r, b_row) in b_table.rows.iter().enumerate() {
                let row_label = b_row.first().cloned().unwrap_or_else(|| r.to_string());
                let Some(c_row) = c_table.rows.get(r) else {
                    out.regressions.push(absent(
                        format!("{path}/{row_label}"),
                        "present",
                        "missing",
                    ));
                    continue;
                };
                for (col, b_cell) in b_row.iter().enumerate() {
                    let column = b_table
                        .columns
                        .get(col)
                        .cloned()
                        .unwrap_or_else(|| col.to_string());
                    let cell_path = format!("{path}/{row_label}/{column}");
                    let Some(c_cell) = c_row.get(col) else {
                        out.regressions.push(absent(cell_path, b_cell, "missing"));
                        continue;
                    };
                    out.cells_compared += 1;
                    match (b_cell.parse::<f64>(), c_cell.parse::<f64>()) {
                        (Ok(b), Ok(c)) => {
                            let delta = (b - c).abs();
                            if delta > tolerance {
                                out.regressions.push(CellDiff {
                                    path: cell_path,
                                    baseline: b_cell.clone(),
                                    candidate: c_cell.clone(),
                                    delta: Some(delta),
                                });
                            }
                        }
                        _ => {
                            if b_cell != c_cell {
                                out.regressions.push(CellDiff {
                                    path: cell_path,
                                    baseline: b_cell.clone(),
                                    candidate: c_cell.clone(),
                                    delta: None,
                                });
                            }
                        }
                    }
                }
            }
            if c_table.rows.len() > b_table.rows.len() {
                out.regressions.push(absent(
                    format!("{path}/rows {}..{}", b_table.rows.len(), c_table.rows.len()),
                    "missing",
                    "present",
                ));
            }
        }
    }
    for c_exp in &candidate.experiments {
        if !baseline.experiments.iter().any(|e| e.id == c_exp.id) {
            out.regressions
                .push(absent(c_exp.id.clone(), "missing", "present"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(cell: &str) -> CampaignArtifact {
        CampaignArtifact {
            name: "quick".into(),
            engine_version: "1".into(),
            seed: 0x5EED_0000,
            experiments: vec![ExperimentData {
                id: "fig5".into(),
                title: "Figure 5".into(),
                tables: vec![TableData {
                    title: "gshare".into(),
                    columns: vec!["size".into(), "groff".into(), "gs".into()],
                    rows: vec![
                        vec!["64".into(), "9.41".into(), cell.into()],
                        vec!["128".into(), "8.02".into(), "8.77".into()],
                    ],
                }],
            }],
        }
    }

    #[test]
    fn artifact_json_roundtrip() {
        let a = artifact("9.12");
        let text = a.to_json().to_string_compact();
        assert_eq!(CampaignArtifact::parse(&text).unwrap(), a);
        // The pretty form parses too.
        assert_eq!(CampaignArtifact::parse(&a.to_pretty_string()).unwrap(), a);
    }

    #[test]
    fn identical_artifacts_diff_clean() {
        let d = diff(&artifact("9.12"), &artifact("9.12"), 0.0);
        assert!(d.is_clean());
        assert_eq!(d.cells_compared, 6);
        assert_eq!(d.report(), "");
    }

    #[test]
    fn perturbation_beyond_tolerance_is_reported_per_cell() {
        let d = diff(&artifact("9.12"), &artifact("9.52"), 0.25);
        assert_eq!(d.regressions.len(), 1);
        let cell = &d.regressions[0];
        assert_eq!(cell.path, "fig5/gshare/64/gs");
        assert!((cell.delta.unwrap() - 0.40).abs() < 1e-9);
        assert!(d.report().contains("9.12 -> 9.52"), "{}", d.report());
    }

    #[test]
    fn perturbation_within_tolerance_passes() {
        assert!(diff(&artifact("9.12"), &artifact("9.13"), 0.05).is_clean());
    }

    #[test]
    fn label_changes_always_regress() {
        let mut changed = artifact("9.12");
        changed.experiments[0].tables[0].rows[0][0] = "65".into();
        let d = diff(&artifact("9.12"), &changed, 10.0);
        // "64" vs "65" are both numeric; use a non-numeric label change.
        assert_eq!(d.regressions.len(), 0, "numeric labels obey tolerance");
        let mut renamed = artifact("9.12");
        renamed.experiments[0].tables[0].rows[0][0] = "n/a".into();
        let d = diff(&artifact("9.12"), &renamed, 10.0);
        assert_eq!(d.regressions.len(), 1);
        assert!(d.regressions[0].delta.is_none());
    }

    #[test]
    fn structural_drift_regresses_both_ways() {
        let base = artifact("9.12");
        let mut fewer = base.clone();
        fewer.experiments.clear();
        assert!(!diff(&base, &fewer, 1.0).is_clean(), "missing experiment");
        assert!(!diff(&fewer, &base, 1.0).is_clean(), "extra experiment");

        let mut short = base.clone();
        short.experiments[0].tables[0].rows.pop();
        assert!(!diff(&base, &short, 1.0).is_clean(), "missing row");
        assert!(!diff(&short, &base, 1.0).is_clean(), "extra row");
    }
}
