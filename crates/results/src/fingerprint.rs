//! Stable 64-bit fingerprints (FNV-1a) and their hex encoding.
//!
//! Fingerprints key the content-addressed store: a cell's fingerprint
//! covers everything that determines its numbers (predictor spec,
//! workload parameters, trace length, seed, accounting policy, engine
//! version), so a fingerprint hit is safe to reuse and any change to an
//! input maps to a different record.

/// FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const PRIME: u64 = 0x100_0000_01b3;

/// Hash `bytes` with 64-bit FNV-1a.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Combine several already-hashed or raw fields into one fingerprint.
/// Fields are length-prefixed so `("ab","c")` and `("a","bc")` differ.
pub fn fnv1a_fields(fields: &[&str]) -> u64 {
    let mut hash = OFFSET;
    for field in fields {
        for &byte in (field.len() as u64).to_le_bytes().iter() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
        for &byte in field.as_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}

/// Render a fingerprint as 16 lowercase hex digits.
pub fn to_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parse a fingerprint rendered by [`to_hex`].
pub fn from_hex(text: &str) -> Option<u64> {
    (text.len() == 16).then(|| u64::from_str_radix(text, 16).ok())?
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn field_framing_disambiguates() {
        assert_ne!(fnv1a_fields(&["ab", "c"]), fnv1a_fields(&["a", "bc"]));
        assert_ne!(fnv1a_fields(&["ab"]), fnv1a_fields(&["ab", ""]));
        assert_eq!(fnv1a_fields(&["x", "y"]), fnv1a_fields(&["x", "y"]));
    }

    #[test]
    fn hex_roundtrip() {
        for fp in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(from_hex(&to_hex(fp)), Some(fp));
        }
        assert_eq!(from_hex("xyz"), None);
        assert_eq!(from_hex("0123"), None);
        assert_eq!(from_hex("00000000000000000"), None);
    }
}
