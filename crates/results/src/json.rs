//! A small in-tree JSON value, serializer and recursive-descent parser.
//!
//! The workspace is offline (no serde); this module carries exactly the
//! subset the results store needs: the six JSON value kinds, compact
//! canonical serialization (object keys keep insertion order, so a value
//! serializes identically every time), and a strict parser that rejects
//! trailing garbage. Numbers are `f64`; integers up to 2^53 round-trip
//! exactly, and anything wider (fingerprints, checksums) is stored as a
//! hex string instead.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always an `f64`; integers ≤ 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved, which makes the
    /// serialization canonical for a given construction order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look a key up in an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document. Trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising degradation.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        // Rust's shortest-round-trip float formatting.
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one slice.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: read the low half if the
                            // high half opens one.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 leaves pos after the 4 digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Read exactly four hex digits (after `\u`), leaving `pos` past them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits after \\u"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalars_roundtrip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Num(0.0)),
            ("-7", Json::Num(-7.0)),
            ("2.5", Json::Num(2.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value);
            assert_eq!(Json::parse(&value.to_string_compact()).unwrap(), value);
        }
    }

    #[test]
    fn nested_document_roundtrips() {
        let doc = Json::obj(vec![
            ("name", Json::Str("fig5".into())),
            ("cells", Json::Arr(vec![Json::Num(1.25), Json::Num(3.0)])),
            (
                "meta",
                Json::obj(vec![("quick", Json::Bool(true)), ("none", Json::Null)]),
            ),
        ]);
        let text = doc.to_string_compact();
        assert_eq!(
            text,
            r#"{"name":"fig5","cells":[1.25,3],"meta":{"quick":true,"none":null}}"#
        );
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let parsed = Json::parse(
            " { \"a\" : [ 1 , \"x\\n\\\"y\\\"\" ] ,\n\t\"u\": \"\\u00e9\\ud83d\\ude00\" } ",
        )
        .unwrap();
        assert_eq!(
            parsed.get("a").unwrap().as_arr().unwrap()[0],
            Json::Num(1.0)
        );
        assert_eq!(
            parsed.get("a").unwrap().as_arr().unwrap()[1],
            Json::Str("x\n\"y\"".into())
        );
        assert_eq!(parsed.get("u").unwrap().as_str().unwrap(), "é😀");
    }

    #[test]
    fn control_chars_escape_on_write() {
        let s = Json::Str("a\u{1}b\tc".into());
        assert_eq!(s.to_string_compact(), "\"a\\u0001b\\tc\"");
        assert_eq!(Json::parse(&s.to_string_compact()).unwrap(), s);
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\":}",
            "1 2",
            "nul",
            "{\"a\" 1}",
        ] {
            let e = Json::parse(bad).unwrap_err();
            assert!(e.offset <= bad.len(), "{bad}: {e}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1] [2]").is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::obj(vec![("n", Json::Num(42.0)), ("s", Json::Str("x".into()))]);
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("s").unwrap().as_u64(), None);
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn exponent_numbers_parse() {
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("2.5E-1").unwrap(), Json::Num(0.25));
        assert_eq!(Json::parse("-1.5e+2").unwrap(), Json::Num(-150.0));
    }

    proptest! {
        #[test]
        fn u64_in_f64_range_roundtrips(n in 0u64..(1 << 53)) {
            let text = Json::Num(n as f64).to_string_compact();
            prop_assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
        }

        #[test]
        fn arbitrary_strings_roundtrip(s in "[ -~]{0,40}") {
            let value = Json::Str(s);
            let text = value.to_string_compact();
            prop_assert_eq!(Json::parse(&text).unwrap(), value);
        }

        #[test]
        fn finite_floats_roundtrip(x in -1e12f64..1e12) {
            let text = Json::Num(x).to_string_compact();
            let parsed = Json::parse(&text).unwrap().as_f64().unwrap();
            // Shortest-round-trip formatting is exact for f64.
            prop_assert_eq!(parsed, x);
        }
    }
}
