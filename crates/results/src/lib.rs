//! # bpred-results — persistent experiment results
//!
//! The paper is a grid of sweeps whose value lies in comparing cells
//! across configurations; this crate makes those cells durable,
//! comparable artifacts instead of stdout that evaporates:
//!
//! * [`json`] — a small in-tree JSON value, serializer and strict
//!   recursive-descent parser (the workspace is offline; no serde).
//! * [`fingerprint`] — stable FNV-1a fingerprints keying the store.
//! * [`record`] — the canonical [`record::ResultRecord`] schema: cell
//!   key (benchmark, spec, length, seed, policy), fingerprint, engine
//!   version, misprediction counts and wall-clock time.
//! * [`store`] — the content-addressed on-disk store: atomic tmp+rename
//!   writes, an index, checksum validation on load, and a byte-budgeted
//!   [`store::ResultsStore::gc`].
//! * [`campaign`] — campaign artifacts (every table cell of a named
//!   experiment set) and tolerance-based regression [`campaign::diff`].
//!
//! `bpred-sim`'s experiment helpers consult a configured store before
//! simulating a cell and skip fingerprint-identical hits, which makes
//! whole experiment reruns incremental across processes.
//!
//! ```
//! use bpred_results::record::{CellKey, ResultRecord};
//! use bpred_results::store::ResultsStore;
//!
//! let dir = std::env::temp_dir().join(format!("results-doc-{}", std::process::id()));
//! let mut store = ResultsStore::open(&dir)?;
//! let key = CellKey {
//!     bench: "groff".into(),
//!     spec: "gskew:n=12,h=4".into(),
//!     len: 1000,
//!     seed: 0x5EED_0000,
//!     policy: "count".into(),
//! };
//! let fingerprint = key.fingerprint("workload-params", "1");
//! store.put(&ResultRecord {
//!     experiment: "doc".into(),
//!     key,
//!     fingerprint,
//!     engine_version: "1".into(),
//!     conditional: 1000,
//!     mispredicted: 55,
//!     novel: 0,
//!     elapsed_ms: 0.4,
//! })?;
//! assert_eq!(store.get(fingerprint).unwrap().mispredicted, 55);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod fingerprint;
pub mod json;
pub mod record;
pub mod store;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::campaign::{diff, CampaignArtifact, CampaignDiff, ExperimentData, TableData};
    pub use crate::json::Json;
    pub use crate::record::{CellKey, ResultRecord};
    pub use crate::store::{GcStats, ResultsStore, DEFAULT_STORE_DIR};
}
