//! Reference-model tests for the fully-associative LRU machinery: a
//! naive O(n) list implementation is the ground truth, and both the
//! linked-list [`TaggedFullyAssociative`] and the shared last-use-distance
//! fast path (hit in an N-entry LRU ⟺ distance < N) must produce the
//! same per-access hit/miss stream, with [`CapacitySweep`] totals
//! matching for every capacity at once.

use bpred_aliasing::distance::{CapacitySweep, LastUseDistance};
use bpred_aliasing::fully_assoc::TaggedFullyAssociative;
use proptest::prelude::*;

/// The textbook LRU: a vector ordered most- to least-recently used,
/// searched and reshuffled linearly, plus a seen-list for cold misses.
struct NaiveLru {
    capacity: usize,
    entries: Vec<(u64, u64)>,
    seen: Vec<(u64, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Access {
    Hit,
    ColdMiss,
    CapacityMiss,
}

impl NaiveLru {
    fn new(capacity: usize) -> Self {
        NaiveLru {
            capacity,
            entries: Vec::new(),
            seen: Vec::new(),
        }
    }

    fn access(&mut self, pair: (u64, u64)) -> Access {
        if let Some(i) = self.entries.iter().position(|&p| p == pair) {
            let hit = self.entries.remove(i);
            self.entries.insert(0, hit);
            return Access::Hit;
        }
        let cold = !self.seen.contains(&pair);
        if cold {
            self.seen.push(pair);
        }
        self.entries.insert(0, pair);
        self.entries.truncate(self.capacity);
        if cold {
            Access::ColdMiss
        } else {
            Access::CapacityMiss
        }
    }
}

fn arb_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..20, 0u64..3), 0..400)
}

proptest! {
    /// Per-access agreement on arbitrary streams: the naive list, the
    /// linked-list production LRU, and the distance predicate must call
    /// every access identically.
    #[test]
    fn all_three_models_agree_per_access(
        stream in arb_stream(),
        capacity in 1usize..=16,
    ) {
        let mut naive = NaiveLru::new(capacity);
        let mut fast = TaggedFullyAssociative::new(capacity);
        let mut distance = LastUseDistance::new();
        for (i, &pair) in stream.iter().enumerate() {
            let want = naive.access(pair);
            let fast_missed = fast.access(pair);
            prop_assert_eq!(fast_missed, want != Access::Hit, "access {}: {:?}", i, want);
            let d = distance.observe(pair);
            let predicate = match d {
                None => Access::ColdMiss,
                Some(d) if d >= capacity as u64 => Access::CapacityMiss,
                Some(_) => Access::Hit,
            };
            prop_assert_eq!(predicate, want, "distance predicate at access {}", i);
        }
        // The running totals agree too.
        let naive_misses = stream.len() as u64
            - {
                let mut again = NaiveLru::new(capacity);
                stream.iter().filter(|&&p| again.access(p) == Access::Hit).count() as u64
            };
        prop_assert_eq!(fast.misses(), naive_misses);
        prop_assert_eq!(fast.cold_misses(), naive.seen.len() as u64);
    }

    /// One distance stream feeds every capacity at once: the sweep's
    /// per-capacity miss totals equal a bank of naive LRUs run
    /// independently.
    #[test]
    fn capacity_sweep_matches_a_bank_of_naive_lrus(
        stream in arb_stream(),
        raw_capacities in proptest::collection::vec(1u64..=24, 1..5),
    ) {
        let mut capacities = raw_capacities;
        capacities.sort_unstable();
        capacities.dedup();
        let mut sweep = CapacitySweep::new(&capacities);
        let mut distance = LastUseDistance::new();
        for &pair in &stream {
            sweep.observe(distance.observe(pair));
        }
        let mut naive_misses = Vec::new();
        for &cap in &capacities {
            let mut lru = NaiveLru::new(cap as usize);
            naive_misses.push(
                stream.iter().filter(|&&p| lru.access(p) != Access::Hit).count() as u64,
            );
        }
        prop_assert_eq!(sweep.misses(), naive_misses);
        prop_assert_eq!(sweep.references(), stream.len() as u64);
    }

    /// LRU inclusion: growing the capacity never turns a hit into a miss,
    /// so the sweep's miss counts are monotone nonincreasing.
    #[test]
    fn sweep_misses_are_monotone_in_capacity(stream in arb_stream()) {
        let capacities: Vec<u64> = (1..=16).collect();
        let mut sweep = CapacitySweep::new(&capacities);
        let mut distance = LastUseDistance::new();
        for &pair in &stream {
            sweep.observe(distance.observe(pair));
        }
        let misses = sweep.misses();
        for pair in misses.windows(2) {
            prop_assert!(pair[0] >= pair[1], "misses not monotone: {:?}", misses);
        }
        // Cold misses are misses at every capacity, so even the largest
        // table misses at least `first_uses` times.
        prop_assert!(misses.last().copied().unwrap_or(0) >= sweep.first_uses());
    }
}
