//! Single-pass batched three-C classification over a column-view trace.
//!
//! The per-configuration path ([`crate::three_c::ThreeCClassifier`])
//! walks the whole trace once per `(size, index function)` cell — a
//! direct-mapped tagged table and a fully-associative LRU table in lock
//! step — which makes grid sweeps the most expensive measurement in the
//! repo. This module decomposes one cell into two independent passes
//! that batch across the grid:
//!
//! * [`dm_pass`] — the direct-mapped tagged table as a monomorphized
//!   kernel over [`TraceColumns`]: a flat tag array (cold entries encoded
//!   by a sentinel address, so the hot loop compares one `(u64, u64)`
//!   pair instead of unwrapping an `Option`) and an inlined history
//!   register, with the index function pinned outside the loop exactly
//!   like the predictor kernels in `bpred-sim`.
//! * [`fa_pass`] — *every* fully-associative LRU capacity from one
//!   last-use-distance computation: a reference with stack distance `d`
//!   hits an `N`-entry LRU table iff `d < N`, so a single
//!   [`LastUseDistance`] walk plus a [`CapacitySweep`] yields the exact
//!   miss and cold-miss counts for all table sizes at once. The pass is
//!   keyed by history length only — cells that share a history share the
//!   FA reference regardless of index function, since the FA table never
//!   indexes.
//!
//! The contract is **bit identity**: assembled [`ThreeCCounts`] equal the
//! classifier's counts integer for integer, and both derive their ratio
//! breakdowns through the same [`ThreeCCounts::breakdown`] code, so every
//! downstream `f64` matches bit for bit. The equivalence is pinned by the
//! differential proptest suite (`tests/aliasing_equiv.rs`) and by the
//! naive-LRU reference model test.

use crate::distance::{CapacitySweep, LastUseDistance};
use crate::three_c::ThreeCCounts;
use bpred_core::index::IndexFunction;
use bpred_core::vector::InfoVector;
use bpred_trace::soa::TraceColumns;

/// One cell of a batched three-C grid: a `2^entries_log2`-entry table
/// indexed by `func` under `history_bits` of global history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreeCCell {
    /// Table size as a power of two (1..=30, as for
    /// [`crate::tagged::TaggedDirectMapped`]).
    pub entries_log2: u32,
    /// Global history length in bits (at most 64).
    pub history_bits: u32,
    /// The direct-mapped table's index function.
    pub func: IndexFunction,
}

impl ThreeCCell {
    /// The table capacity in entries.
    pub fn capacity(&self) -> u64 {
        1u64 << self.entries_log2
    }
}

/// Tallies of one direct-mapped tagged pass ([`dm_pass`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DmCounts {
    /// Conditional references classified.
    pub references: u64,
    /// Aliasing occurrences (stored pair differed or entry was cold).
    pub misses: u64,
    /// Misses that filled a cold entry.
    pub cold_misses: u64,
}

/// Tallies of one shared-distance fully-associative pass ([`fa_pass`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaCounts {
    /// Conditional references classified.
    pub references: u64,
    /// First-ever pair references — the compulsory misses, identical for
    /// every capacity.
    pub cold_misses: u64,
    /// Total LRU misses per capacity, parallel to the capacity list the
    /// pass was given.
    pub misses: Vec<u64>,
}

/// Cold tag sentinel: real addresses are `pc >> 2`, so `u64::MAX` can
/// never collide with a stored pair.
const COLD: (u64, u64) = (u64::MAX, 0);

#[inline(always)]
fn hist_mask(bits: u32) -> u64 {
    if bits == 0 {
        0
    } else if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Walk `cols` once through a direct-mapped tagged table.
///
/// Bit-identical to driving [`crate::tagged::TaggedDirectMapped`] behind
/// a [`crate::cursor::PairCursor`] over the same records: identical
/// index computation ([`IndexFunction::index`]), identical pair identity
/// check, identical history update (unconditional branches shift in as
/// taken).
///
/// # Panics
///
/// Panics if `entries_log2` is outside `1..=30` or `history_bits`
/// exceeds 64.
pub fn dm_pass(
    cols: &TraceColumns,
    entries_log2: u32,
    history_bits: u32,
    func: IndexFunction,
) -> DmCounts {
    assert!(
        entries_log2 > 0 && entries_log2 <= 30,
        "entries_log2 {entries_log2} out of 1..=30"
    );
    assert!(history_bits <= 64, "history_bits {history_bits} above 64");
    // Pin the index-function variant outside the loop so the match inside
    // `IndexFunction::index` const-folds per monomorphized copy.
    match func {
        IndexFunction::Bimodal => drive_dm(cols, entries_log2, history_bits, |v, n| {
            IndexFunction::Bimodal.index(v, n)
        }),
        IndexFunction::Gshare => drive_dm(cols, entries_log2, history_bits, |v, n| {
            IndexFunction::Gshare.index(v, n)
        }),
        IndexFunction::Gselect => drive_dm(cols, entries_log2, history_bits, |v, n| {
            IndexFunction::Gselect.index(v, n)
        }),
    }
}

#[inline(always)]
fn drive_dm(
    cols: &TraceColumns,
    entries_log2: u32,
    history_bits: u32,
    index: impl Fn(&InfoVector, u32) -> u64,
) -> DmCounts {
    let mut tags: Vec<(u64, u64)> = vec![COLD; 1usize << entries_log2];
    let tmask = tags.len() - 1;
    let hmask = hist_mask(history_bits);
    let mut hist = 0u64;
    let mut counts = DmCounts::default();
    for (i, &pc) in cols.pcs().iter().enumerate() {
        let (conditional, taken) = cols.cond_taken(i);
        if conditional {
            let v = InfoVector::new(pc, hist, history_bits);
            // The extra mask is value-neutral (the index is already
            // `entries_log2` bits) but lets the compiler drop the bounds
            // check.
            let idx = index(&v, entries_log2) as usize & tmask;
            let pair = v.pair();
            counts.references += 1;
            let stored = tags[idx];
            if stored != pair {
                counts.misses += 1;
                counts.cold_misses += u64::from(stored == COLD);
                tags[idx] = pair;
            }
            hist = ((hist << 1) | u64::from(taken)) & hmask;
        } else {
            hist = ((hist << 1) | 1) & hmask;
        }
    }
    counts
}

/// Walk `cols` once and count fully-associative LRU misses for *every*
/// capacity in `capacities` (strictly increasing, nonzero), under
/// `history_bits` of global history.
///
/// Bit-identical to driving one [`crate::fully_assoc::TaggedFullyAssociative`]
/// per capacity over the same records: LRU stack inclusion makes
/// "distance < capacity" exactly the hit predicate, and first uses are
/// the cold misses.
///
/// # Panics
///
/// Panics if `history_bits` exceeds 64, or on an invalid capacity list
/// (see [`CapacitySweep::new`]).
pub fn fa_pass(cols: &TraceColumns, history_bits: u32, capacities: &[u64]) -> FaCounts {
    assert!(history_bits <= 64, "history_bits {history_bits} above 64");
    let mut lud = LastUseDistance::new();
    let mut sweep = CapacitySweep::new(capacities);
    let hmask = hist_mask(history_bits);
    let mut hist = 0u64;
    for (i, &pc) in cols.pcs().iter().enumerate() {
        let (conditional, taken) = cols.cond_taken(i);
        if conditional {
            sweep.observe(lud.observe((pc >> 2, hist)));
            hist = ((hist << 1) | u64::from(taken)) & hmask;
        } else {
            hist = ((hist << 1) | 1) & hmask;
        }
    }
    FaCounts {
        references: sweep.references(),
        cold_misses: sweep.first_uses(),
        misses: sweep.misses(),
    }
}

/// Classify every cell of a grid in one logical pass over `cols`,
/// sequentially: one [`dm_pass`] per cell plus one [`fa_pass`] per
/// distinct history length, assembled into per-cell [`ThreeCCounts`].
/// (The parallel fan-out lives in `bpred-sim`'s kernel layer; this
/// sequential form is the semantic reference and the convenient entry
/// point for tests.)
pub fn run_cells(cells: &[ThreeCCell], cols: &TraceColumns) -> Vec<ThreeCCounts> {
    let groups = fa_groups(cells);
    let fa: Vec<FaCounts> = groups
        .iter()
        .map(|(h, caps)| fa_pass(cols, *h, caps))
        .collect();
    let dm: Vec<DmCounts> = cells
        .iter()
        .map(|c| dm_pass(cols, c.entries_log2, c.history_bits, c.func))
        .collect();
    assemble(cells, &groups, &dm, &fa)
}

/// Group a cell grid's fully-associative work: one entry per distinct
/// history length, carrying the strictly increasing list of distinct
/// capacities requested under that history. Order follows first
/// appearance in `cells`.
pub fn fa_groups(cells: &[ThreeCCell]) -> Vec<(u32, Vec<u64>)> {
    let mut groups: Vec<(u32, Vec<u64>)> = Vec::new();
    for cell in cells {
        let cap = cell.capacity();
        match groups.iter_mut().find(|(h, _)| *h == cell.history_bits) {
            Some((_, caps)) => {
                if let Err(at) = caps.binary_search(&cap) {
                    caps.insert(at, cap);
                }
            }
            None => groups.push((cell.history_bits, vec![cap])),
        }
    }
    groups
}

/// Assemble per-cell counts from per-cell direct-mapped tallies (`dm`,
/// parallel to `cells`) and per-group fully-associative tallies (`fa`,
/// parallel to `groups` from [`fa_groups`]).
///
/// # Panics
///
/// Panics if a cell's history/capacity is missing from the groups, or if
/// the two passes disagree on the reference count — both would mean the
/// passes ran over different traces.
pub fn assemble(
    cells: &[ThreeCCell],
    groups: &[(u32, Vec<u64>)],
    dm: &[DmCounts],
    fa: &[FaCounts],
) -> Vec<ThreeCCounts> {
    cells
        .iter()
        .zip(dm)
        .map(|(cell, d)| {
            let g = groups
                .iter()
                .position(|(h, _)| *h == cell.history_bits)
                .expect("cell history missing from fa groups");
            let caps = &groups[g].1;
            let j = caps
                .binary_search(&cell.capacity())
                .expect("cell capacity missing from fa group");
            let f = &fa[g];
            assert_eq!(
                d.references, f.references,
                "dm and fa passes saw different traces"
            );
            ThreeCCounts {
                references: d.references,
                dm_misses: d.misses,
                fa_misses: f.misses[j],
                cold_misses: f.cold_misses,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::three_c::ThreeCClassifier;
    use bpred_trace::prelude::*;
    use bpred_trace::record::BranchRecord;

    fn grid() -> Vec<ThreeCCell> {
        let mut cells = Vec::new();
        for &func in &[IndexFunction::Gshare, IndexFunction::Gselect] {
            for n in [4u32, 6, 8] {
                for h in [0u32, 4, 12] {
                    cells.push(ThreeCCell {
                        entries_log2: n,
                        history_bits: h,
                        func,
                    });
                }
            }
        }
        cells
    }

    #[test]
    fn batched_counts_match_the_classifier() {
        let records: Vec<BranchRecord> = IbsBenchmark::Groff.spec().build().take(20_000).collect();
        let cols = TraceColumns::from_records(&records);
        let cells = grid();
        let batched = run_cells(&cells, &cols);
        for (cell, counts) in cells.iter().zip(&batched) {
            let reference = ThreeCClassifier::new(cell.entries_log2, cell.history_bits, cell.func)
                .run_counts(records.iter().copied());
            assert_eq!(*counts, reference, "{cell:?}");
        }
    }

    #[test]
    fn fa_pass_is_shared_across_index_functions() {
        // Two cells differing only in index function must read the same
        // FA tallies — the fa grouping keys on history alone.
        let cells = [
            ThreeCCell {
                entries_log2: 6,
                history_bits: 4,
                func: IndexFunction::Gshare,
            },
            ThreeCCell {
                entries_log2: 6,
                history_bits: 4,
                func: IndexFunction::Gselect,
            },
        ];
        let groups = fa_groups(&cells);
        assert_eq!(groups, vec![(4, vec![64])]);
        let records: Vec<BranchRecord> = IbsBenchmark::Gs.spec().build().take(5_000).collect();
        let cols = TraceColumns::from_records(&records);
        let counts = run_cells(&cells, &cols);
        assert_eq!(counts[0].fa_misses, counts[1].fa_misses);
        assert_eq!(counts[0].cold_misses, counts[1].cold_misses);
    }

    #[test]
    fn fa_groups_deduplicate_and_sort_capacities() {
        let cells = [
            ThreeCCell {
                entries_log2: 8,
                history_bits: 4,
                func: IndexFunction::Gshare,
            },
            ThreeCCell {
                entries_log2: 4,
                history_bits: 4,
                func: IndexFunction::Gselect,
            },
            ThreeCCell {
                entries_log2: 8,
                history_bits: 4,
                func: IndexFunction::Gselect,
            },
            ThreeCCell {
                entries_log2: 6,
                history_bits: 12,
                func: IndexFunction::Gshare,
            },
        ];
        assert_eq!(fa_groups(&cells), vec![(4, vec![16, 256]), (12, vec![64])]);
    }

    #[test]
    fn empty_trace_yields_zero_counts() {
        let cols = TraceColumns::from_records(&[]);
        let cells = [ThreeCCell {
            entries_log2: 6,
            history_bits: 4,
            func: IndexFunction::Gshare,
        }];
        let counts = run_cells(&cells, &cols);
        assert_eq!(counts[0], ThreeCCounts::default());
        assert_eq!(counts[0].breakdown().references, 0);
    }

    #[test]
    fn unconditional_branches_shift_history_as_taken() {
        // A trace where history correctness matters: identical pcs, but
        // the interleaved unconditional branch changes every subsequent
        // pair. Classifier and batch must agree record for record.
        let records = vec![
            BranchRecord::conditional(0x100, false),
            BranchRecord::unconditional(0x104),
            BranchRecord::conditional(0x100, true),
            BranchRecord::conditional(0x100, false),
            BranchRecord::conditional(0x100, true),
        ];
        let cols = TraceColumns::from_records(&records);
        for h in [0u32, 2, 4, 64] {
            let cell = ThreeCCell {
                entries_log2: 4,
                history_bits: h,
                func: IndexFunction::Gshare,
            };
            let batched = run_cells(&[cell], &cols);
            let reference = ThreeCClassifier::new(4, h, IndexFunction::Gshare)
                .run_counts(records.iter().copied());
            assert_eq!(batched[0], reference, "h={h}");
        }
    }
}
