//! Interference attribution: *which* static branches collide.
//!
//! The three-Cs machinery says how much conflict aliasing exists; this
//! instrument says who causes it. For a direct-mapped tag-less table it
//! tracks, per unordered pair of static branch addresses, how many
//! aliasing occurrences they inflicted on each other — the "top offender"
//! list a hand-tuning engineer (or a code-layout tool in the spirit of
//! the paper's reference \[21\]) would start from.

use crate::cursor::PairCursor;
use bpred_core::index::IndexFunction;
use bpred_trace::record::{BranchKind, BranchRecord};
use std::collections::HashMap;

/// One entry of the offender report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffenderPair {
    /// The two static branch addresses (lower one first).
    pub branches: (u64, u64),
    /// Aliasing occurrences between them (in either direction).
    pub occurrences: u64,
}

/// Tracks pairwise interference in a direct-mapped tag-less table.
#[derive(Debug, Clone)]
pub struct OffenderAnalysis {
    cursor: PairCursor,
    /// Per table entry: the (pair identity, branch address) that last
    /// touched it.
    owners: Vec<Option<((u64, u64), u64)>>,
    counts: HashMap<(u64, u64), u64>,
    func: IndexFunction,
    n: u32,
    total_aliasing: u64,
    self_aliasing: u64,
}

impl OffenderAnalysis {
    /// An analysis over a `2^entries_log2`-entry table with
    /// `history_bits` of global history, indexed by `func`.
    ///
    /// # Panics
    ///
    /// Panics if `entries_log2` is 0 or above 30.
    pub fn new(entries_log2: u32, history_bits: u32, func: IndexFunction) -> Self {
        assert!(
            entries_log2 > 0 && entries_log2 <= 30,
            "entries_log2 {entries_log2} out of 1..=30"
        );
        OffenderAnalysis {
            cursor: PairCursor::new(history_bits),
            owners: vec![None; 1 << entries_log2],
            counts: HashMap::new(),
            func,
            n: entries_log2,
            total_aliasing: 0,
            self_aliasing: 0,
        }
    }

    /// Account one trace record.
    pub fn observe(&mut self, record: &BranchRecord) {
        if record.kind == BranchKind::Conditional {
            let v = self.cursor.vector(record.pc);
            let pair = v.pair();
            let idx = self.func.index(&v, self.n) as usize;
            if let Some((owner_pair, owner_pc)) = self.owners[idx] {
                if owner_pair != pair {
                    self.total_aliasing += 1;
                    if owner_pc == record.pc {
                        // The same static branch under another history —
                        // self-aliasing, not an inter-branch conflict.
                        self.self_aliasing += 1;
                    } else {
                        let key = if owner_pc < record.pc {
                            (owner_pc, record.pc)
                        } else {
                            (record.pc, owner_pc)
                        };
                        *self.counts.entry(key).or_insert(0) += 1;
                    }
                }
            }
            self.owners[idx] = Some((pair, record.pc));
        }
        self.cursor.advance(record);
    }

    /// Consume a whole record stream.
    pub fn run(mut self, records: impl Iterator<Item = BranchRecord>) -> Self {
        for r in records {
            self.observe(&r);
        }
        self
    }

    /// The `k` worst interfering branch pairs, most occurrences first.
    pub fn top(&self, k: usize) -> Vec<OffenderPair> {
        let mut pairs: Vec<OffenderPair> = self
            .counts
            .iter()
            .map(|(&branches, &occurrences)| OffenderPair {
                branches,
                occurrences,
            })
            .collect();
        pairs.sort_unstable_by(|a, b| {
            b.occurrences
                .cmp(&a.occurrences)
                .then(a.branches.cmp(&b.branches))
        });
        pairs.truncate(k);
        pairs
    }

    /// Total aliasing occurrences observed (inter-branch + self).
    pub fn total_aliasing(&self) -> u64 {
        self.total_aliasing
    }

    /// Aliasing occurrences where a branch evicted its own other
    /// substream (same pc, different history).
    pub fn self_aliasing(&self) -> u64 {
        self.self_aliasing
    }

    /// Number of distinct interfering branch pairs.
    pub fn distinct_pairs(&self) -> usize {
        self.counts.len()
    }

    /// Fraction of all inter-branch aliasing carried by the top `k`
    /// pairs — how concentrated the conflicts are.
    pub fn concentration(&self, k: usize) -> f64 {
        let inter = self.total_aliasing - self.self_aliasing;
        if inter == 0 {
            return 0.0;
        }
        let top_sum: u64 = self.top(k).iter().map(|p| p.occurrences).sum();
        top_sum as f64 / inter as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_trace::prelude::*;

    #[test]
    fn attributes_a_forced_conflict() {
        // Two branches in a tiny bimodal-indexed table, same entry.
        let a = 0x1000;
        let b = a + (1 << (1 + 2));
        let mut analysis = OffenderAnalysis::new(1, 0, IndexFunction::Bimodal);
        for _ in 0..10 {
            analysis.observe(&BranchRecord::conditional(a, true));
            analysis.observe(&BranchRecord::conditional(b, false));
        }
        let top = analysis.top(5);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].branches, (a, b));
        assert_eq!(top[0].occurrences, 19);
        assert_eq!(analysis.self_aliasing(), 0);
        assert!((analysis.concentration(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_aliasing_is_separated() {
        // One branch whose history alternates between 01 and 10: with a
        // 2-entry table the XOR-folded gshare index is the same for both
        // patterns, so its two substreams evict each other — pure
        // self-aliasing.
        let mut analysis = OffenderAnalysis::new(1, 2, IndexFunction::Gshare);
        let mut taken = true;
        for _ in 0..20 {
            analysis.observe(&BranchRecord::conditional(0x1000, taken));
            taken = !taken;
        }
        assert!(analysis.total_aliasing() > 0);
        assert_eq!(
            analysis.total_aliasing(),
            analysis.self_aliasing(),
            "all events involve the same static branch"
        );
        assert_eq!(analysis.distinct_pairs(), 0);
    }

    #[test]
    fn workload_conflicts_are_concentrated() {
        let analysis = OffenderAnalysis::new(10, 4, IndexFunction::Gshare).run(
            IbsBenchmark::Groff
                .spec()
                .build()
                .take_conditionals(100_000),
        );
        assert!(analysis.total_aliasing() > 0);
        assert!(analysis.distinct_pairs() > 10);
        // Zipf-skewed workloads concentrate conflicts: the 20 worst pairs
        // should carry a visible share of all inter-branch aliasing.
        let share = analysis.concentration(20);
        assert!(share > 0.05, "top-20 share {share} suspiciously flat");
        // And the report is sorted.
        let top = analysis.top(20);
        for w in top.windows(2) {
            assert!(w[0].occurrences >= w[1].occurrences);
        }
    }

    #[test]
    fn empty_stream() {
        let analysis = OffenderAnalysis::new(4, 4, IndexFunction::Gshare).run(std::iter::empty());
        assert_eq!(analysis.total_aliasing(), 0);
        assert!(analysis.top(5).is_empty());
        assert_eq!(analysis.concentration(5), 0.0);
    }
}
