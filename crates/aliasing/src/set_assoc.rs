//! Identity-tagged set-associative table: the bridge between the
//! direct-mapped and fully-associative miss curves.
//!
//! Section 3.3 dismisses tagged associativity as not cost-effective for
//! predictor tables, but never quantifies how much associativity would
//! buy. This instrument fills that gap: an `A`-way LRU table whose miss
//! ratio interpolates between [`TaggedDirectMapped`] (`A = 1`) and
//! [`TaggedFullyAssociative`] (`A = capacity`), so the `ext-assoc`
//! experiment can show how few ways recover most of the conflict
//! aliasing — the yardstick the skewed predictor must measure up to
//! without paying for tags.
//!
//! [`TaggedDirectMapped`]: crate::tagged::TaggedDirectMapped
//! [`TaggedFullyAssociative`]: crate::fully_assoc::TaggedFullyAssociative

use bpred_core::index::IndexFunction;
use bpred_core::vector::InfoVector;

#[derive(Debug, Clone, Copy)]
struct Way {
    pair: (u64, u64),
    stamp: u64,
}

/// An identity-storing, set-associative table with per-set LRU.
#[derive(Debug, Clone)]
pub struct TaggedSetAssociative {
    sets: Vec<Vec<Way>>,
    sets_log2: u32,
    ways: usize,
    func: IndexFunction,
    tick: u64,
    accesses: u64,
    misses: u64,
    cold_misses: u64,
    seen: std::collections::HashSet<(u64, u64)>,
}

impl TaggedSetAssociative {
    /// A table of `2^sets_log2` sets of `ways` entries, set-indexed by
    /// `func`.
    ///
    /// # Panics
    ///
    /// Panics if `sets_log2` exceeds 30 or `ways` is zero. `sets_log2` of
    /// 0 is allowed: a single set of `ways` entries is exactly a
    /// fully-associative LRU table.
    pub fn new(sets_log2: u32, ways: usize, func: IndexFunction) -> Self {
        assert!(sets_log2 <= 30, "sets_log2 {sets_log2} out of 0..=30");
        assert!(ways > 0, "ways must be nonzero");
        TaggedSetAssociative {
            sets: vec![Vec::with_capacity(ways); 1 << sets_log2],
            sets_log2,
            ways,
            func,
            tick: 0,
            accesses: 0,
            misses: 0,
            cold_misses: 0,
            seen: std::collections::HashSet::new(),
        }
    }

    /// Reference the table; returns `true` on a miss.
    pub fn access(&mut self, v: &InfoVector) -> bool {
        self.accesses += 1;
        self.tick += 1;
        let tick = self.tick;
        let pair = v.pair();
        let set_index = if self.sets_log2 == 0 {
            0
        } else {
            self.func.index(v, self.sets_log2) as usize
        };
        let ways = self.ways;
        let set = &mut self.sets[set_index];
        if let Some(way) = set.iter_mut().find(|w| w.pair == pair) {
            way.stamp = tick;
            return false;
        }
        self.misses += 1;
        if self.seen.insert(pair) {
            self.cold_misses += 1;
        }
        if set.len() < ways {
            set.push(Way { pair, stamp: tick });
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|w| w.stamp)
                .expect("ways is nonzero");
            victim.pair = pair;
            victim.stamp = tick;
        }
        true
    }

    /// Number of references so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// First-reference (compulsory) misses.
    pub fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// Miss ratio over all references.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in pairs.
    pub fn capacity(&self) -> usize {
        self.ways << self.sets_log2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::PairCursor;
    use crate::fully_assoc::TaggedFullyAssociative;
    use crate::tagged::TaggedDirectMapped;
    use bpred_trace::record::BranchKind;
    use bpred_trace::stream::TraceSourceExt;
    use bpred_trace::workload::IbsBenchmark;

    fn v(pc: u64, hist: u64) -> InfoVector {
        InfoVector::new(pc, hist, 4)
    }

    #[test]
    fn one_way_behaves_like_direct_mapped() {
        // Same capacity, same index function: identical miss counts.
        let mut sa = TaggedSetAssociative::new(6, 1, IndexFunction::Gshare);
        let mut dm = TaggedDirectMapped::new(6, IndexFunction::Gshare);
        let mut cursor = PairCursor::new(4);
        for r in IbsBenchmark::Verilog
            .spec()
            .build()
            .take_conditionals(20_000)
        {
            if r.kind == BranchKind::Conditional {
                let vec = cursor.vector(r.pc);
                sa.access(&vec);
                dm.access(&vec);
            }
            cursor.advance(&r);
        }
        assert_eq!(sa.misses(), dm.misses());
        // Note: cold semantics differ by design — the DM instrument
        // counts cold-ENTRY fills (bounded by the table size), this one
        // counts first-seen PAIRS (compulsory references), matching the
        // FA instrument.
        assert!(sa.cold_misses() >= dm.cold_misses());
    }

    #[test]
    fn associativity_monotonically_reduces_misses() {
        let capacity_log2 = 10u32;
        let mut last: Option<u64> = None;
        for ways_log2 in 0..=3u32 {
            let mut sa = TaggedSetAssociative::new(
                capacity_log2 - ways_log2,
                1 << ways_log2,
                IndexFunction::Gshare,
            );
            let mut cursor = PairCursor::new(4);
            for r in IbsBenchmark::Groff.spec().build().take_conditionals(60_000) {
                if r.kind == BranchKind::Conditional {
                    sa.access(&cursor.vector(r.pc));
                }
                cursor.advance(&r);
            }
            if let Some(prev) = last {
                // Monotone up to a small LRU-anomaly allowance.
                assert!(
                    sa.misses() <= prev + prev / 50,
                    "{} ways: {} misses vs previous {}",
                    1 << ways_log2,
                    sa.misses(),
                    prev
                );
            }
            last = Some(sa.misses());
        }
    }

    #[test]
    fn single_set_equals_fa_lru_exactly() {
        // A single set of `capacity` ways IS a fully-associative LRU
        // table; cross-validate the two implementations access by access.
        let capacity = 256usize;
        let mut sa = TaggedSetAssociative::new(0, capacity, IndexFunction::Gshare);
        let mut fa = TaggedFullyAssociative::new(capacity);
        let mut cursor = PairCursor::new(4);
        for r in IbsBenchmark::MpegPlay
            .spec()
            .build()
            .take_conditionals(30_000)
        {
            if r.kind == BranchKind::Conditional {
                let vec = cursor.vector(r.pc);
                let sa_miss = sa.access(&vec);
                let fa_miss = fa.access(vec.pair());
                assert_eq!(sa_miss, fa_miss, "divergence at access {}", sa.accesses());
            }
            cursor.advance(&r);
        }
        assert_eq!(sa.misses(), fa.misses());
        assert_eq!(sa.cold_misses(), fa.cold_misses());
    }

    #[test]
    fn basic_hit_miss_and_eviction() {
        let mut sa = TaggedSetAssociative::new(1, 2, IndexFunction::Bimodal);
        // pcs 0x0, 0x8, 0x10 all map to set 0 (even word addresses).
        assert!(sa.access(&v(0x0, 0)));
        assert!(sa.access(&v(0x8, 0)));
        assert!(!sa.access(&v(0x0, 0)), "resident hits");
        assert!(sa.access(&v(0x10, 0)), "third pair misses");
        // 0x8 was LRU, so it is gone:
        assert!(sa.access(&v(0x8, 0)));
        assert_eq!(sa.cold_misses(), 3);
        assert_eq!(sa.capacity(), 4);
        assert_eq!(sa.ways(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_ways_panics() {
        let _ = TaggedSetAssociative::new(4, 0, IndexFunction::Gshare);
    }
}
