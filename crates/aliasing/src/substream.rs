//! Substream statistics: the *substream ratio* and *compulsory aliasing*
//! columns of Table 2.
//!
//! The substream ratio is "the average number of different history values
//! encountered for a given conditional branch address"; compulsory
//! aliasing is the number of distinct `(address, history)` pairs divided
//! by the dynamic conditional branch count.

use crate::cursor::PairCursor;
use bpred_trace::record::{BranchKind, BranchRecord};
use std::collections::HashSet;

/// Streaming substream statistics for one history length.
#[derive(Debug, Clone)]
pub struct SubstreamStats {
    cursor: PairCursor,
    pairs: HashSet<(u64, u64)>,
    addresses: HashSet<u64>,
    dynamic: u64,
}

impl SubstreamStats {
    /// Statistics under `history_bits` of global history.
    pub fn new(history_bits: u32) -> Self {
        SubstreamStats {
            cursor: PairCursor::new(history_bits),
            pairs: HashSet::new(),
            addresses: HashSet::new(),
            dynamic: 0,
        }
    }

    /// Account one trace record.
    pub fn observe(&mut self, record: &BranchRecord) {
        if record.kind == BranchKind::Conditional {
            self.dynamic += 1;
            let pair = self.cursor.pair(record.pc);
            self.pairs.insert(pair);
            self.addresses.insert(pair.0);
        }
        self.cursor.advance(record);
    }

    /// Consume a whole stream.
    pub fn run(mut self, records: impl Iterator<Item = BranchRecord>) -> Self {
        for r in records {
            self.observe(&r);
        }
        self
    }

    /// Distinct `(address, history)` pairs seen.
    pub fn distinct_pairs(&self) -> u64 {
        self.pairs.len() as u64
    }

    /// Distinct conditional branch addresses seen.
    pub fn distinct_addresses(&self) -> u64 {
        self.addresses.len() as u64
    }

    /// Dynamic conditional branches seen.
    pub fn dynamic_branches(&self) -> u64 {
        self.dynamic
    }

    /// Table 2's *substream ratio*: distinct pairs per distinct address.
    pub fn substream_ratio(&self) -> f64 {
        if self.addresses.is_empty() {
            0.0
        } else {
            self.pairs.len() as f64 / self.addresses.len() as f64
        }
    }

    /// Table 2's *compulsory aliasing*: distinct pairs over dynamic
    /// branches.
    pub fn compulsory_ratio(&self) -> f64 {
        if self.dynamic == 0 {
            0.0
        } else {
            self.pairs.len() as f64 / self.dynamic as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_trace::prelude::*;

    #[test]
    fn zero_history_ratio_is_one() {
        let records = vec![
            BranchRecord::conditional(0x100, true),
            BranchRecord::conditional(0x200, false),
            BranchRecord::conditional(0x100, false),
        ];
        let s = SubstreamStats::new(0).run(records.into_iter());
        assert_eq!(s.distinct_pairs(), 2);
        assert_eq!(s.distinct_addresses(), 2);
        assert!((s.substream_ratio() - 1.0).abs() < 1e-12);
        assert!((s.compulsory_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn longer_history_multiplies_substreams() {
        let records: Vec<_> = IbsBenchmark::Groff.spec().build().take(100_000).collect();
        let h0 = SubstreamStats::new(0).run(records.iter().copied());
        let h4 = SubstreamStats::new(4).run(records.iter().copied());
        let h12 = SubstreamStats::new(12).run(records.iter().copied());
        assert!((h0.substream_ratio() - 1.0).abs() < 1e-12);
        assert!(h4.substream_ratio() > 1.2, "h4: {}", h4.substream_ratio());
        assert!(
            h12.substream_ratio() > h4.substream_ratio(),
            "h12 {} <= h4 {}",
            h12.substream_ratio(),
            h4.substream_ratio()
        );
        assert_eq!(h0.distinct_addresses(), h12.distinct_addresses());
    }

    #[test]
    fn empty_stream() {
        let s = SubstreamStats::new(4).run(std::iter::empty());
        assert_eq!(s.substream_ratio(), 0.0);
        assert_eq!(s.compulsory_ratio(), 0.0);
    }

    #[test]
    fn unconditionals_counted_in_history_not_pairs() {
        let records = vec![
            BranchRecord::conditional(0x100, false),
            BranchRecord::unconditional(0x104),
            BranchRecord::conditional(0x100, false),
        ];
        let s = SubstreamStats::new(2).run(records.into_iter());
        // Histories at the two executions of 0x100 are 00 and 10 (the
        // unconditional shifted a 1 in): two pairs, one address.
        assert_eq!(s.distinct_pairs(), 2);
        assert_eq!(s.distinct_addresses(), 1);
        assert_eq!(s.dynamic_branches(), 2);
    }
}
