//! One-pass three-Cs classification of a branch trace, reproducing the
//! measurement behind figures 1 and 2.

use crate::cursor::PairCursor;
use crate::fully_assoc::TaggedFullyAssociative;
use crate::tagged::TaggedDirectMapped;
use bpred_core::index::IndexFunction;
use bpred_trace::record::{BranchKind, BranchRecord};

/// The aliasing breakdown of one direct-mapped configuration, all ratios
/// relative to the dynamic conditional branch count.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AliasingBreakdown {
    /// Dynamic conditional branches classified.
    pub references: u64,
    /// Total aliasing ratio of the direct-mapped table (its miss ratio).
    pub total: f64,
    /// Compulsory component (first reference of each pair).
    pub compulsory: f64,
    /// Capacity component (fully-associative LRU misses minus compulsory;
    /// never negative, since every cold miss is also an LRU miss).
    pub capacity: f64,
    /// Conflict component (direct-mapped misses minus fully-associative
    /// misses). Slightly negative when LRU — which is not an optimal
    /// replacement policy — happens to lose to direct mapping; reporting
    /// the signed value keeps `compulsory + capacity + conflict == total`
    /// exact, which consumers rely on.
    pub conflict: f64,
    /// Fully-associative miss ratio (compulsory + capacity), as plotted in
    /// figures 1 and 2.
    pub fully_associative: f64,
}

/// The exact integer tallies behind one [`AliasingBreakdown`] cell.
///
/// Both measurement paths — the per-configuration [`ThreeCClassifier`]
/// and the batched engine in [`crate::batch`] — reduce a trace to these
/// four counters before any floating-point math happens, and both derive
/// their ratios through the *same* [`ThreeCCounts::breakdown`] code. Two
/// paths that agree on the counts therefore agree on every derived `f64`
/// bit for bit, which is the equivalence the differential test suite
/// pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreeCCounts {
    /// Dynamic conditional branches classified.
    pub references: u64,
    /// Misses of the direct-mapped tagged table (total aliasing).
    pub dm_misses: u64,
    /// Misses of the fully-associative LRU table of the same capacity.
    pub fa_misses: u64,
    /// First-ever references (compulsory misses; a subset of both miss
    /// counts).
    pub cold_misses: u64,
}

impl ThreeCCounts {
    /// Derive the ratio breakdown from the raw counts.
    pub fn breakdown(&self) -> AliasingBreakdown {
        let n = self.references;
        if n == 0 {
            return AliasingBreakdown::default();
        }
        let nf = n as f64;
        let total = self.dm_misses as f64 / nf;
        let fa = self.fa_misses as f64 / nf;
        let compulsory = self.cold_misses as f64 / nf;
        AliasingBreakdown {
            references: n,
            total,
            compulsory,
            capacity: fa - compulsory,
            conflict: total - fa,
            fully_associative: fa,
        }
    }
}

/// Classifies aliasing for one table geometry: a direct-mapped tagged
/// table and a fully-associative LRU tagged table of the same capacity,
/// referenced in lock step.
#[derive(Debug, Clone)]
pub struct ThreeCClassifier {
    cursor: PairCursor,
    direct: TaggedDirectMapped,
    fully: TaggedFullyAssociative,
}

impl ThreeCClassifier {
    /// A classifier for a `2^entries_log2`-entry table indexed by `func`
    /// under `history_bits` of global history.
    pub fn new(entries_log2: u32, history_bits: u32, func: IndexFunction) -> Self {
        ThreeCClassifier {
            cursor: PairCursor::new(history_bits),
            direct: TaggedDirectMapped::new(entries_log2, func),
            fully: TaggedFullyAssociative::new(1 << entries_log2),
        }
    }

    /// Account one trace record.
    pub fn observe(&mut self, record: &BranchRecord) {
        if record.kind == BranchKind::Conditional {
            let v = self.cursor.vector(record.pc);
            self.direct.access(&v);
            self.fully.access(v.pair());
        }
        self.cursor.advance(record);
    }

    /// Classify an entire record stream.
    pub fn run(mut self, records: impl Iterator<Item = BranchRecord>) -> AliasingBreakdown {
        for r in records {
            self.observe(&r);
        }
        self.finish()
    }

    /// Classify an entire record stream and return the raw counts.
    pub fn run_counts(mut self, records: impl Iterator<Item = BranchRecord>) -> ThreeCCounts {
        for r in records {
            self.observe(&r);
        }
        self.finish_counts()
    }

    /// The raw integer tallies accumulated so far.
    pub fn finish_counts(self) -> ThreeCCounts {
        ThreeCCounts {
            references: self.direct.accesses(),
            dm_misses: self.direct.misses(),
            fa_misses: self.fully.misses(),
            cold_misses: self.fully.cold_misses(),
        }
    }

    /// Produce the breakdown.
    pub fn finish(self) -> AliasingBreakdown {
        self.finish_counts().breakdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_trace::prelude::*;

    fn classify(
        entries_log2: u32,
        history_bits: u32,
        records: &[BranchRecord],
    ) -> AliasingBreakdown {
        ThreeCClassifier::new(entries_log2, history_bits, IndexFunction::Gshare)
            .run(records.iter().copied())
    }

    #[test]
    fn empty_trace_is_zero() {
        let b = classify(6, 4, &[]);
        assert_eq!(b.references, 0);
        assert_eq!(b.total, 0.0);
    }

    #[test]
    fn single_branch_is_pure_compulsory() {
        let records = vec![BranchRecord::conditional(0x100, true); 10];
        // h=0 so every execution references the same pair.
        let b = classify(6, 0, &records);
        assert_eq!(b.references, 10);
        assert!((b.total - 0.1).abs() < 1e-12, "one cold miss in ten");
        assert!((b.compulsory - 0.1).abs() < 1e-12);
        assert_eq!(b.capacity, 0.0);
        assert_eq!(b.conflict, 0.0);
    }

    #[test]
    fn components_sum_to_total() {
        // The three components telescope back to the direct-mapped miss
        // ratio exactly: conflict is reported signed (it can dip below
        // zero when LRU loses to direct mapping), so no clamp sliver can
        // break the identity.
        let records: Vec<_> = IbsBenchmark::Verilog.spec().build().take(50_000).collect();
        for n in [6u32, 8, 10] {
            let b = classify(n, 4, &records);
            let sum = b.compulsory + b.capacity + b.conflict;
            assert!((sum - b.total).abs() <= 1e-9, "n={n}: {sum} vs {}", b.total);
            assert!(b.capacity >= 0.0, "capacity can never be negative");
        }
    }

    #[test]
    fn bigger_tables_have_less_capacity_aliasing() {
        let records: Vec<_> = IbsBenchmark::Groff.spec().build().take(100_000).collect();
        let small = classify(6, 4, &records);
        let large = classify(12, 4, &records);
        assert!(
            large.capacity <= small.capacity,
            "capacity {} -> {}",
            small.capacity,
            large.capacity
        );
        assert!(large.total <= small.total);
    }

    #[test]
    fn fully_associative_close_to_or_below_direct_mapped() {
        // LRU is not an optimal policy, so FA may lose to DM by a sliver
        // on adversarial reuse patterns; it must never lose badly, and at
        // comfortable sizes conflicts should be visible.
        let records: Vec<_> = IbsBenchmark::Gs.spec().build().take(100_000).collect();
        let small = classify(8, 4, &records);
        assert!(
            small.fully_associative <= small.total + 0.02,
            "FA {} far above DM {}",
            small.fully_associative,
            small.total
        );
        let big = classify(12, 4, &records);
        assert!(big.conflict > 0.0, "some conflict aliasing expected");
    }

    #[test]
    fn gselect_aliases_more_than_gshare_with_long_history() {
        // The paper's observation: with 12 bits of history, gselect keeps
        // very few address bits and aliases much more.
        let records: Vec<_> = IbsBenchmark::RealGcc.spec().build().take(150_000).collect();
        let gshare =
            ThreeCClassifier::new(10, 12, IndexFunction::Gshare).run(records.iter().copied());
        let gselect =
            ThreeCClassifier::new(10, 12, IndexFunction::Gselect).run(records.iter().copied());
        assert!(
            gselect.total > gshare.total,
            "gselect {} <= gshare {}",
            gselect.total,
            gshare.total
        );
    }
}
