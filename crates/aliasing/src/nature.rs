//! Destructive / harmless / constructive aliasing classification.
//!
//! Section 1 of the paper recalls Young, Gloy and Smith's taxonomy:
//! aliasing is *destructive* when sharing an entry causes a misprediction,
//! *harmless* when it does not change the prediction's correctness, and
//! *constructive* when the intruder's training accidentally fixes a
//! prediction that would have been wrong. The paper leans on this when
//! explaining why its analytical model overestimates gskew's misprediction
//! rate ("constructive aliasing … is not modeled").
//!
//! [`AliasingNature`] runs the aliased predictor and an unaliased shadow
//! (one automaton per `(address, history)` pair) side by side. For each
//! dynamic branch where the tagged table detects aliasing, the pair of
//! (aliased, unaliased) correctness classifies the event.

use crate::cursor::PairCursor;
use bpred_core::counter::{CounterKind, CounterTable, SatCounter};
use bpred_core::index::IndexFunction;
use bpred_core::predictor::Outcome;
use bpred_trace::record::{BranchKind, BranchRecord};
use std::collections::HashMap;

/// Counts of aliasing events by their effect on the prediction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NatureCounts {
    /// Aliased references where the unaliased shadow was right and the
    /// aliased table was wrong.
    pub destructive: u64,
    /// Aliased references where both agreed (right or wrong together).
    pub harmless: u64,
    /// Aliased references where the aliased table was right and the
    /// shadow wrong.
    pub constructive: u64,
    /// References that were not aliased at all.
    pub unaliased: u64,
    /// First encounters (no shadow state yet); excluded from the three
    /// classes.
    pub compulsory: u64,
}

impl NatureCounts {
    /// Total aliased references that were classified.
    pub fn aliased(&self) -> u64 {
        self.destructive + self.harmless + self.constructive
    }

    /// Destructive events per aliased reference.
    pub fn destructive_ratio(&self) -> f64 {
        ratio(self.destructive, self.aliased())
    }

    /// Constructive events per aliased reference.
    pub fn constructive_ratio(&self) -> f64 {
        ratio(self.constructive, self.aliased())
    }

    /// Net misprediction overhead caused by aliasing, per dynamic branch:
    /// `(destructive - constructive) / total`.
    pub fn net_overhead(&self) -> f64 {
        let total = self.aliased() + self.unaliased + self.compulsory;
        if total == 0 {
            return 0.0;
        }
        (self.destructive as f64 - self.constructive as f64) / total as f64
    }
}

#[inline]
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Classifies the nature of aliasing in a direct-mapped, tag-less
/// predictor table (gshare-style by default).
#[derive(Debug, Clone)]
pub struct AliasingNature {
    cursor: PairCursor,
    /// The aliased structure under study.
    table: CounterTable,
    /// Who touched each entry last — detects aliasing occurrences.
    owners: Vec<Option<(u64, u64)>>,
    /// The unaliased shadow: one automaton per pair.
    shadow: HashMap<(u64, u64), SatCounter>,
    func: IndexFunction,
    n: u32,
    kind: CounterKind,
    counts: NatureCounts,
}

impl AliasingNature {
    /// A classifier over a `2^entries_log2`-entry table with
    /// `history_bits` of global history, using `func` indexing and `kind`
    /// automatons.
    ///
    /// # Panics
    ///
    /// Panics if `entries_log2` is 0 or above 30.
    pub fn new(
        entries_log2: u32,
        history_bits: u32,
        func: IndexFunction,
        kind: CounterKind,
    ) -> Self {
        assert!(
            entries_log2 > 0 && entries_log2 <= 30,
            "entries_log2 {entries_log2} out of 1..=30"
        );
        AliasingNature {
            cursor: PairCursor::new(history_bits),
            table: CounterTable::new(entries_log2, kind),
            owners: vec![None; 1 << entries_log2],
            shadow: HashMap::new(),
            func,
            n: entries_log2,
            kind,
            counts: NatureCounts::default(),
        }
    }

    /// Account one trace record.
    pub fn observe(&mut self, record: &BranchRecord) {
        if record.kind == BranchKind::Conditional {
            let v = self.cursor.vector(record.pc);
            let pair = v.pair();
            let idx = self.func.index(&v, self.n);
            let outcome = Outcome::from(record.taken);

            let aliased = match self.owners[idx as usize] {
                Some(owner) => owner != pair,
                None => false, // cold entry: not an inter-substream event
            };
            let aliased_prediction = self.table.predict(idx);

            match self.shadow.get(&pair) {
                None => {
                    self.counts.compulsory += 1;
                    self.shadow
                        .insert(pair, SatCounter::seeded(self.kind, outcome));
                }
                Some(shadow_counter) => {
                    let shadow_prediction = shadow_counter.predict();
                    if aliased {
                        let aliased_right = aliased_prediction == outcome;
                        let shadow_right = shadow_prediction == outcome;
                        match (aliased_right, shadow_right) {
                            (false, true) => self.counts.destructive += 1,
                            (true, false) => self.counts.constructive += 1,
                            _ => self.counts.harmless += 1,
                        }
                    } else {
                        self.counts.unaliased += 1;
                    }
                    let counter = self
                        .shadow
                        .get_mut(&pair)
                        .expect("shadow entry checked above");
                    counter.train(outcome);
                }
            }

            self.table.train(idx, outcome);
            self.owners[idx as usize] = Some(pair);
        }
        self.cursor.advance(record);
    }

    /// Consume a whole record stream and return the counts.
    pub fn run(mut self, records: impl Iterator<Item = BranchRecord>) -> NatureCounts {
        for r in records {
            self.observe(&r);
        }
        self.finish()
    }

    /// The accumulated counts.
    pub fn finish(self) -> NatureCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred_trace::prelude::*;

    fn classify(entries_log2: u32, records: &[BranchRecord]) -> NatureCounts {
        AliasingNature::new(entries_log2, 0, IndexFunction::Bimodal, CounterKind::TwoBit)
            .run(records.iter().copied())
    }

    /// Two opposite-biased branches forced into one entry: destructive.
    #[test]
    fn opposite_biases_are_destructive() {
        let a = 0x1000;
        let b = a + (1 << (1 + 2)); // collides in a 2-entry table
        let mut records = Vec::new();
        for _ in 0..50 {
            records.push(BranchRecord::conditional(a, true));
            records.push(BranchRecord::conditional(b, false));
        }
        let counts = classify(1, &records);
        assert!(counts.aliased() > 0);
        assert!(
            counts.destructive > counts.constructive,
            "opposite biases should be destructive: {counts:?}"
        );
        assert!(counts.net_overhead() > 0.1);
    }

    /// Two same-direction branches sharing an entry: harmless.
    #[test]
    fn agreeing_biases_are_harmless() {
        let a = 0x1000;
        let b = a + (1 << (1 + 2));
        let mut records = Vec::new();
        for _ in 0..50 {
            records.push(BranchRecord::conditional(a, true));
            records.push(BranchRecord::conditional(b, true));
        }
        let counts = classify(1, &records);
        assert!(counts.aliased() > 0);
        assert_eq!(counts.destructive, 0, "{counts:?}");
        assert!(counts.harmless > 0);
        assert!(counts.net_overhead().abs() < 1e-9);
    }

    /// A flip-flopping branch can be rescued by a steadier intruder — the
    /// constructive case exists but is rarer, as Young et al. report.
    #[test]
    fn constructive_aliasing_is_rarer_on_real_workloads() {
        let records: Vec<_> = IbsBenchmark::Groff
            .spec()
            .build()
            .take_conditionals(120_000)
            .collect();
        let counts = AliasingNature::new(10, 4, IndexFunction::Gshare, CounterKind::TwoBit)
            .run(records.into_iter());
        assert!(counts.aliased() > 0);
        assert!(counts.compulsory > 0);
        assert!(
            counts.destructive > counts.constructive,
            "destructive should dominate: {counts:?}"
        );
        assert!(
            counts.constructive > 0,
            "some constructive aliasing should occur: {counts:?}"
        );
    }

    #[test]
    fn empty_stream_is_zero() {
        let counts = classify(4, &[]);
        assert_eq!(counts, NatureCounts::default());
        assert_eq!(counts.net_overhead(), 0.0);
        assert_eq!(counts.destructive_ratio(), 0.0);
    }

    #[test]
    fn unaliased_references_counted() {
        // One lone branch: after the compulsory reference everything is
        // unaliased.
        let records = vec![BranchRecord::conditional(0x100, true); 10];
        let counts = classify(4, &records);
        assert_eq!(counts.compulsory, 1);
        assert_eq!(counts.unaliased, 9);
        assert_eq!(counts.aliased(), 0);
    }
}
