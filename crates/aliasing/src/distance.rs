//! Last-use distance: the `D` of the analytical model (section 5.2).
//!
//! For a dynamic reference to pair `V`, `D` is *the number of distinct
//! `(address, history)` pairs encountered since the last occurrence of
//! `V`* — the LRU stack distance over pairs. A reference hits an N-entry
//! fully-associative LRU table iff `D < N`, which is exactly how the paper
//! separates conflict aliasing (short `D`) from capacity aliasing (long
//! `D`).
//!
//! The tracker runs in O(log T) per reference using a Fenwick tree over
//! reference timestamps holding a 1 at the *most recent* position of each
//! distinct pair.

use std::collections::HashMap;

/// Streaming last-use-distance tracker.
///
/// ```
/// use bpred_aliasing::distance::LastUseDistance;
///
/// let mut d = LastUseDistance::new();
/// assert_eq!(d.observe((1, 0)), None);      // first use
/// assert_eq!(d.observe((2, 0)), None);
/// assert_eq!(d.observe((1, 0)), Some(1));   // one distinct pair between
/// assert_eq!(d.observe((1, 0)), Some(0));   // immediate reuse
/// ```
#[derive(Debug, Clone, Default)]
pub struct LastUseDistance {
    /// Fenwick tree over timestamps (1-based).
    tree: Vec<u32>,
    /// Raw marks (1 at the most recent position of each live pair); kept
    /// so the tree can be rebuilt when it grows — a Fenwick tree cannot be
    /// extended by zero-filling, because a new node covers old positions.
    marks: Vec<u8>,
    /// Most recent timestamp of each pair (1-based).
    last: HashMap<(u64, u64), usize>,
    /// Next timestamp.
    now: usize,
}

impl LastUseDistance {
    /// An empty tracker.
    pub fn new() -> Self {
        LastUseDistance {
            tree: vec![0; 1024],
            marks: vec![0; 1024],
            last: HashMap::new(),
            now: 0,
        }
    }

    fn add(&mut self, i: usize, delta: i32) {
        self.marks[i] = (i32::from(self.marks[i]) + delta) as u8;
        let mut i = i;
        while i < self.tree.len() {
            self.tree[i] = (i64::from(self.tree[i]) + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of marks in `1..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        let mut sum = 0u64;
        while i > 0 {
            sum += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Double the tree, rebuilding from the raw marks in O(new length).
    fn grow(&mut self) {
        let new_len = self.tree.len() * 2;
        self.marks.resize(new_len, 0);
        let mut tree = vec![0u32; new_len];
        for i in 1..new_len {
            tree[i] += u32::from(self.marks[i]);
            let parent = i + (i & i.wrapping_neg());
            if parent < new_len {
                let v = tree[i];
                tree[parent] += v;
            }
        }
        self.tree = tree;
    }

    /// Record a reference to `pair`; returns its last-use distance, or
    /// `None` on first use.
    pub fn observe(&mut self, pair: (u64, u64)) -> Option<u64> {
        self.now += 1;
        let now = self.now;
        if now >= self.tree.len() {
            self.grow();
        }
        let distance = match self.last.get(&pair).copied() {
            Some(prev) => {
                // Distinct pairs strictly between prev and now.
                let d = self.prefix(now - 1) - self.prefix(prev);
                self.add(prev, -1);
                Some(d)
            }
            None => None,
        };
        self.add(now, 1);
        self.last.insert(pair, now);
        distance
    }

    /// Number of distinct pairs seen so far.
    pub fn distinct_pairs(&self) -> usize {
        self.last.len()
    }

    /// Number of references observed.
    pub fn references(&self) -> usize {
        self.now
    }
}

/// Exact fully-associative LRU miss counts for *many* capacities from one
/// distance stream.
///
/// A reference with last-use distance `d` hits an `N`-entry
/// fully-associative LRU table iff `d < N` (the inclusion property of LRU
/// stacks), so one [`LastUseDistance`] pass can serve every capacity at
/// once: each observation lands in the smallest capacity that would hit,
/// and the per-capacity miss counts fall out of a suffix sum at the end.
/// Unlike [`DistanceHistogram::hit_ratio_at`] this is exact for
/// *arbitrary* capacities, and it returns integer counts — the batched
/// three-C engine needs bit-identical tallies, not estimates.
#[derive(Debug, Clone)]
pub struct CapacitySweep {
    /// Strictly increasing capacities under measurement.
    capacities: Vec<u64>,
    /// `hits_at[j]` counts re-references whose distance first fits
    /// `capacities[j]` (i.e. `capacities[j-1] <= d < capacities[j]`).
    hits_at: Vec<u64>,
    references: u64,
    first_uses: u64,
}

impl CapacitySweep {
    /// A sweep over `capacities`, which must be strictly increasing and
    /// nonzero.
    ///
    /// # Panics
    ///
    /// Panics on an empty, zero-containing or non-increasing capacity
    /// list.
    pub fn new(capacities: &[u64]) -> Self {
        assert!(!capacities.is_empty(), "no capacities to sweep");
        assert!(capacities[0] > 0, "capacity must be nonzero");
        assert!(
            capacities.windows(2).all(|w| w[0] < w[1]),
            "capacities must be strictly increasing"
        );
        CapacitySweep {
            capacities: capacities.to_vec(),
            hits_at: vec![0; capacities.len()],
            references: 0,
            first_uses: 0,
        }
    }

    /// Account one observation from [`LastUseDistance::observe`].
    #[inline]
    pub fn observe(&mut self, distance: Option<u64>) {
        self.references += 1;
        match distance {
            None => self.first_uses += 1,
            Some(d) => {
                // Smallest capacity with d < capacity; beyond the largest,
                // the reference misses every table under measurement.
                let j = self.capacities.partition_point(|&c| c <= d);
                if j < self.hits_at.len() {
                    self.hits_at[j] += 1;
                }
            }
        }
    }

    /// References observed so far.
    pub fn references(&self) -> u64 {
        self.references
    }

    /// First-use (compulsory) references — a miss at every capacity.
    pub fn first_uses(&self) -> u64 {
        self.first_uses
    }

    /// Total miss counts per capacity, parallel to the constructor's
    /// capacity list. Each entry includes the first-use misses.
    pub fn misses(&self) -> Vec<u64> {
        let mut hits = 0u64;
        self.hits_at
            .iter()
            .map(|&h| {
                hits += h;
                self.references - hits
            })
            .collect()
    }

    /// The capacity list under measurement.
    pub fn capacities(&self) -> &[u64] {
        &self.capacities
    }
}

/// A power-of-two histogram of last-use distances with a first-use bucket,
/// handy for inspecting workload locality.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistanceHistogram {
    /// `buckets[i]` counts distances in `[2^(i-1), 2^i)` (bucket 0 counts
    /// distance 0).
    buckets: Vec<u64>,
    /// First-use references (infinite distance).
    first_uses: u64,
    total: u64,
}

impl DistanceHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        DistanceHistogram::default()
    }

    /// Account one observation from [`LastUseDistance::observe`].
    pub fn record(&mut self, distance: Option<u64>) {
        self.total += 1;
        match distance {
            None => self.first_uses += 1,
            Some(d) => {
                let bucket = if d == 0 {
                    0
                } else {
                    64 - d.leading_zeros() as usize
                };
                if self.buckets.len() <= bucket {
                    self.buckets.resize(bucket + 1, 0);
                }
                self.buckets[bucket] += 1;
            }
        }
    }

    /// First-use count.
    pub fn first_uses(&self) -> u64 {
        self.first_uses
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of (re-)references with distance below `limit` — the hit
    /// ratio of a `limit`-entry fully-associative LRU table, counting
    /// first uses as misses. Exact when `limit` is a power of two (bucket
    /// boundaries align); otherwise a floor estimate.
    pub fn hit_ratio_at(&self, limit: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut hits = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            let hi = if i == 0 { 1 } else { 1u64 << i }; // exclusive bound
            if hi <= limit {
                hits += count;
            }
        }
        hits as f64 / self.total as f64
    }

    /// The raw buckets: `(upper_bound_exclusive, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| (if i == 0 { 1 } else { 1u64 << i }, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n^2) reference implementation: scan back for the previous
    /// occurrence and count distinct pairs in between.
    fn naive_distances(refs: &[(u64, u64)]) -> Vec<Option<u64>> {
        let mut out = Vec::with_capacity(refs.len());
        for (i, &p) in refs.iter().enumerate() {
            let prev = refs[..i].iter().rposition(|&q| q == p);
            out.push(prev.map(|j| {
                let mut distinct = std::collections::HashSet::new();
                for &q in &refs[j + 1..i] {
                    distinct.insert(q);
                }
                distinct.len() as u64
            }));
        }
        out
    }

    #[test]
    fn simple_sequence() {
        let mut d = LastUseDistance::new();
        assert_eq!(d.observe((1, 0)), None);
        assert_eq!(d.observe((2, 0)), None);
        assert_eq!(d.observe((3, 0)), None);
        assert_eq!(d.observe((1, 0)), Some(2));
        assert_eq!(d.observe((1, 0)), Some(0));
        assert_eq!(d.observe((2, 0)), Some(2));
        assert_eq!(d.distinct_pairs(), 3);
        assert_eq!(d.references(), 6);
    }

    #[test]
    fn repeated_pair_between_does_not_double_count() {
        let mut d = LastUseDistance::new();
        d.observe((1, 0));
        d.observe((2, 0));
        d.observe((2, 0));
        d.observe((2, 0));
        // Only ONE distinct pair (2) since the last use of 1.
        assert_eq!(d.observe((1, 0)), Some(1));
    }

    #[test]
    fn matches_naive_reference_on_random_stream() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let refs: Vec<(u64, u64)> = (0..2_000)
            .map(|_| (rng.gen_range(0..40u64), rng.gen_range(0..4u64)))
            .collect();
        let naive = naive_distances(&refs);
        let mut fast = LastUseDistance::new();
        for (i, &p) in refs.iter().enumerate() {
            assert_eq!(fast.observe(p), naive[i], "mismatch at reference {i}");
        }
    }

    #[test]
    fn tree_grows_past_initial_capacity() {
        let mut d = LastUseDistance::new();
        for i in 0..5_000u64 {
            d.observe((i % 7, 0));
        }
        assert_eq!(d.references(), 5_000);
        assert_eq!(d.distinct_pairs(), 7);
        // The loop ends at i=4999 (pair 1); the last use of pair 2 was at
        // i=4993, with the 6 other pairs touched since.
        assert_eq!(d.observe((2, 0)), Some(6));
        // And the steady-state period: re-observing pair 2 immediately
        // gives distance 0.
        assert_eq!(d.observe((2, 0)), Some(0));
    }

    #[test]
    fn histogram_buckets_and_hit_ratio() {
        let mut h = DistanceHistogram::new();
        h.record(None); // first use -> miss everywhere
        h.record(Some(0)); // hits any table
        h.record(Some(3)); // bucket [2,4)
        h.record(Some(100)); // bucket [64,128)
        assert_eq!(h.total(), 4);
        assert_eq!(h.first_uses(), 1);
        // limit 1: only distance 0 hits.
        assert!((h.hit_ratio_at(1) - 0.25).abs() < 1e-12);
        // limit 128: distances 0, 3, 100 hit.
        assert!((h.hit_ratio_at(128) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_of_empty_is_zero() {
        let h = DistanceHistogram::new();
        assert_eq!(h.hit_ratio_at(1024), 0.0);
    }

    #[test]
    fn capacity_sweep_counts_misses_per_capacity() {
        let mut s = CapacitySweep::new(&[1, 2, 4]);
        s.observe(None); // misses everywhere
        s.observe(Some(0)); // hits every table
        s.observe(Some(1)); // hits capacity >= 2
        s.observe(Some(3)); // hits capacity >= 4
        s.observe(Some(4)); // misses everywhere under measurement
        assert_eq!(s.references(), 5);
        assert_eq!(s.first_uses(), 1);
        assert_eq!(s.misses(), vec![4, 3, 2]);
    }

    #[test]
    fn capacity_sweep_matches_per_capacity_scan() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let refs: Vec<(u64, u64)> = (0..3_000)
            .map(|_| (rng.gen_range(0..60u64), rng.gen_range(0..4u64)))
            .collect();
        let capacities = [1u64, 2, 8, 16, 64];
        let mut lud = LastUseDistance::new();
        let mut sweep = CapacitySweep::new(&capacities);
        let mut expected = vec![0u64; capacities.len()];
        for &p in &refs {
            let d = lud.observe(p);
            sweep.observe(d);
            for (j, &cap) in capacities.iter().enumerate() {
                expected[j] += u64::from(d.is_none_or(|d| d >= cap));
            }
        }
        assert_eq!(sweep.misses(), expected);
        assert_eq!(sweep.references(), refs.len() as u64);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn capacity_sweep_rejects_unsorted_capacities() {
        let _ = CapacitySweep::new(&[4, 2]);
    }
}
