//! Bias measurement: the `b` parameter of the analytical model.
//!
//! Section 5.2 evaluates `b` "for the entire trace by measuring the
//! density of static (address, history) pairs with bias taken". This
//! module measures per-pair outcome tallies and reports that density,
//! along with the dynamic taken rate.

use crate::cursor::PairCursor;
use bpred_trace::record::{BranchKind, BranchRecord};
use std::collections::HashMap;

/// Per-substream outcome tallies and the derived bias statistics.
#[derive(Debug, Clone)]
pub struct BiasStats {
    cursor: PairCursor,
    tallies: HashMap<(u64, u64), (u64, u64)>, // (taken, total)
    dynamic_taken: u64,
    dynamic: u64,
}

impl BiasStats {
    /// Bias statistics under `history_bits` of global history.
    pub fn new(history_bits: u32) -> Self {
        BiasStats {
            cursor: PairCursor::new(history_bits),
            tallies: HashMap::new(),
            dynamic_taken: 0,
            dynamic: 0,
        }
    }

    /// Account one trace record.
    pub fn observe(&mut self, record: &BranchRecord) {
        if record.kind == BranchKind::Conditional {
            self.dynamic += 1;
            self.dynamic_taken += u64::from(record.taken);
            let entry = self
                .tallies
                .entry(self.cursor.pair(record.pc))
                .or_insert((0, 0));
            entry.0 += u64::from(record.taken);
            entry.1 += 1;
        }
        self.cursor.advance(record);
    }

    /// Consume a whole stream.
    pub fn run(mut self, records: impl Iterator<Item = BranchRecord>) -> Self {
        for r in records {
            self.observe(&r);
        }
        self
    }

    /// The paper's `b`: fraction of static `(address, history)` pairs
    /// whose majority outcome is taken (ties count as taken, matching the
    /// "bias taken" phrasing).
    pub fn static_bias_taken(&self) -> f64 {
        if self.tallies.is_empty() {
            return 0.0;
        }
        let biased = self
            .tallies
            .values()
            .filter(|(taken, total)| 2 * taken >= *total)
            .count();
        biased as f64 / self.tallies.len() as f64
    }

    /// Dynamic taken rate over all conditional branches.
    pub fn dynamic_taken_rate(&self) -> f64 {
        if self.dynamic == 0 {
            0.0
        } else {
            self.dynamic_taken as f64 / self.dynamic as f64
        }
    }

    /// Number of static pairs observed.
    pub fn static_pairs(&self) -> u64 {
        self.tallies.len() as u64
    }

    /// Average per-pair agreement with the pair's majority outcome — an
    /// upper bound on any per-substream predictor's accuracy, useful as a
    /// sanity reference for Table 2.
    pub fn majority_agreement(&self) -> f64 {
        if self.dynamic == 0 {
            return 0.0;
        }
        let agree: u64 = self
            .tallies
            .values()
            .map(|&(taken, total)| taken.max(total - taken))
            .sum();
        agree as f64 / self.dynamic as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_majorities() {
        let records = vec![
            BranchRecord::conditional(0x100, true),
            BranchRecord::conditional(0x100, true),
            BranchRecord::conditional(0x100, false),
            BranchRecord::conditional(0x200, false),
            BranchRecord::conditional(0x200, false),
        ];
        let b = BiasStats::new(0).run(records.into_iter());
        assert_eq!(b.static_pairs(), 2);
        assert!((b.static_bias_taken() - 0.5).abs() < 1e-12);
        assert!((b.dynamic_taken_rate() - 0.4).abs() < 1e-12);
        // majority agreement: (2 + 2) / 5
        assert!((b.majority_agreement() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn tie_counts_as_taken() {
        let records = vec![
            BranchRecord::conditional(0x100, true),
            BranchRecord::conditional(0x100, false),
        ];
        let b = BiasStats::new(0).run(records.into_iter());
        assert_eq!(b.static_bias_taken(), 1.0);
    }

    #[test]
    fn empty_is_zero() {
        let b = BiasStats::new(4).run(std::iter::empty());
        assert_eq!(b.static_bias_taken(), 0.0);
        assert_eq!(b.dynamic_taken_rate(), 0.0);
        assert_eq!(b.majority_agreement(), 0.0);
    }
}
