//! # bpred-aliasing — the three-Cs classification of branch aliasing
//!
//! Section 2 of the paper transplants Hill's three-Cs cache-miss model to
//! branch-predictor tables:
//!
//! * **compulsory** aliasing — a branch substream (an `(address, history)`
//!   pair) is seen for the first time;
//! * **capacity** aliasing — the working set of substreams exceeds the
//!   table size (measured as misses of a *fully-associative LRU* tagged
//!   table);
//! * **conflict** aliasing — two concurrently live substreams collide in a
//!   direct-mapped table even though capacity would suffice (the
//!   difference between direct-mapped and fully-associative miss ratios).
//!
//! The measurement instrument (section 3) is a table that stores, instead
//! of counters, the *identity* of the last pair that touched each entry:
//! a cache with a line size of one datum. This crate provides those
//! instruments plus the last-use-distance machinery behind the paper's
//! analytical model:
//!
//! * [`cursor`] — turns a branch-record stream into `(address, history)`
//!   references.
//! * [`tagged`] — direct-mapped tagged table
//!   ([`tagged::TaggedDirectMapped`]).
//! * [`fully_assoc`] — fully-associative LRU tagged table.
//! * [`three_c`] — one-pass classifier producing the compulsory /
//!   capacity / conflict breakdown of figures 1 and 2.
//! * [`batch`] — single-pass batched grid classification: monomorphized
//!   direct-mapped kernels over a column-view trace plus one shared
//!   last-use-distance pass serving every fully-associative capacity at
//!   once (`distance < N` ⟺ hit in an N-entry LRU table).
//! * [`distance`] — O(log n) last-use distance (distinct pairs since last
//!   occurrence), the `D` of formulas (1) and (2).
//! * [`substream`] — substream-ratio and compulsory-aliasing measurement
//!   (Table 2).
//! * [`nature`] — destructive / harmless / constructive classification of
//!   individual aliasing events (the Young–Gloy–Smith taxonomy of
//!   section 1).
//! * [`set_assoc`] — the identity-tagged set-associative bridge between
//!   the direct-mapped and fully-associative curves (quantifying the
//!   "costly alternative" of section 3.3).
//! * [`offenders`] — pairwise interference attribution: which static
//!   branches conflict, and how concentrated the conflicts are.
//! * [`bias`] — the bias parameter `b` of the analytical model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bias;
pub mod cursor;
pub mod distance;
pub mod fully_assoc;
pub mod nature;
pub mod offenders;
pub mod set_assoc;
pub mod substream;
pub mod tagged;
pub mod three_c;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::batch::ThreeCCell;
    pub use crate::bias::BiasStats;
    pub use crate::cursor::PairCursor;
    pub use crate::distance::{CapacitySweep, DistanceHistogram, LastUseDistance};
    pub use crate::fully_assoc::TaggedFullyAssociative;
    pub use crate::nature::{AliasingNature, NatureCounts};
    pub use crate::offenders::{OffenderAnalysis, OffenderPair};
    pub use crate::set_assoc::TaggedSetAssociative;
    pub use crate::substream::SubstreamStats;
    pub use crate::tagged::TaggedDirectMapped;
    pub use crate::three_c::{AliasingBreakdown, ThreeCClassifier, ThreeCCounts};
}
