//! Converts a branch-record stream into the `(address, history)` pair
//! references that the aliasing instruments consume.

use bpred_core::history::GlobalHistory;
use bpred_core::predictor::Outcome;
use bpred_core::vector::InfoVector;
use bpred_trace::record::{BranchKind, BranchRecord};

/// Tracks global history over a record stream and forms the
/// `(address, history)` pair for each conditional branch, exactly as a
/// global-history predictor would see it (unconditional branches shift in
/// as taken).
///
/// ```
/// use bpred_aliasing::cursor::PairCursor;
/// use bpred_trace::record::BranchRecord;
///
/// let mut cursor = PairCursor::new(4);
/// let r = BranchRecord::conditional(0x1000, true);
/// let pair = cursor.pair(r.pc);
/// cursor.advance(&r);
/// assert_eq!(pair, (0x1000 >> 2, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairCursor {
    history: GlobalHistory,
}

impl PairCursor {
    /// A cursor tracking `history_bits` of global history.
    pub fn new(history_bits: u32) -> Self {
        PairCursor {
            history: GlobalHistory::new(history_bits),
        }
    }

    /// The `(address, history)` pair a lookup at `pc` would reference
    /// right now.
    #[inline]
    pub fn pair(&self, pc: u64) -> (u64, u64) {
        InfoVector::new(pc, self.history.value(), self.history.len()).pair()
    }

    /// The packed information vector for `pc` (for skew-indexed analyses).
    #[inline]
    pub fn vector(&self, pc: u64) -> InfoVector {
        InfoVector::new(pc, self.history.value(), self.history.len())
    }

    /// Account a record into the history register.
    #[inline]
    pub fn advance(&mut self, record: &BranchRecord) {
        let outcome = if record.kind == BranchKind::Conditional {
            Outcome::from(record.taken)
        } else {
            Outcome::Taken
        };
        self.history.push(outcome);
    }

    /// History length in bits.
    pub fn history_bits(&self) -> u32 {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_tracks_conditionals_and_unconditionals() {
        let mut c = PairCursor::new(3);
        c.advance(&BranchRecord::conditional(0x100, false));
        c.advance(&BranchRecord::unconditional(0x104)); // shifts taken
        c.advance(&BranchRecord::conditional(0x108, true));
        assert_eq!(c.pair(0x200).1, 0b011);
    }

    #[test]
    fn zero_history_pairs_are_address_only() {
        let mut c = PairCursor::new(0);
        c.advance(&BranchRecord::conditional(0x100, true));
        assert_eq!(c.pair(0x100), (0x100 >> 2, 0));
    }

    #[test]
    fn pair_truncates_history_to_length() {
        let mut c = PairCursor::new(2);
        for _ in 0..5 {
            c.advance(&BranchRecord::conditional(0x100, true));
        }
        assert_eq!(c.pair(0x100).1, 0b11);
    }
}
