//! The direct-mapped tagged table of section 3: each entry stores the
//! identity of the last `(address, history)` pair that referenced it.
//!
//! "Aliasing occurs when the indexing (address, history) pair is different
//! from the stored pair. … Our simulated tagged table is like a cache with
//! a line size of one datum, and an aliasing occurrence corresponds to a
//! cache miss."

use bpred_core::index::IndexFunction;
use bpred_core::vector::InfoVector;

/// A direct-mapped, identity-storing table measuring total aliasing for a
/// given index function.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedDirectMapped {
    func: IndexFunction,
    n: u32,
    entries: Vec<Option<(u64, u64)>>,
    accesses: u64,
    misses: u64,
    cold_misses: u64,
}

impl TaggedDirectMapped {
    /// A `2^entries_log2`-entry table indexed by `func`.
    ///
    /// # Panics
    ///
    /// Panics if `entries_log2` is 0 or above 30.
    pub fn new(entries_log2: u32, func: IndexFunction) -> Self {
        assert!(
            entries_log2 > 0 && entries_log2 <= 30,
            "entries_log2 {entries_log2} out of 1..=30"
        );
        TaggedDirectMapped {
            func,
            n: entries_log2,
            entries: vec![None; 1 << entries_log2],
            accesses: 0,
            misses: 0,
            cold_misses: 0,
        }
    }

    /// Reference the table with vector `v`; returns `true` on an aliasing
    /// occurrence (the stored pair differs or the entry is cold).
    pub fn access(&mut self, v: &InfoVector) -> bool {
        self.accesses += 1;
        let idx = self.func.index(v, self.n) as usize;
        let pair = v.pair();
        match self.entries[idx] {
            Some(stored) if stored == pair => false,
            Some(_) => {
                self.entries[idx] = Some(pair);
                self.misses += 1;
                true
            }
            None => {
                self.entries[idx] = Some(pair);
                self.misses += 1;
                self.cold_misses += 1;
                true
            }
        }
    }

    /// Number of references so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of aliasing occurrences (including cold entries).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Misses that filled a cold (never used) entry.
    pub fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// The paper's *aliasing ratio*: occurrences / references.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// The index function in use.
    pub fn index_function(&self) -> IndexFunction {
        self.func
    }

    /// Table size in entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pc: u64, hist: u64, k: u32) -> InfoVector {
        InfoVector::new(pc, hist, k)
    }

    #[test]
    fn first_access_is_cold_miss() {
        let mut t = TaggedDirectMapped::new(4, IndexFunction::Gshare);
        assert!(t.access(&v(0x100, 0, 4)));
        assert_eq!(t.cold_misses(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn repeat_access_hits() {
        let mut t = TaggedDirectMapped::new(4, IndexFunction::Gshare);
        t.access(&v(0x100, 0b1010, 4));
        assert!(!t.access(&v(0x100, 0b1010, 4)));
        assert_eq!(t.misses(), 1);
        assert_eq!(t.accesses(), 2);
        assert!((t.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conflicting_pairs_alternate_misses() {
        // Two pairs that collide under gshare: same XOR of addr and
        // aligned history. n=4, k=4: (a=3, h=5) and (a=12, h=10).
        let mut t = TaggedDirectMapped::new(4, IndexFunction::Gshare);
        let a = v(0b0011 << 2, 0b0101, 4);
        let b = v(0b1100 << 2, 0b1010, 4);
        assert_eq!(
            IndexFunction::Gshare.index(&a, 4),
            IndexFunction::Gshare.index(&b, 4)
        );
        t.access(&a); // cold
        assert!(t.access(&b), "b evicts a");
        assert!(t.access(&a), "a evicts b");
        assert!(t.access(&b));
        assert_eq!(t.misses(), 4);
        assert_eq!(t.cold_misses(), 1);
    }

    #[test]
    fn different_history_same_address_is_aliasing_too() {
        let mut t = TaggedDirectMapped::new(6, IndexFunction::Bimodal);
        // Bimodal ignores history, so the same pc under two histories
        // shares the entry — and the identity check flags aliasing.
        t.access(&v(0x100, 0b0001, 4));
        assert!(t.access(&v(0x100, 0b0010, 4)));
    }

    #[test]
    #[should_panic(expected = "out of 1..=30")]
    fn zero_size_panics() {
        let _ = TaggedDirectMapped::new(0, IndexFunction::Gshare);
    }
}
