//! The fully-associative LRU tagged table: its miss ratio is the sum of
//! compulsory and capacity aliasing (sections 3.2 and 5.2).
//!
//! "Because it bases its decisions solely on past information, the LRU
//! policy gives a reasonable base value of the amount of conflict aliasing
//! that can be removed by a hardware-only scheme."

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: (u64, u64),
    prev: usize,
    next: usize,
}

/// An identity-only, fully-associative table with LRU replacement.
///
/// All operations are O(1) (hash map + intrusive recency list).
#[derive(Debug, Clone)]
pub struct TaggedFullyAssociative {
    capacity: usize,
    map: HashMap<(u64, u64), usize>,
    nodes: Vec<Node>,
    head: usize,
    tail: usize,
    accesses: u64,
    misses: u64,
    cold_misses: u64,
    seen: HashMap<(u64, u64), ()>,
}

impl TaggedFullyAssociative {
    /// A table holding at most `capacity` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        TaggedFullyAssociative {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
            accesses: 0,
            misses: 0,
            cold_misses: 0,
            seen: HashMap::new(),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Reference the table with `pair`; returns `true` on a miss
    /// (compulsory or capacity).
    pub fn access(&mut self, pair: (u64, u64)) -> bool {
        self.accesses += 1;
        if let Some(&i) = self.map.get(&pair) {
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return false;
        }
        self.misses += 1;
        if self.seen.insert(pair, ()).is_none() {
            self.cold_misses += 1;
        }
        let slot = if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.nodes[victim].key);
            self.nodes[victim].key = pair;
            victim
        } else {
            self.nodes.push(Node {
                key: pair,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.push_front(slot);
        self.map.insert(pair, slot);
        true
    }

    /// Number of references so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses (compulsory + capacity).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// First-reference (compulsory) misses.
    pub fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// Capacity misses alone (total minus compulsory).
    pub fn capacity_misses(&self) -> u64 {
        self.misses - self.cold_misses
    }

    /// Miss ratio over all references.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Table capacity in pairs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_within_capacity() {
        let mut t = TaggedFullyAssociative::new(4);
        for i in 0..4u64 {
            assert!(t.access((i, 0)), "first touch misses");
        }
        for i in 0..4u64 {
            assert!(!t.access((i, 0)), "resident pair hits");
        }
        assert_eq!(t.misses(), 4);
        assert_eq!(t.cold_misses(), 4);
        assert_eq!(t.capacity_misses(), 0);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = TaggedFullyAssociative::new(2);
        t.access((1, 0));
        t.access((2, 0));
        t.access((1, 0)); // touch 1; LRU = 2
        t.access((3, 0)); // evicts 2
        assert!(!t.access((1, 0)));
        assert!(t.access((2, 0)), "2 was evicted (capacity miss)");
        assert_eq!(t.cold_misses(), 3);
        assert_eq!(t.capacity_misses(), 1);
    }

    #[test]
    fn cyclic_overflow_thrashes() {
        // The classic LRU pathology: a cyclic working set one larger than
        // capacity misses every time.
        let mut t = TaggedFullyAssociative::new(3);
        for round in 0..5 {
            for i in 0..4u64 {
                assert!(t.access((i, 0)), "round {round}, pair {i}");
            }
        }
        assert_eq!(t.misses(), 20);
        assert_eq!(t.cold_misses(), 4);
    }

    #[test]
    fn distinguishes_histories() {
        let mut t = TaggedFullyAssociative::new(8);
        assert!(t.access((1, 0b01)));
        assert!(t.access((1, 0b10)), "same address, new history = new pair");
        assert!(!t.access((1, 0b01)));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = TaggedFullyAssociative::new(0);
    }
}
