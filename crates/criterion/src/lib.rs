//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! crate vendors the subset of the criterion 0.5 API the workspace's
//! benches use: [`Criterion`], [`Criterion::benchmark_group`] with
//! `sample_size` / `warm_up_time` / `measurement_time` / `throughput` /
//! `bench_function` / `bench_with_input` / `finish`, [`Bencher::iter`],
//! [`Throughput`], [`BenchmarkId`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple: each benchmark warms up for the
//! configured duration, then runs timed batches until the measurement
//! window elapses (at least `sample_size` batches), and reports the
//! mean, minimum, and maximum time per iteration plus derived
//! throughput. There is no HTML report, outlier analysis, or saved
//! baseline — this is a wall-clock harness, which is all the repo's
//! performance acceptance checks need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from
/// deleting a computation whose result is otherwise unused.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Work performed per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Something usable as a benchmark name: a `&str`, `String`, or
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The display label for the benchmark.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// The measurement harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    warm_up: Duration,
    measurement: Duration,
    min_samples: usize,
}

impl Bencher {
    /// Time `routine`, first warming up, then sampling until the
    /// measurement window is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also used to size batches so that each timed sample
        // is long enough for the clock to resolve.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        // Aim for ~1ms per sample, at least one iteration.
        self.iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64
        };

        let run_start = Instant::now();
        while self.samples.len() < self.min_samples || run_start.elapsed() < self.measurement {
            let sample_start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(sample_start.elapsed() / self.iters_per_sample as u32);
            if self.samples.len() >= self.min_samples.max(4) * 64 {
                break; // routine is extremely fast; enough data.
            }
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the minimum number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the target measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            warm_up: self.warm_up,
            measurement: self.measurement,
            min_samples: self.sample_size,
        };
        f(&mut bencher);
        self.report(&label, &bencher);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group. (Reporting happens as each benchmark finishes.)
    pub fn finish(&mut self) {}

    fn report(&mut self, label: &str, bencher: &Bencher) {
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{}/{label:<40} no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mut line = format!(
            "{}/{label:<40} time: [{} {} {}]",
            self.name,
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
        );
        if let Some(throughput) = self.throughput {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                match throughput {
                    Throughput::Elements(n) => {
                        let _ = write!(line, "  thrpt: {:.3} Melem/s", n as f64 / secs / 1e6);
                    }
                    Throughput::Bytes(n) => {
                        let _ = write!(
                            line,
                            "  thrpt: {:.3} MiB/s",
                            n as f64 / secs / (1 << 20) as f64
                        );
                    }
                }
            }
        }
        println!("{line}");
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            label: label.to_string(),
            mean,
        });
    }
}

/// One finished measurement, retained on [`Criterion`] so callers (and
/// tests) can inspect results programmatically.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name.
    pub group: String,
    /// Benchmark label within the group.
    pub label: String,
    /// Mean time per iteration.
    pub mean: Duration,
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// The benchmark manager: entry point mirroring upstream criterion.
pub struct Criterion {
    /// All measurements taken so far.
    pub results: Vec<BenchResult>,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honor a `--bench <filter>` style positional filter the way
        // cargo bench passes it through; unknown flags are ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion {
            results: Vec::new(),
            filter,
        }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: 10,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
        }
    }

    /// Run a standalone benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Whether the CLI filter (if any) selects this group.
    pub fn group_selected(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }
}

/// Bundle benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_duration_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }

    #[test]
    fn group_runs_and_records_results() {
        let mut criterion = Criterion {
            results: Vec::new(),
            filter: None,
        };
        {
            let mut group = criterion.benchmark_group("smoke");
            group.sample_size(2);
            group.warm_up_time(Duration::from_millis(1));
            group.measurement_time(Duration::from_millis(5));
            group.throughput(Throughput::Elements(64));
            group.bench_function("sum", |b| {
                b.iter(|| (0..64u64).sum::<u64>());
            });
            group.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
                b.iter(|| x * 2);
            });
            group.finish();
        }
        assert_eq!(criterion.results.len(), 2);
        assert_eq!(criterion.results[0].label, "sum");
        assert_eq!(criterion.results[1].label, "7");
        // A sub-nanosecond routine can legitimately round to a 0ns mean,
        // so only the heavier benchmark pins a positive measurement.
        assert!(criterion.results[0].mean > Duration::ZERO);
    }
}
