//! Synthetic program model: a control-flow graph of basic blocks whose
//! random walk emits a branch trace.
//!
//! A [`Program`] is a set of [`Block`]s, each ending in a control transfer.
//! A [`Walker`] executes the program: it evaluates the terminating branch's
//! [`Behavior`], emits one [`BranchRecord`] per step and follows the chosen
//! edge. Because the walk revisits blocks along structured paths (loops,
//! calls, a dispatcher), the resulting `(address, history)` reference
//! stream has the statistical shape of a real instruction trace: a small
//! number of distinct history values per branch (the paper's *substream
//! ratio*), Zipf-distributed block frequencies, and history correlation.

use crate::behavior::{Behavior, SiteState};
use crate::record::{BranchKind, BranchRecord, Privilege};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Index of a block within its [`Program`].
pub type BlockId = usize;

/// Maximum call-stack depth tracked by a [`Walker`]; deeper calls behave
/// like tail calls (the return address is dropped).
pub const MAX_CALL_DEPTH: usize = 64;

/// How a basic block transfers control.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// A conditional branch: `taken`/`fallthrough` successors chosen by
    /// the site's behaviour.
    Branch {
        /// Outcome model of this branch site.
        behavior: Behavior,
        /// Successor when taken.
        taken: BlockId,
        /// Successor when not taken.
        fallthrough: BlockId,
    },
    /// An unconditional jump.
    Jump {
        /// Successor block.
        target: BlockId,
    },
    /// A subroutine call; the walker pushes `return_to` on its stack.
    Call {
        /// Entry block of the callee.
        callee: BlockId,
        /// Block to resume at when the callee returns.
        return_to: BlockId,
    },
    /// Return to the most recent call site (or the program entry when the
    /// stack is empty).
    Return,
}

/// A basic block: an address and a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Address of the terminating branch instruction.
    pub pc: u64,
    /// The control transfer ending the block.
    pub terminator: Terminator,
}

/// A malformed synthetic program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program has no blocks.
    Empty,
    /// The entry block id is out of range.
    BadEntry(BlockId),
    /// A terminator references a block id out of range.
    BadTarget {
        /// The block whose terminator is invalid.
        block: BlockId,
        /// The out-of-range target.
        target: BlockId,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => f.write_str("program has no blocks"),
            ProgramError::BadEntry(e) => write!(f, "entry block {e} out of range"),
            ProgramError::BadTarget { block, target } => {
                write!(f, "block {block} targets out-of-range block {target}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A synthetic program: blocks plus an entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    blocks: Vec<Block>,
    entry: BlockId,
}

impl Program {
    /// Assemble a program from blocks, validating all edges.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] when the block list is empty, the entry is
    /// out of range, or any terminator references a missing block.
    pub fn new(blocks: Vec<Block>, entry: BlockId) -> Result<Self, ProgramError> {
        if blocks.is_empty() {
            return Err(ProgramError::Empty);
        }
        if entry >= blocks.len() {
            return Err(ProgramError::BadEntry(entry));
        }
        for (id, block) in blocks.iter().enumerate() {
            let check = |target: BlockId| {
                if target >= blocks.len() {
                    Err(ProgramError::BadTarget { block: id, target })
                } else {
                    Ok(())
                }
            };
            match block.terminator {
                Terminator::Branch {
                    taken, fallthrough, ..
                } => {
                    check(taken)?;
                    check(fallthrough)?;
                }
                Terminator::Jump { target } => check(target)?,
                Terminator::Call { callee, return_to } => {
                    check(callee)?;
                    check(return_to)?;
                }
                Terminator::Return => {}
            }
        }
        Ok(Program { blocks, entry })
    }

    /// The program's blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of static conditional branch sites.
    pub fn static_conditionals(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| matches!(b.terminator, Terminator::Branch { .. }))
            .count()
    }
}

/// Executes a [`Program`], yielding one [`BranchRecord`] per step.
///
/// The walker maintains its own 64-bit history register (conditional *and*
/// unconditional branches shift in, matching the predictors' view) so that
/// [`Behavior::HistoryParity`] sites see the same history a global-history
/// predictor would.
///
/// The iterator never terminates; bound it with
/// [`take_conditionals`](crate::stream::TraceSourceExt::take_conditionals)
/// or [`Iterator::take`].
#[derive(Debug, Clone)]
pub struct Walker {
    program: Program,
    states: Vec<SiteState>,
    current: BlockId,
    stack: Vec<BlockId>,
    history: u64,
    rng: SmallRng,
    privilege: Privilege,
}

impl Walker {
    /// Start walking `program` from its entry with the given RNG seed.
    pub fn new(program: Program, seed: u64) -> Self {
        let states = vec![SiteState::default(); program.blocks.len()];
        let current = program.entry;
        Walker {
            program,
            states,
            current,
            stack: Vec::with_capacity(MAX_CALL_DEPTH),
            history: 0,
            rng: SmallRng::seed_from_u64(seed),
            privilege: Privilege::User,
        }
    }

    /// Tag every emitted record as kernel-mode.
    pub fn in_kernel(mut self) -> Self {
        self.privilege = Privilege::Kernel;
        self
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    #[inline]
    fn push_history(&mut self, taken: bool) {
        self.history = (self.history << 1) | u64::from(taken);
    }
}

impl Iterator for Walker {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        let block_id = self.current;
        let pc = self.program.blocks[block_id].pc;
        // Resolve the step while borrowing the program immutably; the
        // site-state, RNG and stack fields are disjoint, so no cloning is
        // needed in this hot path.
        let (kind, taken, next) = match &self.program.blocks[block_id].terminator {
            Terminator::Branch {
                behavior,
                taken,
                fallthrough,
            } => {
                let outcome =
                    behavior.next_outcome(&mut self.states[block_id], self.history, &mut self.rng);
                (
                    BranchKind::Conditional,
                    outcome,
                    if outcome { *taken } else { *fallthrough },
                )
            }
            Terminator::Jump { target } => (BranchKind::Unconditional, true, *target),
            Terminator::Call { callee, return_to } => {
                if self.stack.len() < MAX_CALL_DEPTH {
                    self.stack.push(*return_to);
                }
                (BranchKind::Call, true, *callee)
            }
            Terminator::Return => (
                BranchKind::Return,
                true,
                self.stack.pop().unwrap_or(self.program.entry),
            ),
        };
        self.current = next;
        self.push_history(taken);
        Some(BranchRecord {
            pc,
            kind,
            taken,
            privilege: self.privilege,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch(pc: u64, behavior: Behavior, taken: BlockId, fallthrough: BlockId) -> Block {
        Block {
            pc,
            terminator: Terminator::Branch {
                behavior,
                taken,
                fallthrough,
            },
        }
    }

    /// Two-block loop: block 0 loops on itself 3 times then falls to 1;
    /// block 1 jumps back to 0.
    fn tiny_loop() -> Program {
        Program::new(
            vec![
                branch(0x100, Behavior::Loop { trip: 4 }, 0, 1),
                Block {
                    pc: 0x104,
                    terminator: Terminator::Jump { target: 0 },
                },
            ],
            0,
        )
        .unwrap()
    }

    #[test]
    fn validation_catches_bad_edges() {
        assert_eq!(Program::new(vec![], 0), Err(ProgramError::Empty));
        let blocks = vec![branch(0x100, Behavior::Bias { taken_prob: 0.5 }, 0, 7)];
        assert_eq!(
            Program::new(blocks, 0),
            Err(ProgramError::BadTarget {
                block: 0,
                target: 7
            })
        );
        let blocks = vec![Block {
            pc: 0x100,
            terminator: Terminator::Return,
        }];
        assert_eq!(
            Program::new(blocks, 3).unwrap_err(),
            ProgramError::BadEntry(3)
        );
    }

    #[test]
    fn walker_follows_loop_structure() {
        let mut w = Walker::new(tiny_loop(), 1);
        let records: Vec<BranchRecord> = (&mut w).take(8).collect();
        // T T T N J T T T ...
        assert!(records[0].taken);
        assert!(records[1].taken);
        assert!(records[2].taken);
        assert!(!records[3].taken);
        assert_eq!(records[4].kind, BranchKind::Unconditional);
        assert!(records[5].taken);
    }

    #[test]
    fn walker_is_deterministic_per_seed() {
        let p = tiny_loop();
        let a: Vec<_> = Walker::new(p.clone(), 7).take(100).collect();
        let b: Vec<_> = Walker::new(p, 7).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn calls_and_returns_balance() {
        // entry calls block 2 (which returns), resuming at block 1,
        // which jumps back to entry.
        let p = Program::new(
            vec![
                Block {
                    pc: 0x100,
                    terminator: Terminator::Call {
                        callee: 2,
                        return_to: 1,
                    },
                },
                Block {
                    pc: 0x104,
                    terminator: Terminator::Jump { target: 0 },
                },
                Block {
                    pc: 0x200,
                    terminator: Terminator::Return,
                },
            ],
            0,
        )
        .unwrap();
        let records: Vec<_> = Walker::new(p, 1).take(6).collect();
        assert_eq!(records[0].kind, BranchKind::Call);
        assert_eq!(records[1].kind, BranchKind::Return);
        assert_eq!(records[2].kind, BranchKind::Unconditional);
        assert_eq!(records[3].kind, BranchKind::Call);
    }

    #[test]
    fn return_with_empty_stack_goes_to_entry() {
        let p = Program::new(
            vec![Block {
                pc: 0x100,
                terminator: Terminator::Return,
            }],
            0,
        )
        .unwrap();
        let records: Vec<_> = Walker::new(p, 1).take(3).collect();
        assert!(records.iter().all(|r| r.kind == BranchKind::Return));
        assert!(records.iter().all(|r| r.pc == 0x100));
    }

    #[test]
    fn kernel_walker_tags_records() {
        let w = Walker::new(tiny_loop(), 1).in_kernel();
        let records: Vec<_> = w.take(4).collect();
        assert!(records.iter().all(|r| r.privilege == Privilege::Kernel));
    }

    #[test]
    fn history_parity_sees_walker_history() {
        // Block 0: alternating pattern; block 1: parity of the last bit —
        // i.e. copies block 0's outcome.
        let p = Program::new(
            vec![
                branch(0x100, Behavior::Pattern { bits: 0b01, len: 2 }, 1, 1),
                branch(
                    0x104,
                    Behavior::HistoryParity {
                        mask: 0b1,
                        depth: 1,
                        flip_prob: 0.0,
                    },
                    0,
                    0,
                ),
            ],
            0,
        )
        .unwrap();
        let records: Vec<_> = Walker::new(p, 1).take(8).collect();
        // records: b0=T, b1 copies T, b0=N, b1 copies N, ...
        assert!(records[0].taken);
        assert!(records[1].taken);
        assert!(!records[2].taken);
        assert!(!records[3].taken);
    }

    #[test]
    fn static_conditionals_counts_branch_blocks() {
        assert_eq!(tiny_loop().static_conditionals(), 1);
    }

    #[test]
    fn deep_recursion_is_bounded() {
        // A program that calls itself forever: the stack must stay capped.
        let p = Program::new(
            vec![Block {
                pc: 0x100,
                terminator: Terminator::Call {
                    callee: 0,
                    return_to: 0,
                },
            }],
            0,
        )
        .unwrap();
        let mut w = Walker::new(p, 1);
        for _ in 0..1000 {
            let _ = w.next();
        }
        assert!(w.stack.len() <= MAX_CALL_DEPTH);
    }
}
