//! Random synthetic-program generation.
//!
//! [`ProgramParams::generate`] builds a [`Program`] with the structure of a
//! real application: a dispatcher loop that selects *routines* with
//! Zipf-distributed frequencies (hot and cold code), routines made of
//! conditional blocks with forward skips and backward loop edges, and
//! occasional calls between routines. The behaviour of each branch site is
//! drawn from a [`BehaviorMix`].

use crate::behavior::Behavior;
use crate::program::{Block, BlockId, Program, Terminator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::RangeInclusive;

/// Relative weights of the branch-site behaviour classes and their
/// parameter ranges. Weights need not sum to 1; they are normalized.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviorMix {
    /// Weight of loop backward branches.
    pub loops: f64,
    /// Weight of strongly biased branches (taken probability near 0 or 1).
    pub strong_bias: f64,
    /// Weight of weakly biased branches — the irreducible-misprediction
    /// sites.
    pub weak_bias: f64,
    /// Weight of history-correlated branches.
    pub correlated: f64,
    /// Weight of deterministic periodic patterns.
    pub pattern: f64,
    /// Correlation depth range for correlated sites (in history bits).
    pub correlated_depth: RangeInclusive<u32>,
    /// Trip-count range for loop sites.
    pub loop_trip: RangeInclusive<u32>,
    /// Noise probability on correlated sites.
    pub correlated_noise: f64,
    /// Taken-probability band for weakly biased sites (mirrored around
    /// 0.5: a site is taken-biased or not-taken-biased with equal
    /// probability).
    pub weak_bias_band: RangeInclusive<f64>,
}

impl Default for BehaviorMix {
    fn default() -> Self {
        BehaviorMix {
            loops: 0.30,
            strong_bias: 0.45,
            weak_bias: 0.05,
            correlated: 0.16,
            pattern: 0.04,
            correlated_depth: 2..=12,
            loop_trip: 3..=40,
            correlated_noise: 0.006,
            weak_bias_band: 0.75..=0.92,
        }
    }
}

impl BehaviorMix {
    /// Draw one site behaviour.
    pub fn sample(&self, rng: &mut SmallRng) -> Behavior {
        let total = self.loops + self.strong_bias + self.weak_bias + self.correlated + self.pattern;
        debug_assert!(total > 0.0, "behaviour mix must have positive weight");
        let mut x = rng.gen_range(0.0..total);
        if x < self.loops {
            // Log-uniform trip counts: short loops are more common.
            let lo = (*self.loop_trip.start()).max(1) as f64;
            let hi = (*self.loop_trip.end()).max(2) as f64;
            let trip = (lo * (hi / lo).powf(rng.gen_range(0.0..1.0))).round() as u32;
            return Behavior::Loop { trip: trip.max(1) };
        }
        x -= self.loops;
        if x < self.strong_bias {
            let p = rng.gen_range(0.995..0.9998);
            let taken_prob = if rng.gen_bool(0.6) { p } else { 1.0 - p };
            return Behavior::Bias { taken_prob };
        }
        x -= self.strong_bias;
        if x < self.weak_bias {
            let p = rng.gen_range(self.weak_bias_band.clone());
            let taken_prob = if rng.gen_bool(0.5) { p } else { 1.0 - p };
            return Behavior::Bias { taken_prob };
        }
        x -= self.weak_bias;
        if x < self.correlated {
            let depth = rng.gen_range(self.correlated_depth.clone()).max(1);
            // 1-3 participating history bits inside the depth window, with
            // the deepest bit always set so the depth is effective.
            let mut mask = 1u64 << (depth - 1);
            for _ in 0..rng.gen_range(0..3u32) {
                mask |= 1u64 << rng.gen_range(0..depth);
            }
            return Behavior::HistoryParity {
                mask,
                depth,
                flip_prob: self.correlated_noise,
            };
        }
        let len = rng.gen_range(2..=6u8);
        Behavior::Pattern {
            bits: rng.gen::<u64>(),
            len,
        }
    }
}

/// Parameters of a generated program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramParams {
    /// Base address of the program's code.
    pub base_pc: u64,
    /// Approximate number of static conditional branch sites to generate.
    pub target_conditionals: usize,
    /// Number of routines (excluding the dispatcher).
    pub routines: usize,
    /// Behaviour mix for branch sites.
    pub mix: BehaviorMix,
    /// Zipf exponent for routine selection frequency (0 = uniform).
    pub zipf_exponent: f64,
    /// Expected number of call sites per routine. Kept below 1 so the
    /// average call fan-out does not explode the walk's cost per
    /// dispatcher cycle (each callee is itself a full routine).
    pub calls_per_routine: f64,
    /// Fraction of routine blocks that are unconditional jumps. Real
    /// instruction traces are one quarter to one third unconditional
    /// transfers; because unconditional branches shift constant 1s into
    /// the global history (as in the paper), they dilute per-branch
    /// history diversity and are essential to realistic substream ratios.
    pub jump_fraction: f64,
}

impl Default for ProgramParams {
    fn default() -> Self {
        ProgramParams {
            base_pc: 0x0040_0000,
            target_conditionals: 4000,
            routines: 48,
            mix: BehaviorMix::default(),
            zipf_exponent: 1.0,
            calls_per_routine: 0.4,
            jump_fraction: 0.34,
        }
    }
}

impl ProgramParams {
    /// Generate the program deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `routines` is 0 or `target_conditionals` is smaller than
    /// `routines` (each routine needs at least one conditional block).
    pub fn generate(&self, seed: u64) -> Program {
        assert!(self.routines > 0, "need at least one routine");
        assert!(
            self.target_conditionals >= self.routines,
            "target_conditionals must be at least the routine count"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut blocks: Vec<Block> = Vec::new();
        let mut pc = self.base_pc;
        // Instruction gap between branch sites: 1..8 words.
        fn next_pc(pc: &mut u64, rng: &mut SmallRng) -> u64 {
            *pc += 4 * rng.gen_range(1..=8u64);
            *pc
        }

        // ----- Dispatcher -----------------------------------------------
        // Block ids 0..R-1 are the selection chain; for each routine i,
        // block R+2i calls it and block R+2i+1 is a repeat loop that
        // re-calls it a few times before returning to the chain — working
        // phases, the locality real dispatch loops exhibit.
        let r = self.routines;
        let dispatch_base: BlockId = 0;
        let call_base: BlockId = r;
        let call_block = |i: usize| call_base + 2 * i;
        let repeat_block = |i: usize| call_base + 2 * i + 1;
        let mut routine_entries: Vec<BlockId> = Vec::with_capacity(r);

        // Zipf selection probabilities: routine i is picked at chain
        // position i with probability w_i / sum_{j >= i} w_j.
        let weights: Vec<f64> = (0..r)
            .map(|i| 1.0 / ((i + 1) as f64).powf(self.zipf_exponent))
            .collect();
        let mut suffix: Vec<f64> = weights.clone();
        for i in (0..r.saturating_sub(1)).rev() {
            suffix[i] += suffix[i + 1];
        }

        for i in 0..r {
            let terminator = if i + 1 == r {
                // Last chain position selects unconditionally.
                Terminator::Jump {
                    target: call_block(i),
                }
            } else {
                Terminator::Branch {
                    behavior: Behavior::Bias {
                        taken_prob: weights[i] / suffix[i],
                    },
                    taken: call_block(i),
                    fallthrough: dispatch_base + i + 1,
                }
            };
            blocks.push(Block {
                pc: next_pc(&mut pc, &mut rng),
                terminator,
            });
        }
        for i in 0..r {
            blocks.push(Block {
                pc: next_pc(&mut pc, &mut rng),
                // Callee id patched once routine entries are known.
                terminator: Terminator::Call {
                    callee: 0,
                    return_to: repeat_block(i),
                },
            });
            blocks.push(Block {
                pc: next_pc(&mut pc, &mut rng),
                terminator: Terminator::Branch {
                    behavior: Behavior::Loop {
                        trip: rng.gen_range(2..=8),
                    },
                    taken: call_block(i),
                    fallthrough: dispatch_base,
                },
            });
        }

        // ----- Routines --------------------------------------------------
        // Conditional blocks per routine, sized so the total approximates
        // target_conditionals (the dispatcher chain contributes r - 1, and
        // a jump_fraction of the body blocks is unconditional).
        let chain_conditionals = r - 1;
        let body_target = self.target_conditionals.saturating_sub(chain_conditionals);
        let mean_body =
            (body_target as f64 / r as f64 / (1.0 - self.jump_fraction).max(0.05)).max(1.0);

        for routine in 0..r {
            let body = ((mean_body * rng.gen_range(0.5..1.5)).round() as usize).max(1);
            let entry = blocks.len();
            routine_entries.push(entry);
            // Routine-local code sits in its own page-ish region.
            pc = self.base_pc + 0x4000 * (routine as u64 + 1);

            // Block ids entry .. entry+body (last one is the Return).
            // Loop backedges never reach behind `loop_fence`, so loops are
            // sequential rather than nested — nesting would multiply trip
            // counts and trap the walk inside a single routine.
            let mut loop_fence = entry;
            let call_prob = (self.calls_per_routine / body as f64).clamp(0.0, 1.0);
            for j in 0..body {
                let here = entry + j;
                let next = here + 1;
                let last = entry + body; // the Return block
                let is_call = rng.gen_bool(call_prob) && routine + 1 < r;
                let terminator = if is_call {
                    // Call a (usually colder) later routine; ids of later
                    // entries are not known yet, patched below. The fence
                    // keeps later loop backedges from re-executing the
                    // call every iteration.
                    loop_fence = next;
                    Terminator::Call {
                        callee: rng.gen_range(routine + 1..r),
                        return_to: next,
                    }
                } else if rng.gen_bool(self.jump_fraction) {
                    // Unconditional jump (if-else join, switch dispatch):
                    // shifts a constant taken bit into the history.
                    Terminator::Jump { target: next }
                } else {
                    let behavior = self.mix.sample(&mut rng);
                    let (taken, fallthrough) = match behavior {
                        Behavior::Loop { .. } => {
                            // Backward edge spanning up to 6 earlier
                            // blocks, fenced off previous loops.
                            let span = rng.gen_range(1..=6usize).min(here - loop_fence);
                            loop_fence = next;
                            (here - span, next)
                        }
                        _ => {
                            if rng.gen_bool(0.70) {
                                // Paths rejoin immediately (if-then with a
                                // straight-line body) — the common case in
                                // real code, and what keeps every block of
                                // a called routine executing.
                                (next, next)
                            } else {
                                // Forward skip of 1..3 blocks.
                                let skip = rng.gen_range(2..=4usize);
                                ((here + skip).min(last), next)
                            }
                        }
                    };
                    Terminator::Branch {
                        behavior,
                        taken,
                        fallthrough,
                    }
                };
                blocks.push(Block {
                    pc: next_pc(&mut pc, &mut rng),
                    terminator,
                });
            }
            blocks.push(Block {
                pc: next_pc(&mut pc, &mut rng),
                terminator: Terminator::Return,
            });
        }

        // Patch call targets now that routine entries are known.
        for block in &mut blocks {
            if let Terminator::Call { callee, .. } = &mut block.terminator {
                *callee = routine_entries[(*callee).min(r - 1)];
            }
        }
        // Dispatcher call blocks: call block i -> routine i.
        for (i, entry) in routine_entries.iter().enumerate() {
            blocks[call_block(i)].terminator = Terminator::Call {
                callee: *entry,
                return_to: repeat_block(i),
            };
        }

        Program::new(blocks, dispatch_base).expect("generator emits well-formed programs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Walker;
    use crate::record::BranchKind;
    use std::collections::HashSet;

    #[test]
    fn generated_program_validates() {
        let p = ProgramParams::default().generate(1);
        assert!(p.static_conditionals() > 0);
    }

    #[test]
    fn static_count_near_target() {
        for target in [500usize, 4000, 12000] {
            let params = ProgramParams {
                target_conditionals: target,
                ..ProgramParams::default()
            };
            let p = params.generate(7);
            let got = p.static_conditionals();
            let lo = target * 7 / 10;
            let hi = target * 13 / 10;
            assert!(
                (lo..=hi).contains(&got),
                "target {target}, got {got} (outside ±30%)"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let params = ProgramParams::default();
        assert_eq!(params.generate(3), params.generate(3));
    }

    #[test]
    fn different_seeds_differ() {
        let params = ProgramParams::default();
        assert_ne!(params.generate(3), params.generate(4));
    }

    #[test]
    fn walk_visits_many_routines_and_sites() {
        let p = ProgramParams {
            target_conditionals: 2000,
            routines: 30,
            ..ProgramParams::default()
        }
        .generate(11);
        let mut pcs = HashSet::new();
        let mut conditionals = 0u64;
        for rec in Walker::new(p, 5).take(200_000) {
            if rec.kind == BranchKind::Conditional {
                conditionals += 1;
                pcs.insert(rec.pc);
            }
        }
        assert!(conditionals > 100_000, "mostly conditional branches");
        assert!(
            pcs.len() > 300,
            "walk should touch many static sites, got {}",
            pcs.len()
        );
    }

    #[test]
    fn hot_routines_dominate() {
        // With a Zipf dispatcher the most frequent static branch should be
        // executed far more often than the median one.
        let p = ProgramParams::default().generate(2);
        let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for rec in Walker::new(p, 9).take(300_000) {
            if rec.kind == BranchKind::Conditional {
                *counts.entry(rec.pc).or_default() += 1;
            }
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top = freq[0];
        let median = freq[freq.len() / 2];
        assert!(
            top > median * 10,
            "expected skewed frequencies, top={top} median={median}"
        );
    }

    #[test]
    fn mix_sampling_honors_zero_weights() {
        let mix = BehaviorMix {
            loops: 0.0,
            strong_bias: 0.0,
            weak_bias: 1.0,
            correlated: 0.0,
            pattern: 0.0,
            ..BehaviorMix::default()
        };
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            match mix.sample(&mut rng) {
                Behavior::Bias { taken_prob } => {
                    let band = mix.weak_bias_band.clone();
                    let p = taken_prob.min(1.0 - taken_prob);
                    assert!(
                        band.contains(&taken_prob) || band.contains(&(1.0 - taken_prob)),
                        "p={p}"
                    );
                }
                other => panic!("unexpected behaviour {other:?}"),
            }
        }
    }

    #[test]
    fn correlated_mask_respects_depth() {
        let mix = BehaviorMix {
            loops: 0.0,
            strong_bias: 0.0,
            weak_bias: 0.0,
            correlated: 1.0,
            pattern: 0.0,
            correlated_depth: 3..=9,
            ..BehaviorMix::default()
        };
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            match mix.sample(&mut rng) {
                Behavior::HistoryParity { mask, depth, .. } => {
                    assert!((3..=9).contains(&depth));
                    assert!(mask != 0);
                    assert_eq!(mask >> depth, 0, "mask exceeds depth");
                    assert!(mask >> (depth - 1) & 1 == 1, "deepest bit set");
                }
                other => panic!("unexpected behaviour {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one routine")]
    fn zero_routines_panics() {
        ProgramParams {
            routines: 0,
            ..ProgramParams::default()
        }
        .generate(1);
    }
}
