//! Stochastic behaviour models for synthetic branch sites.
//!
//! Each static conditional branch in a synthetic program is assigned one of
//! these behaviours. The mix is what shapes the workload's predictability
//! profile:
//!
//! * [`Behavior::Bias`] — independent Bernoulli outcomes. Weakly biased
//!   sites create the irreducible misprediction floor that even the ideal
//!   unaliased predictor of Table 2 cannot remove.
//! * [`Behavior::Loop`] — the classic loop backward branch: taken
//!   `trip - 1` times, then not-taken once. The loop exit is predictable
//!   from history when the trip count fits in the history register, which
//!   is one of the reasons longer histories help (Table 2, 4-bit vs
//!   12-bit).
//! * [`Behavior::Pattern`] — a deterministic periodic pattern.
//! * [`Behavior::HistoryParity`] — the outcome is a (possibly noisy)
//!   boolean function of recent *global* history bits, the canonical model
//!   of correlated branches (Pan, So & Rahmeh). Sites with correlation
//!   depth above the history length look random to the predictor; below
//!   it, they are fully predictable. Sweeping history length across the
//!   site population reproduces the history-length tradeoff of figures 7
//!   and 12.
//! * [`Behavior::Phased`] — bias that flips between two phases, modeling
//!   inputs or program phases changing branch behaviour over time.

use rand::rngs::SmallRng;
use rand::Rng;

/// The behaviour model of one static conditional branch site.
#[derive(Debug, Clone, PartialEq)]
pub enum Behavior {
    /// Taken with fixed probability, independently each execution.
    Bias {
        /// Probability the branch is taken.
        taken_prob: f64,
    },
    /// Loop backward branch: taken `trip - 1` consecutive times, then
    /// not-taken once (loop exit), repeating.
    Loop {
        /// Iterations per loop entry; must be at least 1.
        trip: u32,
    },
    /// Deterministic periodic pattern, LSB first.
    Pattern {
        /// The pattern bits (bit 0 executed first).
        bits: u64,
        /// Period length in bits (1..=64).
        len: u8,
    },
    /// Outcome is the parity of selected recent global-history bits,
    /// flipped with probability `flip_prob` (noise).
    HistoryParity {
        /// Mask over the walker's global history register; only bits
        /// within the lowest `depth` positions should be set.
        mask: u64,
        /// Correlation depth — the highest history position the mask uses,
        /// recorded so analyses can relate depth to history length.
        depth: u32,
        /// Probability the correlated outcome is inverted (noise).
        flip_prob: f64,
    },
    /// Bias that alternates between two values every `period` executions.
    Phased {
        /// Taken probability in each of the two phases.
        taken_prob: [f64; 2],
        /// Executions per phase; must be at least 1.
        period: u32,
    },
}

/// Mutable per-site execution state (loop position, phase counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteState {
    counter: u32,
}

impl Behavior {
    /// Compute the next outcome at this site.
    ///
    /// `global_history` is the walker's history register (bit 0 = most
    /// recent branch, conditional and unconditional alike), used by
    /// correlated behaviours.
    pub fn next_outcome(
        &self,
        state: &mut SiteState,
        global_history: u64,
        rng: &mut SmallRng,
    ) -> bool {
        match *self {
            Behavior::Bias { taken_prob } => rng.gen_bool(taken_prob),
            Behavior::Loop { trip } => {
                debug_assert!(trip >= 1);
                state.counter += 1;
                if state.counter >= trip {
                    state.counter = 0;
                    false // loop exit
                } else {
                    true
                }
            }
            Behavior::Pattern { bits, len } => {
                debug_assert!((1..=64).contains(&len));
                let bit = (bits >> (state.counter as u64 % u64::from(len))) & 1;
                state.counter = state.counter.wrapping_add(1);
                bit == 1
            }
            Behavior::HistoryParity {
                mask, flip_prob, ..
            } => {
                let parity = (global_history & mask).count_ones() % 2 == 1;
                if flip_prob > 0.0 && rng.gen_bool(flip_prob) {
                    !parity
                } else {
                    parity
                }
            }
            Behavior::Phased { taken_prob, period } => {
                debug_assert!(period >= 1);
                let phase = (state.counter / period) % 2;
                state.counter = state.counter.wrapping_add(1);
                rng.gen_bool(taken_prob[phase as usize])
            }
        }
    }

    /// The long-run taken probability of the site, used for bias
    /// statistics (the `b` parameter of the analytical model).
    pub fn steady_taken_prob(&self) -> f64 {
        match *self {
            Behavior::Bias { taken_prob } => taken_prob,
            Behavior::Loop { trip } => (f64::from(trip) - 1.0) / f64::from(trip).max(1.0),
            Behavior::Pattern { bits, len } => {
                let ones = (bits & mask_len(len)).count_ones();
                f64::from(ones) / f64::from(len)
            }
            Behavior::HistoryParity { .. } => 0.5,
            Behavior::Phased { taken_prob, .. } => (taken_prob[0] + taken_prob[1]) / 2.0,
        }
    }
}

#[inline]
fn mask_len(len: u8) -> u64 {
    if len >= 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn loop_behavior_cycles() {
        let b = Behavior::Loop { trip: 4 };
        let mut s = SiteState::default();
        let mut r = rng();
        let outcomes: Vec<bool> = (0..8).map(|_| b.next_outcome(&mut s, 0, &mut r)).collect();
        assert_eq!(
            outcomes,
            vec![true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn loop_trip_one_never_taken() {
        let b = Behavior::Loop { trip: 1 };
        let mut s = SiteState::default();
        let mut r = rng();
        assert!((0..5).all(|_| !b.next_outcome(&mut s, 0, &mut r)));
    }

    #[test]
    fn pattern_repeats() {
        let b = Behavior::Pattern {
            bits: 0b0110,
            len: 4,
        };
        let mut s = SiteState::default();
        let mut r = rng();
        let outcomes: Vec<bool> = (0..8).map(|_| b.next_outcome(&mut s, 0, &mut r)).collect();
        assert_eq!(
            outcomes,
            vec![false, true, true, false, false, true, true, false]
        );
    }

    #[test]
    fn bias_respects_probability() {
        let b = Behavior::Bias { taken_prob: 0.9 };
        let mut s = SiteState::default();
        let mut r = rng();
        let taken = (0..10_000)
            .filter(|_| b.next_outcome(&mut s, 0, &mut r))
            .count();
        assert!((8_800..9_200).contains(&taken), "taken={taken}");
    }

    #[test]
    fn history_parity_is_deterministic_without_noise() {
        let b = Behavior::HistoryParity {
            mask: 0b101,
            depth: 3,
            flip_prob: 0.0,
        };
        let mut s = SiteState::default();
        let mut r = rng();
        assert!(!b.next_outcome(&mut s, 0b000, &mut r));
        assert!(b.next_outcome(&mut s, 0b001, &mut r));
        assert!(!b.next_outcome(&mut s, 0b101, &mut r));
        assert!(b.next_outcome(&mut s, 0b100, &mut r));
        // Bits outside the mask are ignored.
        assert!(b.next_outcome(&mut s, 0b1100, &mut r));
    }

    #[test]
    fn phased_switches_bias() {
        let b = Behavior::Phased {
            taken_prob: [1.0, 0.0],
            period: 3,
        };
        let mut s = SiteState::default();
        let mut r = rng();
        let outcomes: Vec<bool> = (0..9).map(|_| b.next_outcome(&mut s, 0, &mut r)).collect();
        assert_eq!(
            outcomes,
            vec![true, true, true, false, false, false, true, true, true]
        );
    }

    #[test]
    fn steady_probabilities() {
        assert!((Behavior::Bias { taken_prob: 0.7 }.steady_taken_prob() - 0.7).abs() < 1e-12);
        assert!((Behavior::Loop { trip: 4 }.steady_taken_prob() - 0.75).abs() < 1e-12);
        assert!(
            (Behavior::Pattern {
                bits: 0b0110,
                len: 4
            }
            .steady_taken_prob()
                - 0.5)
                .abs()
                < 1e-12
        );
        assert_eq!(
            Behavior::HistoryParity {
                mask: 1,
                depth: 1,
                flip_prob: 0.0
            }
            .steady_taken_prob(),
            0.5
        );
    }
}
