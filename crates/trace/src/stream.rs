//! Trace sources: anything that yields a stream of [`BranchRecord`]s.

use crate::record::BranchRecord;

/// A stream of dynamic branches.
///
/// This is a blanket-implemented alias for
/// `Iterator<Item = BranchRecord>`; generators, file readers and in-memory
/// vectors all qualify. Consumers (the simulation engine, the aliasing
/// analyses) take `impl TraceSource` and stream records without
/// materializing the trace.
pub trait TraceSource: Iterator<Item = BranchRecord> {}

impl<I: Iterator<Item = BranchRecord>> TraceSource for I {}

/// Extension helpers on trace sources.
pub trait TraceSourceExt: TraceSource + Sized {
    /// Keep only the first `n` *conditional* branches (plus every
    /// unconditional record interleaved before the cut-off). This is how
    /// experiments bound workload length without distorting the
    /// conditional/unconditional mix.
    fn take_conditionals(self, n: u64) -> TakeConditionals<Self> {
        TakeConditionals {
            inner: self,
            remaining: n,
        }
    }

    /// Keep only records executed at the given privilege level — e.g.
    /// `user_only` studies strip the OS component the way many pre-IBS
    /// papers (implicitly) did.
    fn privilege_only(self, privilege: crate::record::Privilege) -> PrivilegeOnly<Self> {
        PrivilegeOnly {
            inner: self,
            privilege,
        }
    }

    /// Relocate every pc by a fixed byte offset — e.g. to emulate two
    /// copies of a program at different load addresses (ASLR-style
    /// studies), or to de-conflict address spaces when splicing traces.
    fn relocate(self, offset: i64) -> Relocate<Self> {
        Relocate {
            inner: self,
            offset,
        }
    }
}

impl<I: TraceSource> TraceSourceExt for I {}

/// Iterator returned by [`TraceSourceExt::take_conditionals`].
#[derive(Debug, Clone)]
pub struct TakeConditionals<I> {
    inner: I,
    remaining: u64,
}

impl<I: TraceSource> Iterator for TakeConditionals<I> {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        if self.remaining == 0 {
            return None;
        }
        let record = self.inner.next()?;
        if record.kind.is_conditional() {
            self.remaining -= 1;
        }
        Some(record)
    }
}

/// Iterator returned by [`TraceSourceExt::privilege_only`].
#[derive(Debug, Clone)]
pub struct PrivilegeOnly<I> {
    inner: I,
    privilege: crate::record::Privilege,
}

impl<I: TraceSource> Iterator for PrivilegeOnly<I> {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        self.inner.by_ref().find(|r| r.privilege == self.privilege)
    }
}

/// Iterator returned by [`TraceSourceExt::relocate`].
#[derive(Debug, Clone)]
pub struct Relocate<I> {
    inner: I,
    offset: i64,
}

impl<I: TraceSource> Iterator for Relocate<I> {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        self.inner.next().map(|mut r| {
            r.pc = r.pc.wrapping_add_signed(self.offset);
            r
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchKind;

    fn sample() -> Vec<BranchRecord> {
        vec![
            BranchRecord::conditional(0x100, true),
            BranchRecord::unconditional(0x104),
            BranchRecord::conditional(0x108, false),
            BranchRecord::conditional(0x10c, true),
            BranchRecord::unconditional(0x110),
        ]
    }

    #[test]
    fn take_conditionals_counts_only_conditionals() {
        let out: Vec<_> = sample().into_iter().take_conditionals(2).collect();
        // First conditional, the unconditional between, second conditional.
        assert_eq!(out.len(), 3);
        assert_eq!(out.iter().filter(|r| r.kind.is_conditional()).count(), 2);
        assert_eq!(out[1].kind, BranchKind::Unconditional);
    }

    #[test]
    fn take_conditionals_zero_is_empty() {
        let out: Vec<_> = sample().into_iter().take_conditionals(0).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn take_conditionals_larger_than_stream() {
        let out: Vec<_> = sample().into_iter().take_conditionals(100).collect();
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn privilege_filter_splits_user_and_kernel() {
        use crate::record::Privilege;
        let records = vec![
            BranchRecord::conditional(0x100, true),
            BranchRecord::conditional(0x8000, false).in_kernel(),
            BranchRecord::unconditional(0x104),
        ];
        let user: Vec<_> = records
            .iter()
            .copied()
            .privilege_only(Privilege::User)
            .collect();
        let kernel: Vec<_> = records
            .into_iter()
            .privilege_only(Privilege::Kernel)
            .collect();
        assert_eq!(user.len(), 2);
        assert_eq!(kernel.len(), 1);
        assert_eq!(kernel[0].pc, 0x8000);
    }

    #[test]
    fn relocate_shifts_pcs_both_ways() {
        let records = vec![BranchRecord::conditional(0x1000, true)];
        let up: Vec<_> = records.iter().copied().relocate(0x100).collect();
        assert_eq!(up[0].pc, 0x1100);
        let down: Vec<_> = records.into_iter().relocate(-0x100).collect();
        assert_eq!(down[0].pc, 0xF00);
    }

    #[test]
    fn adapters_compose() {
        use crate::record::Privilege;
        use crate::workload::IbsBenchmark;
        let n = IbsBenchmark::Verilog
            .spec()
            .build()
            .privilege_only(Privilege::User)
            .relocate(0x1000_0000)
            .take_conditionals(500)
            .filter(|r| r.kind == BranchKind::Conditional)
            .count();
        assert_eq!(n, 500);
    }
}
