//! Trace statistics: the numbers behind Table 1 and the workload sanity
//! checks.

use crate::record::{BranchKind, BranchRecord, Privilege};
use std::collections::HashMap;

/// Aggregate statistics of a branch trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Dynamic conditional branch count (Table 1, "dynamic").
    pub dynamic_conditional: u64,
    /// Distinct conditional branch addresses (Table 1, "static").
    pub static_conditional: u64,
    /// Dynamic non-conditional control transfers.
    pub dynamic_unconditional: u64,
    /// Dynamic conditional branches that were taken.
    pub taken_conditional: u64,
    /// Dynamic records executed in kernel mode.
    pub kernel_records: u64,
    /// Total records.
    pub total_records: u64,
}

impl TraceStats {
    /// Compute statistics over a record stream, consuming it.
    pub fn collect(source: impl Iterator<Item = BranchRecord>) -> TraceStats {
        let mut stats = TraceStats::default();
        let mut static_pcs: HashMap<u64, ()> = HashMap::new();
        for r in source {
            stats.total_records += 1;
            if r.privilege == Privilege::Kernel {
                stats.kernel_records += 1;
            }
            if r.kind == BranchKind::Conditional {
                stats.dynamic_conditional += 1;
                stats.taken_conditional += u64::from(r.taken);
                static_pcs.entry(r.pc).or_insert(());
            } else {
                stats.dynamic_unconditional += 1;
            }
        }
        stats.static_conditional = static_pcs.len() as u64;
        stats
    }

    /// Fraction of dynamic conditional branches that were taken.
    pub fn taken_ratio(&self) -> f64 {
        ratio(self.taken_conditional, self.dynamic_conditional)
    }

    /// Fraction of all records executed in kernel mode.
    pub fn kernel_ratio(&self) -> f64 {
        ratio(self.kernel_records, self.total_records)
    }

    /// Average executions per static conditional branch.
    pub fn dynamic_per_static(&self) -> f64 {
        ratio(self.dynamic_conditional, self.static_conditional)
    }
}

#[inline]
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BranchRecord> {
        vec![
            BranchRecord::conditional(0x100, true),
            BranchRecord::conditional(0x100, false),
            BranchRecord::conditional(0x200, true),
            BranchRecord::unconditional(0x300),
            BranchRecord::conditional(0x400, true).in_kernel(),
        ]
    }

    #[test]
    fn counts() {
        let s = TraceStats::collect(sample().into_iter());
        assert_eq!(s.dynamic_conditional, 4);
        assert_eq!(s.static_conditional, 3);
        assert_eq!(s.dynamic_unconditional, 1);
        assert_eq!(s.taken_conditional, 3);
        assert_eq!(s.kernel_records, 1);
        assert_eq!(s.total_records, 5);
    }

    #[test]
    fn ratios() {
        let s = TraceStats::collect(sample().into_iter());
        assert!((s.taken_ratio() - 0.75).abs() < 1e-12);
        assert!((s.kernel_ratio() - 0.2).abs() < 1e-12);
        assert!((s.dynamic_per_static() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::collect(std::iter::empty());
        assert_eq!(s, TraceStats::default());
        assert_eq!(s.taken_ratio(), 0.0);
        assert_eq!(s.dynamic_per_static(), 0.0);
    }
}
