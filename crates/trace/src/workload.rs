//! IBS-like synthetic workloads.
//!
//! The paper drives its simulations with the IBS-Ultrix traces: complete
//! user *and* operating-system branch activity captured on a MIPS
//! DECstation. Those traces are not redistributable, so this module
//! synthesizes workloads with the same *statistical shape* (see
//! `DESIGN.md`): per-benchmark static branch counts matched to Table 1,
//! Zipf-skewed branch frequencies, history-correlated and weakly biased
//! sites, multi-process interleaving and kernel bursts that multiplex a
//! second working set — the OS component responsible for the high aliasing
//! the IBS suite is known for.
//!
//! Dynamic trace lengths default to 1/8 of the paper's (Table 1) to keep
//! full sweeps laptop-fast; every harness accepts an explicit length.

use crate::gen::{BehaviorMix, ProgramParams};
use crate::program::Walker;
use crate::record::BranchRecord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::RangeInclusive;

/// The default workload seed base: every benchmark's master seed is
/// `DEFAULT_SEED_BASE + benchmark index`, which is what the repo has
/// always generated — [`IbsBenchmark::spec`] pins this so default traces
/// stay byte-identical release over release.
pub const DEFAULT_SEED_BASE: u64 = 0x5EED_0000;

/// The six IBS benchmarks the paper reports (it omits `sdet` and
/// `video_play` as unremarkable; so do we).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IbsBenchmark {
    /// `groff` — GNU troff text formatter.
    Groff,
    /// `gs` — Ghostscript PostScript interpreter.
    Gs,
    /// `mpeg_play` — MPEG video decoder.
    MpegPlay,
    /// `nroff` — troff for character devices.
    Nroff,
    /// `real_gcc` — the GNU C compiler proper.
    RealGcc,
    /// `verilog` — Verilog-XL hardware simulation.
    Verilog,
}

impl IbsBenchmark {
    /// All six benchmarks, in the paper's table order.
    pub fn all() -> [IbsBenchmark; 6] {
        [
            IbsBenchmark::Groff,
            IbsBenchmark::Gs,
            IbsBenchmark::MpegPlay,
            IbsBenchmark::Nroff,
            IbsBenchmark::RealGcc,
            IbsBenchmark::Verilog,
        ]
    }

    /// The benchmark's name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            IbsBenchmark::Groff => "groff",
            IbsBenchmark::Gs => "gs",
            IbsBenchmark::MpegPlay => "mpeg_play",
            IbsBenchmark::Nroff => "nroff",
            IbsBenchmark::RealGcc => "real_gcc",
            IbsBenchmark::Verilog => "verilog",
        }
    }

    /// Look a benchmark up by its paper name.
    pub fn from_name(name: &str) -> Option<IbsBenchmark> {
        IbsBenchmark::all().into_iter().find(|b| b.name() == name)
    }

    /// Static conditional branch count from Table 1 of the paper (user +
    /// kernel), which the generator targets.
    pub fn paper_static_branches(self) -> usize {
        match self {
            IbsBenchmark::Groff => 5634,
            IbsBenchmark::Gs => 10935,
            IbsBenchmark::MpegPlay => 4752,
            IbsBenchmark::Nroff => 4480,
            IbsBenchmark::RealGcc => 16716,
            IbsBenchmark::Verilog => 3918,
        }
    }

    /// Dynamic conditional branch count from Table 1 of the paper.
    pub fn paper_dynamic_branches(self) -> u64 {
        match self {
            IbsBenchmark::Groff => 11_568_181,
            IbsBenchmark::Gs => 14_288_742,
            IbsBenchmark::MpegPlay => 8_109_029,
            IbsBenchmark::Nroff => 21_368_201,
            IbsBenchmark::RealGcc => 13_940_672,
            IbsBenchmark::Verilog => 5_692_823,
        }
    }

    /// Default simulated dynamic length: 1/8 of the paper's, keeping the
    /// inter-benchmark ratios.
    pub fn default_len(self) -> u64 {
        self.paper_dynamic_branches() / 8
    }

    /// The full synthetic workload specification for this benchmark,
    /// seeded from [`DEFAULT_SEED_BASE`].
    pub fn spec(self) -> WorkloadSpec {
        self.spec_seeded(DEFAULT_SEED_BASE)
    }

    /// As [`IbsBenchmark::spec`] with an explicit seed base: the master
    /// seed becomes `seed_base + benchmark index`, so distinct
    /// benchmarks stay decorrelated under any base. Used by the CLI's
    /// `--seed` and recorded in persisted result records.
    pub fn spec_seeded(self, seed_base: u64) -> WorkloadSpec {
        // Per-benchmark personality: behaviour mix and process structure.
        // These constants were calibrated against Table 2 of the paper
        // (substream ratio and unaliased misprediction, 4- and 12-bit
        // histories); see EXPERIMENTS.md for the resulting fidelity.
        let (mix, processes, routines, zipf) = match self {
            IbsBenchmark::Groff => (
                BehaviorMix {
                    loops: 0.30,
                    strong_bias: 0.47,
                    weak_bias: 0.015,
                    correlated: 0.13,
                    pattern: 0.035,
                    correlated_depth: 2..=10,
                    ..BehaviorMix::default()
                },
                1,
                56,
                1.0,
            ),
            IbsBenchmark::Gs => (
                BehaviorMix {
                    loops: 0.27,
                    strong_bias: 0.44,
                    weak_bias: 0.04,
                    correlated: 0.155,
                    pattern: 0.04,
                    correlated_depth: 2..=12,
                    ..BehaviorMix::default()
                },
                2,
                64,
                1.05,
            ),
            IbsBenchmark::MpegPlay => (
                BehaviorMix {
                    loops: 0.26,
                    strong_bias: 0.37,
                    weak_bias: 0.07,
                    correlated: 0.19,
                    pattern: 0.04,
                    correlated_depth: 5..=12,
                    weak_bias_band: 0.70..=0.88,
                    ..BehaviorMix::default()
                },
                1,
                44,
                1.1,
            ),
            IbsBenchmark::Nroff => (
                BehaviorMix {
                    loops: 0.32,
                    strong_bias: 0.52,
                    weak_bias: 0.015,
                    correlated: 0.09,
                    pattern: 0.03,
                    correlated_depth: 2..=8,
                    ..BehaviorMix::default()
                },
                1,
                48,
                1.1,
            ),
            IbsBenchmark::RealGcc => (
                BehaviorMix {
                    loops: 0.24,
                    strong_bias: 0.39,
                    weak_bias: 0.055,
                    correlated: 0.21,
                    pattern: 0.05,
                    correlated_depth: 3..=12,
                    ..BehaviorMix::default()
                },
                2,
                110,
                0.8,
            ),
            IbsBenchmark::Verilog => (
                BehaviorMix {
                    loops: 0.28,
                    strong_bias: 0.46,
                    weak_bias: 0.03,
                    correlated: 0.15,
                    pattern: 0.04,
                    correlated_depth: 2..=10,
                    ..BehaviorMix::default()
                },
                1,
                40,
                1.05,
            ),
        };

        const KERNEL_STATIC: usize = 1200;
        let user_static = (self.paper_static_branches().saturating_sub(KERNEL_STATIC)) / processes;
        let user_programs = (0..processes)
            .map(|p| ProgramParams {
                base_pc: 0x0040_0000 + 0x0100_0000 * p as u64,
                target_conditionals: user_static.max(routines),
                routines,
                mix: mix.clone(),
                zipf_exponent: zipf,
                calls_per_routine: 0.5,
                jump_fraction: 0.34,
            })
            .collect();

        WorkloadSpec {
            name: self.name().to_string(),
            seed: seed_base.wrapping_add(self as u64),
            user_programs,
            kernel_program: Some(ProgramParams {
                base_pc: 0x8000_0000,
                target_conditionals: KERNEL_STATIC,
                routines: 24,
                mix: BehaviorMix {
                    loops: 0.27,
                    strong_bias: 0.50,
                    weak_bias: 0.03,
                    correlated: 0.12,
                    pattern: 0.04,
                    correlated_depth: 2..=8,
                    ..BehaviorMix::default()
                },
                zipf_exponent: 1.0,
                calls_per_routine: 0.4,
                jump_fraction: 0.34,
            }),
            kernel_entry_prob: 0.0015,
            kernel_burst: 40..=200,
            time_slice: 30_000,
        }
    }
}

impl fmt::Display for IbsBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Full description of a synthetic workload: user process programs, an
/// optional kernel program, and the interleaving schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (used in reports).
    pub name: String,
    /// Master RNG seed; everything below derives from it.
    pub seed: u64,
    /// One program per user process.
    pub user_programs: Vec<ProgramParams>,
    /// Kernel program interleaved in bursts, if any.
    pub kernel_program: Option<ProgramParams>,
    /// Per-user-branch probability of entering a kernel burst.
    pub kernel_entry_prob: f64,
    /// Burst length range (in branch records).
    pub kernel_burst: RangeInclusive<u32>,
    /// User branches per process time slice (round-robin).
    pub time_slice: u64,
}

impl WorkloadSpec {
    /// Instantiate the workload: generate all programs and build the
    /// interleaving iterator.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no user programs.
    pub fn build(&self) -> Workload {
        assert!(
            !self.user_programs.is_empty(),
            "workload needs at least one user program"
        );
        let users: Vec<Walker> = self
            .user_programs
            .iter()
            .enumerate()
            .map(|(i, params)| {
                Walker::new(
                    params.generate(self.seed ^ (0xA11CE + i as u64)),
                    self.seed + i as u64,
                )
            })
            .collect();
        let kernel = self.kernel_program.as_ref().map(|params| {
            Walker::new(params.generate(self.seed ^ 0xBEEF), self.seed ^ 0xF00D).in_kernel()
        });
        Workload {
            name: self.name.clone(),
            users,
            kernel,
            active: 0,
            slice_left: self.time_slice.max(1),
            burst_left: 0,
            kernel_entry_prob: self.kernel_entry_prob,
            kernel_burst: self.kernel_burst.clone(),
            time_slice: self.time_slice.max(1),
            rng: SmallRng::seed_from_u64(self.seed ^ 0x5C4ED),
        }
    }
}

/// A running workload: an infinite stream of interleaved user and kernel
/// branch records.
#[derive(Debug, Clone)]
pub struct Workload {
    name: String,
    users: Vec<Walker>,
    kernel: Option<Walker>,
    active: usize,
    slice_left: u64,
    burst_left: u32,
    kernel_entry_prob: f64,
    kernel_burst: RangeInclusive<u32>,
    time_slice: u64,
    rng: SmallRng,
}

impl Workload {
    /// The workload's name (from its [`WorkloadSpec`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of user processes being interleaved.
    pub fn num_processes(&self) -> usize {
        self.users.len()
    }
}

impl Iterator for Workload {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        if let Some(kernel) = &mut self.kernel {
            if self.burst_left > 0 {
                self.burst_left -= 1;
                return kernel.next();
            }
            if self.kernel_entry_prob > 0.0 && self.rng.gen_bool(self.kernel_entry_prob) {
                self.burst_left = self.rng.gen_range(self.kernel_burst.clone());
                return kernel.next();
            }
        }
        let record = self.users[self.active].next();
        self.slice_left -= 1;
        if self.slice_left == 0 {
            self.active = (self.active + 1) % self.users.len();
            self.slice_left = self.time_slice;
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BranchKind, Privilege};
    use crate::stream::TraceSourceExt;
    use std::collections::HashSet;

    #[test]
    fn six_benchmarks_with_paper_constants() {
        assert_eq!(IbsBenchmark::all().len(), 6);
        let total_static: usize = IbsBenchmark::all()
            .iter()
            .map(|b| b.paper_static_branches())
            .sum();
        assert_eq!(total_static, 5634 + 10935 + 4752 + 4480 + 16716 + 3918);
        assert_eq!(IbsBenchmark::Nroff.paper_dynamic_branches(), 21_368_201);
    }

    #[test]
    fn names_roundtrip() {
        for b in IbsBenchmark::all() {
            assert_eq!(IbsBenchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(IbsBenchmark::from_name("sdet"), None);
    }

    #[test]
    fn workload_exposes_metadata() {
        let w = IbsBenchmark::Gs.spec().build();
        assert_eq!(w.name(), "gs");
        assert_eq!(w.num_processes(), 2);
    }

    #[test]
    fn default_seed_is_pinned_and_byte_identical() {
        // `spec()` must keep producing the traces this repo has always
        // produced: the default base is 0x5EED_0000 and an explicit
        // `spec_seeded` at that base is the identical spec (hence
        // byte-identical traces).
        assert_eq!(DEFAULT_SEED_BASE, 0x5EED_0000);
        for (i, b) in IbsBenchmark::all().into_iter().enumerate() {
            assert_eq!(b.spec().seed, 0x5EED_0000 + i as u64);
            assert_eq!(b.spec(), b.spec_seeded(DEFAULT_SEED_BASE));
        }
        let default: Vec<_> = IbsBenchmark::Groff.spec().build().take(2_000).collect();
        let explicit: Vec<_> = IbsBenchmark::Groff
            .spec_seeded(DEFAULT_SEED_BASE)
            .build()
            .take(2_000)
            .collect();
        assert_eq!(default, explicit);
    }

    #[test]
    fn explicit_seed_changes_the_trace_but_stays_deterministic() {
        let a: Vec<_> = IbsBenchmark::Groff
            .spec_seeded(0xABCD)
            .build()
            .take(2_000)
            .collect();
        let b: Vec<_> = IbsBenchmark::Groff
            .spec_seeded(0xABCD)
            .build()
            .take(2_000)
            .collect();
        assert_eq!(a, b, "same seed, same trace");
        let c: Vec<_> = IbsBenchmark::Groff.spec().build().take(2_000).collect();
        assert_ne!(a, c, "different seed, different trace");
    }

    #[test]
    fn workload_is_deterministic() {
        let spec = IbsBenchmark::Groff.spec();
        let a: Vec<_> = spec.build().take(5_000).collect();
        let b: Vec<_> = spec.build().take(5_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn workloads_differ_across_benchmarks() {
        let a: Vec<_> = IbsBenchmark::Groff.spec().build().take(1_000).collect();
        let b: Vec<_> = IbsBenchmark::Verilog.spec().build().take(1_000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn kernel_bursts_present() {
        let spec = IbsBenchmark::Groff.spec();
        let records: Vec<_> = spec.build().take(200_000).collect();
        let kernel = records
            .iter()
            .filter(|r| r.privilege == Privilege::Kernel)
            .count();
        let frac = kernel as f64 / records.len() as f64;
        assert!(
            (0.05..0.5).contains(&frac),
            "kernel fraction {frac} out of the plausible band"
        );
    }

    #[test]
    fn multi_process_workload_switches_address_spaces() {
        let spec = IbsBenchmark::Gs.spec(); // 2 processes
        assert!(spec.user_programs.len() == 2);
        let records: Vec<_> = spec.build().take(200_000).collect();
        let mut spaces = HashSet::new();
        for r in &records {
            spaces.insert(r.pc >> 24);
        }
        assert!(
            spaces.len() >= 3,
            "expected >= 2 user spaces + kernel, got {spaces:?}"
        );
    }

    #[test]
    fn mostly_conditional_branches() {
        let records: Vec<_> = IbsBenchmark::Nroff.spec().build().take(100_000).collect();
        let cond = records
            .iter()
            .filter(|r| r.kind == BranchKind::Conditional)
            .count();
        let frac = cond as f64 / records.len() as f64;
        assert!(frac > 0.5, "conditional fraction {frac}");
    }

    #[test]
    fn take_conditionals_bounds_workloads() {
        let n = 10_000;
        let cond = IbsBenchmark::MpegPlay
            .spec()
            .build()
            .take_conditionals(n)
            .filter(|r| r.kind == BranchKind::Conditional)
            .count() as u64;
        assert_eq!(cond, n);
    }

    #[test]
    fn static_site_counts_track_table1() {
        // The *generated* program's static conditional count should land
        // within ±30% of the Table 1 target.
        for b in IbsBenchmark::all() {
            let spec = b.spec();
            let mut total = 0usize;
            for p in &spec.user_programs {
                total += p.generate(spec.seed).static_conditionals();
            }
            if let Some(k) = &spec.kernel_program {
                total += k.generate(spec.seed ^ 0xBEEF).static_conditionals();
            }
            let target = b.paper_static_branches();
            assert!(
                (target * 6 / 10..=target * 14 / 10).contains(&total),
                "{b}: target {target}, generated {total}"
            );
        }
    }
}
