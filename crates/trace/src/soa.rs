//! Structure-of-arrays view of a materialized trace.
//!
//! The simulation fast path (`bpred-sim`'s kernel layer) walks a trace as
//! parallel columns instead of an array of [`BranchRecord`] structs: the
//! 24-byte padded record becomes one `u64` pc, two packed bitset bits
//! (taken, conditional) and one `u8` kind code per record — about 9.3
//! bytes each, and the hot predict/update loop only ever touches the pc
//! column and two bit lookups. Columns are built once per cached trace
//! and memoized alongside the records (see [`crate::cache::columns`]).

use crate::record::{BranchKind, BranchRecord};

/// A trace decomposed into per-field columns.
///
/// The column view is a pure function of the record slice it was built
/// from: [`TraceColumns::from_records`] never reorders or filters, so
/// index `i` of every column describes `records[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceColumns {
    pc: Vec<u64>,
    /// Bit `i` set when record `i` was taken.
    taken: Vec<u64>,
    /// Bit `i` set when record `i` is a conditional branch.
    conditional: Vec<u64>,
    /// [`BranchKind`] codes (the binary trace-format encoding).
    kind: Vec<u8>,
    len: usize,
    conditional_count: u64,
}

#[inline]
fn bit(words: &[u64], i: usize) -> bool {
    (words[i >> 6] >> (i & 63)) & 1 == 1
}

impl TraceColumns {
    /// Decompose `records` into columns.
    pub fn from_records(records: &[BranchRecord]) -> TraceColumns {
        let len = records.len();
        let words = len.div_ceil(64);
        let mut pc = Vec::with_capacity(len);
        let mut taken = vec![0u64; words];
        let mut conditional = vec![0u64; words];
        let mut kind = Vec::with_capacity(len);
        let mut conditional_count = 0u64;
        for (i, r) in records.iter().enumerate() {
            pc.push(r.pc);
            kind.push(r.kind.code());
            if r.taken {
                taken[i >> 6] |= 1 << (i & 63);
            }
            if r.kind == BranchKind::Conditional {
                conditional[i >> 6] |= 1 << (i & 63);
                conditional_count += 1;
            }
        }
        TraceColumns {
            pc,
            taken,
            conditional,
            kind,
            len,
            conditional_count,
        }
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the trace holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of conditional records.
    #[inline]
    pub fn conditional_count(&self) -> u64 {
        self.conditional_count
    }

    /// The pc of record `i`.
    #[inline]
    pub fn pc(&self, i: usize) -> u64 {
        self.pc[i]
    }

    /// Whether record `i` was taken.
    #[inline]
    pub fn taken(&self, i: usize) -> bool {
        bit(&self.taken, i)
    }

    /// Whether record `i` is a conditional branch.
    #[inline]
    pub fn is_conditional(&self, i: usize) -> bool {
        bit(&self.conditional, i)
    }

    /// `(is_conditional, taken)` of record `i` in one call — the pair
    /// every history-tracking kernel needs per record.
    #[inline]
    pub fn cond_taken(&self, i: usize) -> (bool, bool) {
        (bit(&self.conditional, i), bit(&self.taken, i))
    }

    /// The kind of record `i`.
    #[inline]
    pub fn kind(&self, i: usize) -> BranchKind {
        BranchKind::from_code(self.kind[i]).expect("column codes come from BranchKind::code")
    }

    /// The pc column as a slice (for kernels that index it directly).
    #[inline]
    pub fn pcs(&self) -> &[u64] {
        &self.pc
    }

    /// Heap bytes held by the columns — what the trace cache charges
    /// against its byte budget.
    pub fn heap_bytes(&self) -> usize {
        self.pc.capacity() * std::mem::size_of::<u64>()
            + self.taken.capacity() * std::mem::size_of::<u64>()
            + self.conditional.capacity() * std::mem::size_of::<u64>()
            + self.kind.capacity()
    }

    /// Reassemble record `i` (tests and spot checks; the privilege column
    /// is not kept, so the result is normalized to user mode).
    #[cfg(test)]
    fn record(&self, i: usize) -> BranchRecord {
        BranchRecord {
            pc: self.pc(i),
            kind: self.kind(i),
            taken: self.taken(i),
            privilege: crate::record::Privilege::User,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::TraceSourceExt;
    use crate::workload::IbsBenchmark;

    #[test]
    fn columns_mirror_the_record_slice() {
        let records: Vec<BranchRecord> = IbsBenchmark::Groff
            .spec()
            .build()
            .take_conditionals(2_000)
            .collect();
        let cols = TraceColumns::from_records(&records);
        assert_eq!(cols.len(), records.len());
        assert!(!cols.is_empty());
        assert_eq!(cols.conditional_count(), 2_000);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(cols.pc(i), r.pc);
            assert_eq!(cols.taken(i), r.taken);
            assert_eq!(cols.is_conditional(i), r.kind.is_conditional());
            assert_eq!(cols.cond_taken(i), (r.kind.is_conditional(), r.taken));
            assert_eq!(cols.kind(i), r.kind);
        }
        assert_eq!(cols.pcs().len(), records.len());
    }

    #[test]
    fn roundtrip_modulo_privilege() {
        let records = vec![
            BranchRecord::conditional(0x1000, true),
            BranchRecord::unconditional(0x2000),
            BranchRecord::conditional(0x3000, false),
        ];
        let cols = TraceColumns::from_records(&records);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(cols.record(i), *r);
        }
    }

    #[test]
    fn bitsets_handle_word_boundaries() {
        // Exactly 64, 65 and 127 records: boundary words must index right.
        for n in [64usize, 65, 127, 128] {
            let records: Vec<BranchRecord> = (0..n)
                .map(|i| {
                    if i % 3 == 0 {
                        BranchRecord::unconditional(0x100 + 4 * i as u64)
                    } else {
                        BranchRecord::conditional(0x100 + 4 * i as u64, i % 2 == 0)
                    }
                })
                .collect();
            let cols = TraceColumns::from_records(&records);
            for (i, r) in records.iter().enumerate() {
                assert_eq!(cols.taken(i), r.taken, "n={n} i={i}");
                assert_eq!(
                    cols.is_conditional(i),
                    r.kind.is_conditional(),
                    "n={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn empty_trace() {
        let cols = TraceColumns::from_records(&[]);
        assert!(cols.is_empty());
        assert_eq!(cols.len(), 0);
        assert_eq!(cols.conditional_count(), 0);
    }

    #[test]
    fn heap_bytes_beat_the_aos_footprint() {
        let records: Vec<BranchRecord> = IbsBenchmark::Verilog
            .spec()
            .build()
            .take_conditionals(4_000)
            .collect();
        let cols = TraceColumns::from_records(&records);
        let aos = std::mem::size_of_val(&records[..]);
        assert!(
            cols.heap_bytes() < aos,
            "SoA {} bytes should undercut AoS {} bytes",
            cols.heap_bytes(),
            aos
        );
    }
}
