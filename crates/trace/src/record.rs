//! The dynamic branch record: one entry of a branch trace.

use std::fmt;

/// The kind of a control-transfer instruction.
///
/// The IBS traces the paper uses were captured on a MIPS DECstation, where
/// the compiler emits `beq r0,r0` as an unconditional relative jump; the
/// paper explicitly excludes those from the conditional-branch counts. Our
/// trace model makes the distinction explicit instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchKind {
    /// A conditional branch — the only kind that is predicted.
    Conditional,
    /// An unconditional jump (including compiler-synthesized ones).
    Unconditional,
    /// A subroutine call.
    Call,
    /// A subroutine return.
    Return,
}

impl BranchKind {
    /// `true` for [`BranchKind::Conditional`].
    #[inline]
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }

    /// Compact numeric encoding used by the binary trace format.
    #[inline]
    pub(crate) fn code(self) -> u8 {
        match self {
            BranchKind::Conditional => 0,
            BranchKind::Unconditional => 1,
            BranchKind::Call => 2,
            BranchKind::Return => 3,
        }
    }

    /// Decode the binary trace format encoding.
    #[inline]
    pub(crate) fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(BranchKind::Conditional),
            1 => Some(BranchKind::Unconditional),
            2 => Some(BranchKind::Call),
            3 => Some(BranchKind::Return),
            _ => None,
        }
    }
}

impl BranchKind {
    /// The lowercase display name as a static string — no allocation, so
    /// formatting whole traces stays cheap.
    #[inline]
    pub fn as_str(self) -> &'static str {
        match self {
            BranchKind::Conditional => "conditional",
            BranchKind::Unconditional => "unconditional",
            BranchKind::Call => "call",
            BranchKind::Return => "return",
        }
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Privilege level at which the branch executed.
///
/// The IBS benchmarks include complete operating-system activity; the
/// synthetic workloads reproduce that by interleaving kernel bursts, and
/// the record keeps the provenance for per-level statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Privilege {
    /// User-mode code.
    #[default]
    User,
    /// Kernel-mode code (interrupt handlers, system calls).
    Kernel,
}

impl Privilege {
    /// The lowercase display name as a static string.
    #[inline]
    pub fn as_str(self) -> &'static str {
        match self {
            Privilege::User => "user",
            Privilege::Kernel => "kernel",
        }
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One dynamic branch: the unit of a branch trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    /// The branch instruction address.
    pub pc: u64,
    /// What kind of control transfer this is.
    pub kind: BranchKind,
    /// Whether the branch was taken. Always `true` for unconditional
    /// kinds.
    pub taken: bool,
    /// User or kernel provenance.
    pub privilege: Privilege,
}

impl BranchRecord {
    /// A conditional user-mode branch.
    #[inline]
    pub fn conditional(pc: u64, taken: bool) -> Self {
        BranchRecord {
            pc,
            kind: BranchKind::Conditional,
            taken,
            privilege: Privilege::User,
        }
    }

    /// An unconditional user-mode jump.
    #[inline]
    pub fn unconditional(pc: u64) -> Self {
        BranchRecord {
            pc,
            kind: BranchKind::Unconditional,
            taken: true,
            privilege: Privilege::User,
        }
    }

    /// The same record tagged as kernel-mode.
    #[inline]
    pub fn in_kernel(mut self) -> Self {
        self.privilege = Privilege::Kernel;
        self
    }
}

impl fmt::Display for BranchRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#010x} {} {} [{}]",
            self.pc,
            self.kind,
            if self.taken { "T" } else { "N" },
            self.privilege
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        for kind in [
            BranchKind::Conditional,
            BranchKind::Unconditional,
            BranchKind::Call,
            BranchKind::Return,
        ] {
            assert_eq!(BranchKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(BranchKind::from_code(4), None);
    }

    #[test]
    fn constructors() {
        let c = BranchRecord::conditional(0x1000, true);
        assert!(c.kind.is_conditional());
        assert!(c.taken);
        assert_eq!(c.privilege, Privilege::User);
        let u = BranchRecord::unconditional(0x2000);
        assert!(!u.kind.is_conditional());
        assert!(u.taken, "unconditional is always taken");
        let k = BranchRecord::conditional(0x3000, false).in_kernel();
        assert_eq!(k.privilege, Privilege::Kernel);
    }

    #[test]
    fn static_display_names_match_the_debug_lowercase_convention() {
        // The Display impls used to lowercase the Debug name through a
        // per-call `format!`; the static strings must spell identically.
        for kind in [
            BranchKind::Conditional,
            BranchKind::Unconditional,
            BranchKind::Call,
            BranchKind::Return,
        ] {
            assert_eq!(kind.as_str(), format!("{kind:?}").to_lowercase());
            assert_eq!(kind.to_string(), kind.as_str());
        }
        for privilege in [Privilege::User, Privilege::Kernel] {
            assert_eq!(privilege.as_str(), format!("{privilege:?}").to_lowercase());
            assert_eq!(privilege.to_string(), privilege.as_str());
        }
    }

    #[test]
    fn display_is_informative() {
        let r = BranchRecord::conditional(0x1000, true);
        let s = r.to_string();
        assert!(s.contains("0x00001000"), "{s}");
        assert!(s.contains("conditional"), "{s}");
        assert!(s.contains(" T "), "{s}");
    }
}
