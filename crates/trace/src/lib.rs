//! # bpred-trace — branch traces and synthetic IBS-like workloads
//!
//! The paper drives every experiment with the IBS-Ultrix traces (user +
//! kernel activity from a MIPS DECstation). This crate provides the
//! equivalent substrate:
//!
//! * [`record`] — the [`record::BranchRecord`] trace unit (conditional /
//!   unconditional / call / return, user / kernel).
//! * [`stream`] — the [`stream::TraceSource`] streaming abstraction.
//! * [`behavior`] — stochastic branch-site behaviour models (bias, loops,
//!   patterns, history correlation, phases).
//! * [`cache`] — process-wide memoization of materialized benchmark
//!   traces (`Arc<[BranchRecord]>` per `(benchmark, len)`), so repeated
//!   sweeps generate each trace once.
//! * [`soa`] — [`soa::TraceColumns`], the structure-of-arrays view of a
//!   trace that the simulation kernels walk; memoized per cached trace.
//! * [`program`] — the synthetic CFG program model and its
//!   [`program::Walker`].
//! * [`gen`] — random program generation with Zipf routine frequencies.
//! * [`workload`] — the six IBS-like benchmark presets
//!   ([`workload::IbsBenchmark`]) with multi-process and kernel-burst
//!   interleaving.
//! * [`stats`] — Table 1-style trace statistics.
//! * [`io`] — binary and text trace file formats (plus [`io2`], the
//!   delta/varint-compressed `BPT2` format).
//! * [`mix`] — multiprogrammed interleaving of whole workloads.
//!
//! ## Quick start
//!
//! ```
//! use bpred_trace::prelude::*;
//!
//! let workload = IbsBenchmark::Groff.spec().build();
//! let records: Vec<BranchRecord> = workload.take_conditionals(1_000).collect();
//! let stats = TraceStats::collect(records.into_iter());
//! assert_eq!(stats.dynamic_conditional, 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod cache;
pub mod gen;
pub mod io;
pub mod io2;
pub mod mix;
pub mod program;
pub mod record;
pub mod soa;
pub mod stats;
pub mod stream;
pub mod workload;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::behavior::Behavior;
    pub use crate::cache::{materialize, CacheStats};
    pub use crate::gen::{BehaviorMix, ProgramParams};
    pub use crate::mix::MultiProgram;
    pub use crate::program::{Block, Program, Terminator, Walker};
    pub use crate::record::{BranchKind, BranchRecord, Privilege};
    pub use crate::soa::TraceColumns;
    pub use crate::stats::TraceStats;
    pub use crate::stream::{TraceSource, TraceSourceExt};
    pub use crate::workload::{IbsBenchmark, Workload, WorkloadSpec};
}

pub use record::{BranchKind, BranchRecord, Privilege};
pub use stream::{TraceSource, TraceSourceExt};
pub use workload::IbsBenchmark;
