//! Trace file I/O: a compact binary format (`.bpt`) and a debug-friendly
//! text format.
//!
//! The binary layout is:
//!
//! ```text
//! magic   4 bytes  "BPT1"
//! count   8 bytes  little-endian record count
//! records count * 9 bytes:
//!   pc      8 bytes little-endian
//!   flags   1 byte: bit0 taken, bit1 kernel, bits2-3 kind code
//! ```
//!
//! The format is deliberately simple — it exists so workloads can be
//! materialized once and replayed byte-identically (e.g. for cross-checking
//! against an external simulator), not to compete with compressed trace
//! formats.

use crate::record::{BranchKind, BranchRecord, Privilege};
use std::io::{self, BufRead, Read, Write};

const MAGIC: &[u8; 4] = b"BPT1";

/// Write a trace in the binary `.bpt` format.
///
/// The record count is written up front, so the records are buffered into
/// memory first; use this for bounded traces only.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_binary<W: Write>(
    mut writer: W,
    records: impl Iterator<Item = BranchRecord>,
) -> io::Result<u64> {
    let records: Vec<BranchRecord> = records.collect();
    writer.write_all(MAGIC)?;
    writer.write_all(&(records.len() as u64).to_le_bytes())?;
    for r in &records {
        writer.write_all(&r.pc.to_le_bytes())?;
        let flags = u8::from(r.taken)
            | (u8::from(r.privilege == Privilege::Kernel) << 1)
            | (r.kind.code() << 2);
        writer.write_all(&[flags])?;
    }
    Ok(records.len() as u64)
}

/// Read a binary `.bpt` trace fully into memory.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a bad magic, a bad kind code,
/// or a truncated stream.
pub fn read_binary<R: Read>(mut reader: R) -> io::Result<Vec<BranchRecord>> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(invalid("bad magic, not a BPT1 trace"));
    }
    let mut count_bytes = [0u8; 8];
    reader.read_exact(&mut count_bytes)?;
    let count = u64::from_le_bytes(count_bytes);
    let mut records = Vec::with_capacity(usize::try_from(count).map_err(|_| invalid("count"))?);
    let mut buf = [0u8; 9];
    for _ in 0..count {
        reader.read_exact(&mut buf)?;
        let pc = u64::from_le_bytes(buf[..8].try_into().expect("slice of 8"));
        let flags = buf[8];
        let kind = BranchKind::from_code((flags >> 2) & 0b11)
            .ok_or_else(|| invalid("bad branch kind code"))?;
        records.push(BranchRecord {
            pc,
            kind,
            taken: flags & 1 == 1,
            privilege: if flags & 0b10 != 0 {
                Privilege::Kernel
            } else {
                Privilege::User
            },
        });
    }
    Ok(records)
}

/// Write a binary trace without buffering: a placeholder record count is
/// written first and patched once the stream ends, so arbitrarily long
/// traces stream straight to disk.
///
/// Requires [`io::Seek`] (a `File` or `Cursor`); for non-seekable sinks
/// use [`write_binary`].
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_binary_streaming<W: Write + io::Seek>(
    mut writer: W,
    records: impl Iterator<Item = BranchRecord>,
) -> io::Result<u64> {
    writer.write_all(MAGIC)?;
    let count_pos = writer.stream_position()?;
    writer.write_all(&0u64.to_le_bytes())?;
    let mut count = 0u64;
    for r in records {
        writer.write_all(&r.pc.to_le_bytes())?;
        let flags = u8::from(r.taken)
            | (u8::from(r.privilege == Privilege::Kernel) << 1)
            | (r.kind.code() << 2);
        writer.write_all(&[flags])?;
        count += 1;
    }
    let end = writer.stream_position()?;
    writer.seek(io::SeekFrom::Start(count_pos))?;
    writer.write_all(&count.to_le_bytes())?;
    writer.seek(io::SeekFrom::Start(end))?;
    Ok(count)
}

/// Write a trace as one human-readable line per record:
/// `pc kind T|N user|kernel`.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_text<W: Write>(
    mut writer: W,
    records: impl Iterator<Item = BranchRecord>,
) -> io::Result<u64> {
    let mut n = 0;
    for r in records {
        writeln!(
            writer,
            "{:#x} {} {} {}",
            r.pc,
            r.kind,
            if r.taken { "T" } else { "N" },
            r.privilege
        )?;
        n += 1;
    }
    Ok(n)
}

/// Read a text trace written by [`write_text`].
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on malformed lines.
pub fn read_text<R: BufRead>(reader: R) -> io::Result<Vec<BranchRecord>> {
    let mut records = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |what: &str| invalid(&format!("line {}: {what}", lineno + 1));
        let pc_str = parts.next().ok_or_else(|| err("missing pc"))?;
        let pc =
            u64::from_str_radix(pc_str.trim_start_matches("0x"), 16).map_err(|_| err("bad pc"))?;
        let kind = match parts.next().ok_or_else(|| err("missing kind"))? {
            "conditional" => BranchKind::Conditional,
            "unconditional" => BranchKind::Unconditional,
            "call" => BranchKind::Call,
            "return" => BranchKind::Return,
            _ => return Err(err("bad kind")),
        };
        let taken = match parts.next().ok_or_else(|| err("missing direction"))? {
            "T" => true,
            "N" => false,
            _ => return Err(err("bad direction")),
        };
        let privilege = match parts.next().ok_or_else(|| err("missing privilege"))? {
            "user" => Privilege::User,
            "kernel" => Privilege::Kernel,
            _ => return Err(err("bad privilege")),
        };
        records.push(BranchRecord {
            pc,
            kind,
            taken,
            privilege,
        });
    }
    Ok(records)
}

/// A streaming reader over a binary `.bpt` trace: yields records one at a
/// time without materializing the file.
///
/// Each item is an `io::Result<BranchRecord>`; iteration ends after the
/// header-declared record count, or at the first error.
///
/// ```no_run
/// use bpred_trace::io::BinaryReader;
/// use std::fs::File;
/// use std::io::BufReader;
///
/// # fn main() -> std::io::Result<()> {
/// let file = BufReader::new(File::open("trace.bpt")?);
/// for record in BinaryReader::new(file)? {
///     let record = record?;
///     println!("{record}");
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BinaryReader<R> {
    reader: R,
    remaining: u64,
    failed: bool,
}

impl<R: Read> BinaryReader<R> {
    /// Validate the header and prepare to stream the records.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on a bad magic, or any I/O
    /// error from reading the header.
    pub fn new(mut reader: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(invalid("bad magic, not a BPT1 trace"));
        }
        let mut count_bytes = [0u8; 8];
        reader.read_exact(&mut count_bytes)?;
        Ok(BinaryReader {
            reader,
            remaining: u64::from_le_bytes(count_bytes),
            failed: false,
        })
    }

    /// Records left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl<R: Read> Iterator for BinaryReader<R> {
    type Item = io::Result<BranchRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.remaining == 0 {
            return None;
        }
        let mut buf = [0u8; 9];
        if let Err(e) = self.reader.read_exact(&mut buf) {
            self.failed = true;
            return Some(Err(e));
        }
        self.remaining -= 1;
        let pc = u64::from_le_bytes(buf[..8].try_into().expect("slice of 8"));
        let flags = buf[8];
        let Some(kind) = BranchKind::from_code((flags >> 2) & 0b11) else {
            self.failed = true;
            return Some(Err(invalid("bad branch kind code")));
        };
        Some(Ok(BranchRecord {
            pc,
            kind,
            taken: flags & 1 == 1,
            privilege: if flags & 0b10 != 0 {
                Privilege::Kernel
            } else {
                Privilege::User
            },
        }))
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::IbsBenchmark;

    fn sample() -> Vec<BranchRecord> {
        vec![
            BranchRecord::conditional(0x0040_1000, true),
            BranchRecord::conditional(0x0040_1010, false),
            BranchRecord::unconditional(0x0040_1020),
            BranchRecord {
                pc: 0x8000_0100,
                kind: BranchKind::Call,
                taken: true,
                privilege: Privilege::Kernel,
            },
            BranchRecord {
                pc: 0x8000_0200,
                kind: BranchKind::Return,
                taken: true,
                privilege: Privilege::Kernel,
            },
        ]
    }

    #[test]
    fn binary_roundtrip() {
        let mut buf = Vec::new();
        let n = write_binary(&mut buf, sample().into_iter()).unwrap();
        assert_eq!(n, 5);
        assert_eq!(read_binary(buf.as_slice()).unwrap(), sample());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&mut buf, sample().into_iter()).unwrap();
        buf[0] = b'X';
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&mut buf, sample().into_iter()).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn text_roundtrip() {
        let mut buf = Vec::new();
        write_text(&mut buf, sample().into_iter()).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("0x401000 conditional T user"), "{text}");
        assert_eq!(read_text(buf.as_slice()).unwrap(), sample());
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let input = "# a comment\n\n0x100 conditional T user\n";
        let records = read_text(input.as_bytes()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].pc, 0x100);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text("zzz".as_bytes()).is_err());
        assert!(read_text("0x100 conditional X user".as_bytes()).is_err());
        assert!(read_text("0x100 sideways T user".as_bytes()).is_err());
        assert!(read_text("0x100 conditional T root".as_bytes()).is_err());
    }

    #[test]
    fn streaming_writer_matches_buffered_writer() {
        let mut buffered = Vec::new();
        write_binary(&mut buffered, sample().into_iter()).unwrap();
        let mut cursor = io::Cursor::new(Vec::new());
        let n = write_binary_streaming(&mut cursor, sample().into_iter()).unwrap();
        assert_eq!(n, 5);
        assert_eq!(cursor.into_inner(), buffered, "byte-identical output");
    }

    #[test]
    fn streaming_writer_patches_count() {
        let mut cursor = io::Cursor::new(Vec::new());
        write_binary_streaming(&mut cursor, sample().into_iter()).unwrap();
        let bytes = cursor.into_inner();
        let count = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
        assert_eq!(count, 5);
        assert_eq!(read_binary(bytes.as_slice()).unwrap(), sample());
    }

    #[test]
    fn streaming_reader_matches_bulk_reader() {
        let mut buf = Vec::new();
        write_binary(&mut buf, sample().into_iter()).unwrap();
        let streamed: Vec<BranchRecord> = BinaryReader::new(buf.as_slice())
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(streamed, sample());
    }

    #[test]
    fn streaming_reader_reports_remaining() {
        let mut buf = Vec::new();
        write_binary(&mut buf, sample().into_iter()).unwrap();
        let mut reader = BinaryReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.remaining(), 5);
        reader.next().unwrap().unwrap();
        assert_eq!(reader.remaining(), 4);
    }

    #[test]
    fn streaming_reader_stops_after_error() {
        let mut buf = Vec::new();
        write_binary(&mut buf, sample().into_iter()).unwrap();
        buf.truncate(buf.len() - 3); // corrupt the final record
        let results: Vec<_> = BinaryReader::new(buf.as_slice()).unwrap().collect();
        assert_eq!(results.len(), 5, "4 records then one error");
        assert!(results[..4].iter().all(Result::is_ok));
        assert!(results[4].is_err());
    }

    #[test]
    fn streaming_reader_rejects_bad_magic() {
        assert!(BinaryReader::new(&b"NOPE\0\0\0\0\0\0\0\0"[..]).is_err());
    }

    #[test]
    fn workload_roundtrips_through_binary() {
        let records: Vec<_> = IbsBenchmark::Verilog.spec().build().take(10_000).collect();
        let mut buf = Vec::new();
        write_binary(&mut buf, records.iter().copied()).unwrap();
        assert_eq!(read_binary(buf.as_slice()).unwrap(), records);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_binary(&mut buf, std::iter::empty()).unwrap();
        assert!(read_binary(buf.as_slice()).unwrap().is_empty());
    }
}
