//! The compact `BPT2` trace format: delta- and varint-encoded records.
//!
//! The flat [`crate::io`] format spends 9 bytes per record; real traces
//! have enormous pc locality, so `BPT2` encodes each record as
//!
//! ```text
//! header  "BPT2" + varint record count
//! record  flags byte: bit0 taken, bit1 kernel, bits2-3 kind,
//!                     bit4 pc-delta sign
//!         varint |pc - prev_pc| (bytes, zig-zag free since sign is in flags)
//! ```
//!
//! On the synthetic workloads this is ~2.2 bytes per record — a 4x
//! saving — while remaining a forward-only stream (see
//! [`CompactReader`]).

use crate::record::{BranchKind, BranchRecord, Privilege};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"BPT2";

fn write_varint<W: Write>(writer: &mut W, mut value: u64) -> io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return writer.write_all(&[byte]);
        }
        writer.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(invalid("varint overflows u64"));
        }
        value |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Write a trace in the compact `BPT2` format; returns the record count.
///
/// Buffers the records to know the count up front, like
/// [`crate::io::write_binary`].
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_compact<W: Write>(
    mut writer: W,
    records: impl Iterator<Item = BranchRecord>,
) -> io::Result<u64> {
    let records: Vec<BranchRecord> = records.collect();
    writer.write_all(MAGIC)?;
    write_varint(&mut writer, records.len() as u64)?;
    let mut prev_pc = 0u64;
    for r in &records {
        let (delta, negative) = if r.pc >= prev_pc {
            (r.pc - prev_pc, false)
        } else {
            (prev_pc - r.pc, true)
        };
        let flags = u8::from(r.taken)
            | (u8::from(r.privilege == Privilege::Kernel) << 1)
            | (r.kind.code() << 2)
            | (u8::from(negative) << 4);
        writer.write_all(&[flags])?;
        write_varint(&mut writer, delta)?;
        prev_pc = r.pc;
    }
    Ok(records.len() as u64)
}

/// Read a compact `BPT2` trace fully into memory.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] on a bad magic or malformed
/// stream.
pub fn read_compact<R: Read>(reader: R) -> io::Result<Vec<BranchRecord>> {
    CompactReader::new(reader)?.collect()
}

/// Streaming reader over a `BPT2` trace.
#[derive(Debug)]
pub struct CompactReader<R> {
    reader: R,
    remaining: u64,
    prev_pc: u64,
    failed: bool,
}

impl<R: Read> CompactReader<R> {
    /// Validate the header and prepare to stream.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on a bad magic.
    pub fn new(mut reader: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(invalid("bad magic, not a BPT2 trace"));
        }
        let remaining = read_varint(&mut reader)?;
        Ok(CompactReader {
            reader,
            remaining,
            prev_pc: 0,
            failed: false,
        })
    }

    /// Records left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl<R: Read> Iterator for CompactReader<R> {
    type Item = io::Result<BranchRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.remaining == 0 {
            return None;
        }
        let result = (|| {
            let mut flags = [0u8; 1];
            self.reader.read_exact(&mut flags)?;
            let flags = flags[0];
            let delta = read_varint(&mut self.reader)?;
            let kind = BranchKind::from_code((flags >> 2) & 0b11)
                .ok_or_else(|| invalid("bad branch kind code"))?;
            let pc = if flags & 0b1_0000 != 0 {
                self.prev_pc.wrapping_sub(delta)
            } else {
                self.prev_pc.wrapping_add(delta)
            };
            self.prev_pc = pc;
            Ok(BranchRecord {
                pc,
                kind,
                taken: flags & 1 == 1,
                privilege: if flags & 0b10 != 0 {
                    Privilege::Kernel
                } else {
                    Privilege::User
                },
            })
        })();
        match result {
            Ok(record) => {
                self.remaining -= 1;
                Some(Ok(record))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::write_binary;
    use crate::stream::TraceSourceExt;
    use crate::workload::IbsBenchmark;

    fn sample() -> Vec<BranchRecord> {
        vec![
            BranchRecord::conditional(0x0040_1000, true),
            BranchRecord::conditional(0x0040_1010, false),
            BranchRecord::unconditional(0x0040_0f00), // backward delta
            BranchRecord {
                pc: 0x8000_0100,
                kind: BranchKind::Call,
                taken: true,
                privilege: Privilege::Kernel,
            },
            BranchRecord {
                pc: 0x8000_0200,
                kind: BranchKind::Return,
                taken: true,
                privilege: Privilege::Kernel,
            },
        ]
    }

    #[test]
    fn varint_roundtrip() {
        for value in [0u64, 1, 127, 128, 300, 0xFFFF, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, value).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), value);
        }
    }

    #[test]
    fn compact_roundtrip() {
        let mut buf = Vec::new();
        let n = write_compact(&mut buf, sample().into_iter()).unwrap();
        assert_eq!(n, 5);
        assert_eq!(read_compact(buf.as_slice()).unwrap(), sample());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_compact(&mut buf, std::iter::empty()).unwrap();
        assert!(read_compact(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(read_compact(&b"BPT1\0\0\0\0"[..]).is_err());
    }

    #[test]
    fn truncation_surfaces_an_error() {
        let mut buf = Vec::new();
        write_compact(&mut buf, sample().into_iter()).unwrap();
        buf.truncate(buf.len() - 1);
        let results: Vec<_> = CompactReader::new(buf.as_slice()).unwrap().collect();
        assert!(results.last().unwrap().is_err());
    }

    #[test]
    fn workload_roundtrips_and_compresses() {
        let records: Vec<_> = IbsBenchmark::Gs
            .spec()
            .build()
            .take_conditionals(20_000)
            .collect();
        let mut compact = Vec::new();
        write_compact(&mut compact, records.iter().copied()).unwrap();
        assert_eq!(read_compact(compact.as_slice()).unwrap(), records);

        let mut flat = Vec::new();
        write_binary(&mut flat, records.iter().copied()).unwrap();
        assert!(
            compact.len() * 2 < flat.len(),
            "BPT2 {} bytes should be well under half of BPT1 {} bytes",
            compact.len(),
            flat.len()
        );
    }

    #[test]
    fn pc_deltas_roundtrip_at_u64_boundaries() {
        // Deltas are stored as |pc - prev_pc| with a sign flag and
        // decoded with wrapping arithmetic, so the extremes must all
        // survive: zero deltas, ±1 steps, and full-range jumps between
        // 0 and u64::MAX (a u64::MAX-sized delta in both directions).
        let pcs = [
            0u64,
            0, // delta 0 from pc 0
            1,
            0,
            u64::MAX,
            u64::MAX, // delta 0 at the top
            u64::MAX - 1,
            u64::MAX,
            0, // full-range backward jump
            u64::MAX,
            1u64 << 63,
            (1u64 << 63) - 1,
        ];
        let records: Vec<BranchRecord> = pcs
            .iter()
            .map(|&pc| BranchRecord::conditional(pc, pc % 2 == 0))
            .collect();
        let mut buf = Vec::new();
        write_compact(&mut buf, records.iter().copied()).unwrap();
        assert_eq!(read_compact(buf.as_slice()).unwrap(), records);
    }

    #[test]
    fn every_flag_combination_roundtrips() {
        // All 4 kinds x taken x privilege = 16 flag patterns, each with
        // a distinct pc so the delta path is exercised too.
        let kinds = [
            BranchKind::Conditional,
            BranchKind::Unconditional,
            BranchKind::Call,
            BranchKind::Return,
        ];
        let mut records = Vec::new();
        for (i, &kind) in kinds.iter().enumerate() {
            for taken in [false, true] {
                for privilege in [Privilege::User, Privilege::Kernel] {
                    records.push(BranchRecord {
                        pc: 0x1000 * (i as u64 + 1) + u64::from(taken) * 8,
                        kind,
                        taken,
                        privilege,
                    });
                }
            }
        }
        assert_eq!(records.len(), 16);
        let mut buf = Vec::new();
        write_compact(&mut buf, records.iter().copied()).unwrap();
        let back: Vec<BranchRecord> = CompactReader::new(buf.as_slice())
            .unwrap()
            .collect::<io::Result<_>>()
            .unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn every_truncation_point_surfaces_an_error() {
        // Cutting the stream after ANY byte must either fail header
        // validation or surface exactly one record-level error — never
        // panic, hang, or silently yield a short but "successful" trace.
        let mut buf = Vec::new();
        write_compact(&mut buf, sample().into_iter()).unwrap();
        for cut in 0..buf.len() {
            let truncated = &buf[..cut];
            match CompactReader::new(truncated) {
                Err(_) => assert!(cut < 5, "header errors only before count at cut {cut}"),
                Ok(reader) => {
                    let results: Vec<_> = reader.collect();
                    let errors = results.iter().filter(|r| r.is_err()).count();
                    assert_eq!(errors, 1, "exactly one error then stop, cut {cut}");
                    assert!(results.last().unwrap().is_err(), "error is terminal");
                    assert!(results.len() <= sample().len());
                }
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_records_roundtrip(raw in proptest::collection::vec(
            (
                proptest::any::<u64>(),
                proptest::any::<u8>(),
                proptest::any::<bool>(),
                proptest::any::<bool>(),
            ),
            0..64
        )) {
            let records: Vec<BranchRecord> = raw
                .iter()
                .map(|&(pc, kind, taken, kernel)| BranchRecord {
                    pc,
                    kind: BranchKind::from_code(kind % 4).unwrap(),
                    taken,
                    privilege: if kernel { Privilege::Kernel } else { Privilege::User },
                })
                .collect();
            let mut buf = Vec::new();
            write_compact(&mut buf, records.iter().copied()).unwrap();
            let back = read_compact(buf.as_slice()).unwrap();
            proptest::prop_assert_eq!(back, records);
        }
    }

    #[test]
    fn streaming_matches_bulk() {
        let mut buf = Vec::new();
        write_compact(&mut buf, sample().into_iter()).unwrap();
        let mut reader = CompactReader::new(buf.as_slice()).unwrap();
        assert_eq!(reader.remaining(), 5);
        let streamed: Vec<BranchRecord> = reader.by_ref().collect::<io::Result<_>>().unwrap();
        assert_eq!(streamed, sample());
        assert_eq!(reader.remaining(), 0);
    }
}
