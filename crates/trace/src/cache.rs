//! Process-wide memoization of materialized benchmark traces.
//!
//! The synthetic workloads are deterministic but expensive to generate:
//! every [`sim_pct`-style](crate::workload) sweep cell that re-walks the
//! same `(benchmark, len)` stream pays the full CFG-walk cost again. This
//! module materializes a benchmark's record stream *once* into an
//! `Arc<[BranchRecord]>` and hands the same allocation to every
//! subsequent caller, so an N-row sweep generates each trace once instead
//! of N times (and a batched engine can drive N predictors over one
//! pass — see `bpred-sim`'s `engine::run_many`).
//!
//! Properties:
//!
//! * **Thread-safe** — lookups take a mutex briefly; generation happens
//!   *outside* the lock, so concurrent misses on different keys
//!   materialize in parallel. If two threads race on the same key the
//!   loser adopts the winner's allocation (streams are deterministic, so
//!   the two are identical).
//! * **Bounded** — resident bytes are capped (1 GiB by default); the
//!   least-recently-used entry is evicted when an insert would exceed the
//!   cap. An entry larger than the whole cap is returned uncached.
//! * **Observable** — global hit/miss/eviction counters feed the CLI's
//!   `--verbose` summaries ([`stats`]).
//! * **Bypassable** — [`set_enabled]`(false)` (the CLI's
//!   `--no-trace-cache`) regenerates every request without storing it,
//!   restoring the streaming memory profile. The switch is process-global:
//!   only single-threaded entry points (the CLI `main`) should flip it;
//!   tests must not, as test binaries run threads concurrently.

use crate::record::BranchRecord;
use crate::soa::TraceColumns;
use crate::stream::TraceSourceExt;
use crate::workload::{IbsBenchmark, DEFAULT_SEED_BASE};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default resident-byte bound: at 16 bytes per record this holds about
/// 67 M records — the six default-length benchmark traces together are
/// roughly 13 M conditionals plus interleaved unconditionals, so whole
/// `experiment all` runs fit without eviction.
pub const DEFAULT_CAPACITY_BYTES: usize = 1 << 30;

/// One cached trace keyed by `(benchmark, conditional-branch length,
/// workload seed base)`.
type Key = (IbsBenchmark, u64, u64);

struct Entry {
    records: Arc<[BranchRecord]>,
    /// The structure-of-arrays view, built lazily on the first
    /// [`columns`]-style lookup and then shared; counted against the byte
    /// budget alongside the records.
    columns: Option<Arc<TraceColumns>>,
    /// Logical timestamp of the last hit; smallest is evicted first.
    stamp: u64,
}

impl Entry {
    fn bytes(&self) -> usize {
        LruCache::bytes_of(&self.records) + self.columns.as_ref().map_or(0, |c| c.heap_bytes())
    }
}

/// The bounded LRU map (generation-agnostic: callers insert ready-made
/// slices, which keeps eviction unit-testable without workloads).
struct LruCache {
    capacity_bytes: usize,
    resident_bytes: usize,
    clock: u64,
    map: HashMap<Key, Entry>,
    evictions: u64,
}

impl LruCache {
    fn new(capacity_bytes: usize) -> Self {
        LruCache {
            capacity_bytes,
            resident_bytes: 0,
            clock: 0,
            map: HashMap::new(),
            evictions: 0,
        }
    }

    fn bytes_of(records: &[BranchRecord]) -> usize {
        std::mem::size_of_val(records)
    }

    fn get(&mut self, key: &Key) -> Option<Arc<[BranchRecord]>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|e| {
            e.stamp = clock;
            Arc::clone(&e.records)
        })
    }

    /// Insert `records`, evicting least-recently-used entries until the
    /// byte bound holds. A slice larger than the whole capacity is not
    /// stored at all.
    fn insert(&mut self, key: Key, records: Arc<[BranchRecord]>) {
        let bytes = Self::bytes_of(&records);
        if bytes > self.capacity_bytes {
            return;
        }
        self.evict_until(bytes, None);
        self.clock += 1;
        self.resident_bytes += bytes;
        self.map.insert(
            key,
            Entry {
                records,
                columns: None,
                stamp: self.clock,
            },
        );
    }

    /// Evict least-recently-used entries (never `keep`) until `incoming`
    /// extra bytes fit, or nothing evictable remains.
    fn evict_until(&mut self, incoming: usize, keep: Option<&Key>) {
        while self.resident_bytes + incoming > self.capacity_bytes {
            let Some(oldest) = self
                .map
                .iter()
                .filter(|(k, _)| Some(*k) != keep)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            else {
                return;
            };
            let evicted = self.map.remove(&oldest).expect("key just found");
            self.resident_bytes -= evicted.bytes();
            self.evictions += 1;
        }
    }

    /// The memoized column view for `key`, if present (bumps recency).
    fn get_columns(&mut self, key: &Key) -> Option<Arc<TraceColumns>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).and_then(|e| {
            e.stamp = clock;
            e.columns.as_ref().map(Arc::clone)
        })
    }

    /// Attach a freshly built column view to `key`'s entry, charging its
    /// bytes against the budget (other entries may be evicted to make
    /// room; the entry itself is never evicted for its own columns). On a
    /// build race the first attach wins; returns the resident view.
    fn attach_columns(&mut self, key: &Key, columns: Arc<TraceColumns>) -> Arc<TraceColumns> {
        let Some(entry) = self.map.get(key) else {
            // Entry evicted (or never stored) between lookup and attach:
            // hand the caller its own allocation, uncached.
            return columns;
        };
        if let Some(existing) = entry.columns.as_ref() {
            return Arc::clone(existing);
        }
        let bytes = columns.heap_bytes();
        self.evict_until(bytes, Some(key));
        // The keep-filter guarantees the entry is still resident.
        let entry = self.map.get_mut(key).expect("kept entry still resident");
        entry.columns = Some(Arc::clone(&columns));
        self.resident_bytes += bytes;
        columns
    }
}

static CACHE: OnceLock<Mutex<LruCache>> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(true);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<LruCache> {
    CACHE.get_or_init(|| Mutex::new(LruCache::new(DEFAULT_CAPACITY_BYTES)))
}

/// Enable or disable the process-wide cache. While disabled,
/// [`materialize`] regenerates the trace on every call and stores
/// nothing (existing entries are kept but not served).
///
/// This is a process-global switch intended for single-threaded entry
/// points (the CLI's `--no-trace-cache`); tests should leave it alone
/// because test binaries run threads concurrently.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the cache currently serves and stores entries.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A snapshot of the cache's counters, for `--verbose` run summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that had to generate the trace (bypassed lookups while the
    /// cache is disabled are not counted).
    pub misses: u64,
    /// Entries dropped to respect the byte bound.
    pub evictions: u64,
    /// Resident traces right now.
    pub entries: usize,
    /// Bytes held by resident traces right now.
    pub resident_bytes: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Snapshot the global counters.
pub fn stats() -> CacheStats {
    let guard = cache().lock().expect("trace cache poisoned");
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: guard.evictions,
        entries: guard.map.len(),
        resident_bytes: guard.resident_bytes,
    }
}

/// Drop every resident trace (counters are kept).
pub fn clear() {
    let mut guard = cache().lock().expect("trace cache poisoned");
    let capacity = guard.capacity_bytes;
    *guard = LruCache::new(capacity);
}

fn generate(bench: IbsBenchmark, len: u64, seed_base: u64) -> Arc<[BranchRecord]> {
    let records: Vec<BranchRecord> = bench
        .spec_seeded(seed_base)
        .build()
        .take_conditionals(len)
        .collect();
    records.into()
}

/// The benchmark's record stream bounded to `len` conditional branches,
/// materialized once per process (default workload seed).
///
/// Every caller passing the same `(bench, len)` receives a clone of the
/// same `Arc` allocation (test this with [`Arc::ptr_eq`]), so the
/// marginal cost of a repeat lookup is a reference-count bump.
pub fn materialize(bench: IbsBenchmark, len: u64) -> Arc<[BranchRecord]> {
    materialize_seeded(bench, len, DEFAULT_SEED_BASE)
}

/// [`materialize`] with an explicit workload seed base; traces generated
/// under different bases are distinct cache entries.
pub fn materialize_seeded(bench: IbsBenchmark, len: u64, seed_base: u64) -> Arc<[BranchRecord]> {
    if !is_enabled() {
        return generate(bench, len, seed_base);
    }
    let key = (bench, len, seed_base);
    if let Some(records) = cache().lock().expect("trace cache poisoned").get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return records;
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    // Generate outside the lock so other keys make progress; on a same-key
    // race the first insert wins and the loser adopts it (streams are
    // deterministic, so both allocations hold identical records).
    let generated = generate(bench, len, seed_base);
    let mut guard = cache().lock().expect("trace cache poisoned");
    if let Some(records) = guard.get(&key) {
        return records;
    }
    guard.insert(key, Arc::clone(&generated));
    generated
}

/// The benchmark's trace as a memoized structure-of-arrays view (default
/// workload seed) — see [`columns_seeded`].
pub fn columns(bench: IbsBenchmark, len: u64) -> Arc<TraceColumns> {
    columns_seeded(bench, len, DEFAULT_SEED_BASE)
}

/// The benchmark's trace as a structure-of-arrays view, built at most
/// once per cached trace and memoized alongside the record slice: every
/// caller passing the same `(bench, len, seed_base)` receives a clone of
/// the same [`TraceColumns`] allocation. Column bytes are charged against
/// the cache's byte budget like the records themselves. With the cache
/// disabled the view is rebuilt per call, mirroring
/// [`materialize_seeded`].
pub fn columns_seeded(bench: IbsBenchmark, len: u64, seed_base: u64) -> Arc<TraceColumns> {
    if !is_enabled() {
        return Arc::new(TraceColumns::from_records(&generate(bench, len, seed_base)));
    }
    let key = (bench, len, seed_base);
    if let Some(columns) = cache()
        .lock()
        .expect("trace cache poisoned")
        .get_columns(&key)
    {
        return columns;
    }
    // Materialize (or fetch) the records first, then build the columns
    // outside the lock; a same-key race is settled inside attach_columns
    // (first attach wins, both builds are identical).
    let records = materialize_seeded(bench, len, seed_base);
    let built = Arc::new(TraceColumns::from_records(&records));
    cache()
        .lock()
        .expect("trace cache poisoned")
        .attach_columns(&key, built)
}

/// The benchmark's trace as records *and* columns in one lookup. With the
/// cache enabled this is [`materialize_seeded`] plus [`columns_seeded`]
/// (the second lookup is a cache hit on the same entry); with the cache
/// disabled the trace is generated **once** and both views are built from
/// it — callers that need records and columns together should use this
/// instead of the two calls, which would generate twice under
/// `--no-trace-cache`.
pub fn records_and_columns(
    bench: IbsBenchmark,
    len: u64,
    seed_base: u64,
) -> (Arc<[BranchRecord]>, Arc<TraceColumns>) {
    if !is_enabled() {
        let records = generate(bench, len, seed_base);
        let columns = Arc::new(TraceColumns::from_records(&records));
        return (records, columns);
    }
    let records = materialize_seeded(bench, len, seed_base);
    let columns = columns_seeded(bench, len, seed_base);
    (records, columns)
}

/// An owned iterator over a materialized trace: keeps the `Arc` alive and
/// yields records by value, so it drops into any `impl Iterator<Item =
/// BranchRecord>` consumer (the simulation engine, the aliasing
/// classifiers) without lifetime plumbing.
#[derive(Debug, Clone)]
pub struct TraceIter {
    records: Arc<[BranchRecord]>,
    next: usize,
}

impl Iterator for TraceIter {
    type Item = BranchRecord;

    #[inline]
    fn next(&mut self) -> Option<BranchRecord> {
        let record = self.records.get(self.next).copied();
        self.next += record.is_some() as usize;
        record
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.records.len() - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for TraceIter {}

/// Iterate an already materialized trace from the start.
pub fn iter(records: Arc<[BranchRecord]>) -> TraceIter {
    TraceIter { records, next: 0 }
}

/// [`materialize`] then [`iter`]: a drop-in replacement for
/// `bench.spec().build().take_conditionals(len)` that shares the
/// process-wide materialization.
pub fn stream(bench: IbsBenchmark, len: u64) -> TraceIter {
    iter(materialize(bench, len))
}

/// [`stream`] with an explicit workload seed base.
pub fn stream_seeded(bench: IbsBenchmark, len: u64, seed_base: u64) -> TraceIter {
    iter(materialize_seeded(bench, len, seed_base))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_records(n: usize, base_pc: u64) -> Arc<[BranchRecord]> {
        (0..n)
            .map(|i| BranchRecord::conditional(base_pc + 4 * i as u64, i % 2 == 0))
            .collect::<Vec<_>>()
            .into()
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let record_bytes = std::mem::size_of::<BranchRecord>();
        let mut lru = LruCache::new(10 * record_bytes);
        let a = (IbsBenchmark::Groff, 4, DEFAULT_SEED_BASE);
        let b = (IbsBenchmark::Gs, 4, DEFAULT_SEED_BASE);
        let c = (IbsBenchmark::Nroff, 4, DEFAULT_SEED_BASE);
        lru.insert(a, dummy_records(4, 0x1000));
        lru.insert(b, dummy_records(4, 0x2000));
        // Touch `a` so `b` is the LRU entry, then overflow.
        assert!(lru.get(&a).is_some());
        lru.insert(c, dummy_records(4, 0x3000));
        assert_eq!(lru.evictions, 1);
        assert!(lru.get(&a).is_some(), "recently used entry survives");
        assert!(lru.get(&b).is_none(), "LRU entry was evicted");
        assert!(lru.get(&c).is_some());
        assert!(lru.resident_bytes <= lru.capacity_bytes);
    }

    #[test]
    fn lru_rejects_oversized_entry() {
        let record_bytes = std::mem::size_of::<BranchRecord>();
        let mut lru = LruCache::new(2 * record_bytes);
        lru.insert(
            (IbsBenchmark::Groff, 100, DEFAULT_SEED_BASE),
            dummy_records(100, 0),
        );
        assert_eq!(lru.map.len(), 0);
        assert_eq!(lru.resident_bytes, 0);
        assert_eq!(lru.evictions, 0, "nothing resident, nothing evicted");
    }

    #[test]
    fn materialize_returns_the_same_allocation() {
        let first = materialize(IbsBenchmark::Verilog, 3_000);
        let second = materialize(IbsBenchmark::Verilog, 3_000);
        assert!(Arc::ptr_eq(&first, &second));
        let other_len = materialize(IbsBenchmark::Verilog, 3_001);
        assert!(!Arc::ptr_eq(&first, &other_len));
    }

    #[test]
    fn seed_is_part_of_the_key() {
        let default = materialize(IbsBenchmark::Groff, 1_500);
        let same = materialize_seeded(IbsBenchmark::Groff, 1_500, DEFAULT_SEED_BASE);
        assert!(
            Arc::ptr_eq(&default, &same),
            "default-seeded lookups share the default entry"
        );
        let reseeded = materialize_seeded(IbsBenchmark::Groff, 1_500, 0x1234);
        assert!(!Arc::ptr_eq(&default, &reseeded));
        assert_ne!(&default[..], &reseeded[..]);
        let fresh: Vec<BranchRecord> = IbsBenchmark::Groff
            .spec_seeded(0x1234)
            .build()
            .take_conditionals(1_500)
            .collect();
        assert_eq!(&reseeded[..], &fresh[..]);
        assert_eq!(
            stream_seeded(IbsBenchmark::Groff, 1_500, 0x1234).count(),
            reseeded.len()
        );
    }

    #[test]
    fn materialized_trace_matches_the_stream() {
        let len = 2_500;
        let cached = materialize(IbsBenchmark::Groff, len);
        let fresh: Vec<BranchRecord> = IbsBenchmark::Groff
            .spec()
            .build()
            .take_conditionals(len)
            .collect();
        assert_eq!(&cached[..], &fresh[..]);
        assert_eq!(
            cached.iter().filter(|r| r.kind.is_conditional()).count(),
            len as usize
        );
    }

    #[test]
    fn repeat_lookups_count_hits() {
        let before = stats();
        let _ = materialize(IbsBenchmark::MpegPlay, 1_234);
        let _ = materialize(IbsBenchmark::MpegPlay, 1_234);
        let after = stats();
        // Other tests in this binary share the counters, so only assert
        // monotonic deltas: at least one hit, at least one lookup stored.
        assert!(after.hits > before.hits);
        assert!(after.misses >= before.misses);
        assert!(after.entries >= 1);
        assert!(after.resident_bytes > 0);
        assert!(after.hit_ratio() > 0.0);
    }

    #[test]
    fn trace_iter_yields_every_record_once() {
        let records = dummy_records(5, 0x100);
        let via_iter: Vec<_> = iter(Arc::clone(&records)).collect();
        assert_eq!(&via_iter[..], &records[..]);
        let mut it = iter(records);
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn columns_are_memoized_per_trace() {
        let first = columns(IbsBenchmark::Nroff, 2_200);
        let second = columns(IbsBenchmark::Nroff, 2_200);
        assert!(Arc::ptr_eq(&first, &second), "one build per cached trace");
        let records = materialize(IbsBenchmark::Nroff, 2_200);
        assert_eq!(first.len(), records.len());
        let rebuilt = TraceColumns::from_records(&records);
        assert_eq!(*first, rebuilt, "view matches a direct build");
        let other_seed = columns_seeded(IbsBenchmark::Nroff, 2_200, 0x9999);
        assert!(!Arc::ptr_eq(&first, &other_seed));
    }

    #[test]
    fn column_bytes_ride_entry_eviction() {
        let record_bytes = std::mem::size_of::<BranchRecord>();
        let mut lru = LruCache::new(40 * record_bytes);
        let a = (IbsBenchmark::Groff, 4, DEFAULT_SEED_BASE);
        let records = dummy_records(4, 0x1000);
        lru.insert(a, Arc::clone(&records));
        let before = lru.resident_bytes;
        let cols = Arc::new(TraceColumns::from_records(&records));
        let attached = lru.attach_columns(&a, Arc::clone(&cols));
        assert!(Arc::ptr_eq(&attached, &cols));
        assert_eq!(lru.resident_bytes, before + cols.heap_bytes());
        // A second attach (the race loser) adopts the resident view.
        let loser = Arc::new(TraceColumns::from_records(&records));
        let adopted = lru.attach_columns(&a, loser);
        assert!(Arc::ptr_eq(&adopted, &cols));
        // Re-served from the entry.
        assert!(lru.get_columns(&a).is_some_and(|c| Arc::ptr_eq(&c, &cols)));
        // Evicting the entry releases records + columns bytes together.
        let big = (IbsBenchmark::Gs, 39, DEFAULT_SEED_BASE);
        lru.insert(big, dummy_records(39, 0x2000));
        assert!(lru.get_columns(&a).is_none(), "entry evicted wholesale");
        assert_eq!(lru.resident_bytes, 39 * record_bytes);
    }

    #[test]
    fn attach_to_missing_entry_returns_uncached() {
        let mut lru = LruCache::new(1024);
        let key = (IbsBenchmark::Verilog, 4, DEFAULT_SEED_BASE);
        let cols = Arc::new(TraceColumns::from_records(&dummy_records(4, 0)));
        let out = lru.attach_columns(&key, Arc::clone(&cols));
        assert!(Arc::ptr_eq(&out, &cols));
        assert_eq!(lru.resident_bytes, 0);
    }

    #[test]
    fn records_and_columns_share_the_cache_entry() {
        let (records, cols) = records_and_columns(IbsBenchmark::Gs, 1_800, DEFAULT_SEED_BASE);
        assert_eq!(cols.len(), records.len());
        let again = materialize(IbsBenchmark::Gs, 1_800);
        assert!(Arc::ptr_eq(&records, &again));
        let cols_again = columns(IbsBenchmark::Gs, 1_800);
        assert!(Arc::ptr_eq(&cols, &cols_again));
        assert_eq!(*cols, TraceColumns::from_records(&records));
    }

    #[test]
    fn stream_is_a_drop_in_take_conditionals() {
        let n = stream(IbsBenchmark::RealGcc, 800)
            .filter(|r| r.kind.is_conditional())
            .count();
        assert_eq!(n, 800);
    }
}
