//! Multiprogrammed trace mixing: interleave several workloads with
//! OS-style time slicing.
//!
//! The paper's introduction motivates aliasing with "large workloads
//! consisting of multiple processes and operating-system code", and its
//! reference list leans on the context-switch studies of Evers et al. and
//! Gloy et al. [`MultiProgram`] reproduces that stress: it round-robins
//! whole workloads (each already containing its own kernel activity)
//! with a configurable time slice, multiplying the predictor-visible
//! working set the way a real multiprogrammed system does.

use crate::record::BranchRecord;
use crate::workload::{Workload, WorkloadSpec};

/// An interleaving of several workloads, scheduled round-robin with a
/// fixed time slice (in records).
///
/// ```
/// use bpred_trace::mix::MultiProgram;
/// use bpred_trace::workload::IbsBenchmark;
///
/// let mixed = MultiProgram::new(
///     vec![IbsBenchmark::Groff.spec(), IbsBenchmark::Gs.spec()],
///     50_000,
/// );
/// let _first_thousand: Vec<_> = mixed.take(1_000).collect();
/// ```
#[derive(Debug, Clone)]
pub struct MultiProgram {
    workloads: Vec<Workload>,
    active: usize,
    slice: u64,
    slice_left: u64,
}

impl MultiProgram {
    /// Interleave the given workload specs with `slice` records per turn.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or `slice` is zero.
    pub fn new(specs: Vec<WorkloadSpec>, slice: u64) -> Self {
        assert!(!specs.is_empty(), "need at least one workload to mix");
        assert!(slice > 0, "time slice must be nonzero");
        MultiProgram {
            workloads: specs.iter().map(WorkloadSpec::build).collect(),
            active: 0,
            slice,
            slice_left: slice,
        }
    }

    /// Number of interleaved workloads.
    pub fn num_workloads(&self) -> usize {
        self.workloads.len()
    }
}

impl Iterator for MultiProgram {
    type Item = BranchRecord;

    fn next(&mut self) -> Option<BranchRecord> {
        let record = self.workloads[self.active].next();
        self.slice_left -= 1;
        if self.slice_left == 0 {
            self.active = (self.active + 1) % self.workloads.len();
            self.slice_left = self.slice;
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;
    use crate::stream::TraceSourceExt;
    use crate::workload::IbsBenchmark;

    fn mixed() -> MultiProgram {
        MultiProgram::new(
            vec![IbsBenchmark::Groff.spec(), IbsBenchmark::Verilog.spec()],
            10_000,
        )
    }

    #[test]
    fn interleaves_both_address_spaces() {
        // The two workloads use the same user base address but different
        // programs; distinguish them by their static pc sets.
        let solo_groff: std::collections::HashSet<u64> = IbsBenchmark::Groff
            .spec()
            .build()
            .take(30_000)
            .map(|r| r.pc)
            .collect();
        let solo_verilog: std::collections::HashSet<u64> = IbsBenchmark::Verilog
            .spec()
            .build()
            .take(30_000)
            .map(|r| r.pc)
            .collect();
        let mixed_pcs: std::collections::HashSet<u64> =
            mixed().take(30_000).map(|r| r.pc).collect();
        assert!(mixed_pcs.intersection(&solo_groff).count() > 100);
        assert!(mixed_pcs.intersection(&solo_verilog).count() > 100);
    }

    #[test]
    fn slices_are_contiguous() {
        // Within one slice, the records match the solo workload stream.
        let solo: Vec<_> = IbsBenchmark::Groff.spec().build().take(10_000).collect();
        let mixed_records: Vec<_> = mixed().take(10_000).collect();
        assert_eq!(solo, mixed_records, "first slice replays workload 0");
    }

    #[test]
    fn mixing_grows_the_static_working_set() {
        let len = 60_000u64;
        let solo = TraceStats::collect(IbsBenchmark::Groff.spec().build().take_conditionals(len));
        let mix = TraceStats::collect(mixed().take_conditionals(len));
        assert!(
            mix.static_conditional > solo.static_conditional,
            "mixed {} <= solo {}",
            mix.static_conditional,
            solo.static_conditional
        );
    }

    #[test]
    fn deterministic() {
        let a: Vec<_> = mixed().take(5_000).collect();
        let b: Vec<_> = mixed().take(5_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one workload")]
    fn empty_mix_panics() {
        let _ = MultiProgram::new(vec![], 100);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_slice_panics() {
        let _ = MultiProgram::new(vec![IbsBenchmark::Groff.spec()], 0);
    }
}
