//! Calibration regression net: the synthetic workloads were tuned against
//! Table 1/2 of the paper (see DESIGN.md §2 and EXPERIMENTS.md). These
//! tests pin the tuned statistics inside generous bands so that future
//! edits to the generator or the presets cannot silently drift the
//! reproduction.
//!
//! Bands are intentionally wide (the goal is catching structural
//! regressions, not freezing noise); measured at 300k conditionals.

use bpred_trace::prelude::*;
use bpred_trace::record::Privilege;

const LEN: u64 = 300_000;

fn stats(bench: IbsBenchmark) -> TraceStats {
    TraceStats::collect(bench.spec().build().take_conditionals(LEN))
}

#[test]
fn static_counts_track_table1_ordering() {
    let counts: Vec<(IbsBenchmark, u64)> = IbsBenchmark::all()
        .into_iter()
        .map(|b| (b, stats(b).static_conditional))
        .collect();
    // real_gcc must be the largest, verilog among the smallest — the
    // Table 1 ordering that drives the capacity-aliasing differences.
    let gcc = counts
        .iter()
        .find(|(b, _)| *b == IbsBenchmark::RealGcc)
        .unwrap()
        .1;
    for &(b, c) in &counts {
        if b != IbsBenchmark::RealGcc {
            assert!(gcc > c, "real_gcc {gcc} should exceed {b} {c}");
        }
    }
    let verilog = counts
        .iter()
        .find(|(b, _)| *b == IbsBenchmark::Verilog)
        .unwrap()
        .1;
    assert!(
        verilog < gcc / 2,
        "verilog {verilog} should be far below real_gcc {gcc}"
    );
}

#[test]
fn taken_ratio_in_integer_code_band() {
    for b in IbsBenchmark::all() {
        let ratio = stats(b).taken_ratio();
        assert!(
            (0.60..0.85).contains(&ratio),
            "{b}: taken ratio {ratio} outside the integer-code band"
        );
    }
}

#[test]
fn kernel_share_matches_ibs_character() {
    for b in IbsBenchmark::all() {
        let ratio = stats(b).kernel_ratio();
        assert!(
            (0.08..0.30).contains(&ratio),
            "{b}: kernel share {ratio} out of band"
        );
    }
}

#[test]
fn conditional_fraction_is_realistic() {
    for b in IbsBenchmark::all() {
        let s = stats(b);
        let frac =
            s.dynamic_conditional as f64 / (s.dynamic_conditional + s.dynamic_unconditional) as f64;
        assert!(
            (0.5..0.8).contains(&frac),
            "{b}: conditional fraction {frac} out of band \
             (real traces carry 25-40% unconditional transfers)"
        );
    }
}

#[test]
fn substream_ratios_within_calibrated_bands() {
    use bpred_aliasing_free::SubstreamProbe;
    for b in IbsBenchmark::all() {
        let probe = SubstreamProbe::measure(b, LEN);
        assert!(
            (2.0..4.5).contains(&probe.h4),
            "{b}: substream ratio h=4 {:.2} drifted (paper 1.8-2.4, calibrated ~2.6-3.6)",
            probe.h4
        );
        assert!(
            (6.0..20.0).contains(&probe.h12),
            "{b}: substream ratio h=12 {:.2} drifted (paper 5.7-12.9, calibrated ~8.5-15.3)",
            probe.h12
        );
        assert!(
            probe.h12 > 2.0 * probe.h4,
            "{b}: h=12 substreams should multiply h=4's ({:.2} vs {:.2})",
            probe.h12,
            probe.h4
        );
    }
}

/// A minimal substream-ratio probe local to this test (the full machinery
/// lives in `bpred-aliasing`, which depends on this crate — no cycles).
mod bpred_aliasing_free {
    use super::*;
    use std::collections::HashSet;

    pub struct SubstreamProbe {
        pub h4: f64,
        pub h12: f64,
    }

    impl SubstreamProbe {
        pub fn measure(bench: IbsBenchmark, len: u64) -> SubstreamProbe {
            let mut hist = 0u64;
            let mut pairs4: HashSet<(u64, u64)> = HashSet::new();
            let mut pairs12: HashSet<(u64, u64)> = HashSet::new();
            let mut addrs: HashSet<u64> = HashSet::new();
            for r in bench.spec().build().take_conditionals(len) {
                if r.kind == BranchKind::Conditional {
                    let a = r.pc >> 2;
                    addrs.insert(a);
                    pairs4.insert((a, hist & 0xF));
                    pairs12.insert((a, hist & 0xFFF));
                }
                hist = (hist << 1) | u64::from(r.taken);
            }
            let n = addrs.len().max(1) as f64;
            SubstreamProbe {
                h4: pairs4.len() as f64 / n,
                h12: pairs12.len() as f64 / n,
            }
        }
    }
}

#[test]
fn kernel_records_form_bursts() {
    // Kernel activity must arrive in multi-record bursts, not as isolated
    // records (it models interrupt/syscall handling).
    let records: Vec<_> = IbsBenchmark::Nroff.spec().build().take(200_000).collect();
    let mut bursts = 0u64;
    let mut kernel_records = 0u64;
    let mut prev_kernel = false;
    for r in &records {
        let is_kernel = r.privilege == Privilege::Kernel;
        if is_kernel {
            kernel_records += 1;
            if !prev_kernel {
                bursts += 1;
            }
        }
        prev_kernel = is_kernel;
    }
    assert!(bursts > 0, "no kernel bursts seen");
    let mean_burst = kernel_records as f64 / bursts as f64;
    assert!(
        mean_burst > 10.0,
        "kernel records should clump into bursts (mean length {mean_burst:.1})"
    );
}

#[test]
fn workloads_differ_pairwise() {
    // Every pair of workloads must produce genuinely different streams —
    // a copy-paste error in the presets would be caught here.
    let firsts: Vec<Vec<BranchRecord>> = IbsBenchmark::all()
        .into_iter()
        .map(|b| b.spec().build().take(2_000).collect())
        .collect();
    for i in 0..firsts.len() {
        for j in (i + 1)..firsts.len() {
            assert_ne!(firsts[i], firsts[j], "workloads {i} and {j} identical");
        }
    }
}
