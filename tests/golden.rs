//! Golden-output tests: the purely analytical experiments are exactly
//! deterministic, so their rendered rows are pinned verbatim. If a change
//! moves these, it changed the model — that must be deliberate.

use gskew::aliasing::batch::ThreeCCell;
use gskew::core::index::IndexFunction;
use gskew::model::curves::destructive_aliasing_curve;
use gskew::model::prob::aliasing_probability;
use gskew::model::skew::{crossover_distance, p_dm, p_sk};
use gskew::sim::experiments::{self, ExperimentOpts};
use gskew::sim::kernel;
use gskew::trace::cache;
use gskew::trace::workload::IbsBenchmark;

#[test]
fn figure9_key_points_are_pinned() {
    // Known closed-form values at b = 1/2:
    // P_dm(p) = p/2; P_sk(p) = (3/4)p^2(1-p) + (1/2)p^3.
    let cases = [
        (0.1, 0.05, 0.00725),
        (0.2, 0.10, 0.02800),
        (0.5, 0.25, 0.15625),
        (1.0, 0.50, 0.50000),
    ];
    for (p, dm, sk) in cases {
        assert!((p_dm(p, 0.5) - dm).abs() < 1e-12, "P_dm({p})");
        assert!((p_sk(p, 0.5) - sk).abs() < 1e-12, "P_sk({p})");
    }
}

#[test]
fn crossover_table_is_pinned() {
    // D*/N = 0.105 at every table size (the paper's "approximately N/10").
    assert_eq!(crossover_distance(3 * 1024), 323);
    assert_eq!(crossover_distance(3 * 4096), 1291);
    assert_eq!(crossover_distance(3 * 16384), 5163);
    assert_eq!(crossover_distance(3 * 65536), 20650);
}

#[test]
fn aliasing_probability_known_values() {
    // 1 - (1 - 1/N)^D at hand-checkable points.
    assert!((aliasing_probability(1, 2) - 0.5).abs() < 1e-12);
    assert!((aliasing_probability(2, 2) - 0.75).abs() < 1e-12);
    assert!((aliasing_probability(1, 4) - 0.25).abs() < 1e-12);
}

#[test]
fn fig9_render_is_stable() {
    let out = experiments::run("fig9", &ExperimentOpts::quick()).expect("fig9 exists");
    let rendered = out.render();
    // Spot-pin header and two rows (full numeric table is checked above).
    assert!(
        rendered.contains("0.050  0.02500        0.00184"),
        "{rendered}"
    );
    assert!(
        rendered.contains("1.000  0.50000        0.50000"),
        "{rendered}"
    );
    assert!(
        rendered.contains("196608             20650        0.105"),
        "{rendered}"
    );
    // Byte-for-byte deterministic.
    let again = experiments::run("fig9", &ExperimentOpts::quick())
        .expect("fig9 exists")
        .render();
    assert_eq!(rendered, again);
}

#[test]
fn fig3_demo_is_pinned() {
    let out = experiments::run("fig3", &ExperimentOpts::quick()).expect("fig3 exists");
    let rendered = out.render();
    assert!(
        rendered.contains("(a=0011, h=0101)  (a=1100, h=1010)  (a=1011, h=1101)"),
        "gshare conflict group changed:\n{rendered}"
    );
    assert!(
        rendered.contains("(a=0011, h=0101)  (a=1011, h=0101)"),
        "gselect conflict group changed:\n{rendered}"
    );
}

#[test]
fn conflict_dominates_past_4k_entries() {
    // The paper's headline shape, pinned on the batched three-C engine at
    // the quick workload lengths: from 4K entries (n = 12) up, capacity
    // aliasing has all but vanished and what remains of the aliasing is
    // conflicts. Pin it two ways on the suite mean at a 4-bit history —
    // conflict strictly dominates capacity at every large size, and the
    // capacity component is monotone nonincreasing in table size (LRU
    // inclusion makes anything else a measurement bug).
    const SIZES_LOG2: std::ops::RangeInclusive<u32> = 12..=18;
    let cells: Vec<ThreeCCell> = SIZES_LOG2
        .map(|n| ThreeCCell {
            entries_log2: n,
            history_bits: 4,
            func: IndexFunction::Gshare,
        })
        .collect();
    let opts = ExperimentOpts::quick();
    let benches = IbsBenchmark::all();
    let mut mean_conflict = vec![0.0; cells.len()];
    let mut mean_capacity = vec![0.0; cells.len()];
    for &bench in benches.iter() {
        let columns = cache::columns(bench, opts.len_for(bench));
        let counts = kernel::run_three_c(&cells, &columns, 2);
        let mut prev_capacity = f64::INFINITY;
        for (i, b) in counts.iter().map(|c| c.breakdown()).enumerate() {
            mean_conflict[i] += b.conflict / benches.len() as f64;
            mean_capacity[i] += b.capacity / benches.len() as f64;
            assert!(
                b.capacity <= prev_capacity,
                "{}: capacity grew with table size at n={}",
                bench.name(),
                12 + i
            );
            prev_capacity = b.capacity;
        }
    }
    for (i, (&conflict, &capacity)) in mean_conflict.iter().zip(&mean_capacity).enumerate() {
        assert!(
            conflict > capacity,
            "n={}: suite-mean conflict {conflict} <= capacity {capacity}",
            12 + i
        );
        assert!(conflict > 0.0, "n={}: conflict vanished entirely", 12 + i);
    }
}

#[test]
fn curve_series_matches_formulas_pointwise() {
    for point in destructive_aliasing_curve(1.0, 41) {
        assert!((point.direct_mapped - p_dm(point.p, 0.5)).abs() < 1e-12);
        assert!((point.skewed - p_sk(point.p, 0.5)).abs() < 1e-12);
    }
}
