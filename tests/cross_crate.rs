//! Cross-crate integration: trace files feed the engine, spec-built
//! predictors behave like directly constructed ones, and the aliasing
//! instruments agree with the predictors they model.

use gskew::core::counter::CounterKind;
use gskew::core::prelude::*;
use gskew::core::spec::parse_spec;
use gskew::sim::engine::{self, NovelPolicy};
use gskew::trace::io::{read_binary, write_binary};
use gskew::trace::prelude::*;

#[test]
fn spec_predictor_equals_direct_construction() {
    let len = 30_000;
    let bench = IbsBenchmark::MpegPlay;
    let mut from_spec = parse_spec("gskew:n=10,h=6").unwrap();
    let mut direct = Gskew::standard(10, 6).unwrap();
    let a = engine::run(&mut from_spec, bench.spec().build().take_conditionals(len));
    let b = engine::run(&mut direct, bench.spec().build().take_conditionals(len));
    assert_eq!(a, b);
}

#[test]
fn replayed_trace_file_gives_identical_results() {
    let len = 20_000;
    let bench = IbsBenchmark::Nroff;
    let records: Vec<BranchRecord> = bench.spec().build().take_conditionals(len).collect();

    let mut buf = Vec::new();
    write_binary(&mut buf, records.iter().copied()).unwrap();
    let replayed = read_binary(buf.as_slice()).unwrap();
    assert_eq!(records, replayed);

    let mut live = Gshare::new(12, 8, CounterKind::TwoBit).unwrap();
    let live_result = engine::run(&mut live, records.into_iter());
    let mut from_file = Gshare::new(12, 8, CounterKind::TwoBit).unwrap();
    let file_result = engine::run(&mut from_file, replayed.into_iter());
    assert_eq!(live_result, file_result);
}

#[test]
fn fa_lru_predictor_matches_tagged_fa_miss_count() {
    // The identity-only FA table in bpred-aliasing and the counter-bearing
    // FA predictor in bpred-core must agree on WHICH references miss.
    use gskew::aliasing::cursor::PairCursor;
    use gskew::aliasing::fully_assoc::TaggedFullyAssociative;

    let len = 20_000;
    let bench = IbsBenchmark::Groff;
    let capacity = 512;

    let mut tagged = TaggedFullyAssociative::new(capacity);
    let mut cursor = PairCursor::new(4);
    for r in bench.spec().build().take_conditionals(len) {
        if r.kind == BranchKind::Conditional {
            tagged.access(cursor.pair(r.pc));
        }
        cursor.advance(&r);
    }

    let mut predictor = FullyAssociative::new(capacity, 4, CounterKind::TwoBit).unwrap();
    let result = engine::run_with(
        &mut predictor,
        bench.spec().build().take_conditionals(len),
        NovelPolicy::Count,
    );
    assert_eq!(
        result.novel,
        tagged.misses(),
        "the predictor's novel count must equal the tagged table's misses"
    );
}

#[test]
fn ideal_predictor_distinct_pairs_match_substream_stats() {
    use gskew::aliasing::substream::SubstreamStats;
    use gskew::core::ideal::Ideal;
    use gskew::core::predictor::{BranchPredictor, Outcome};

    let len = 20_000;
    let bench = IbsBenchmark::Gs;
    let mut ideal = Ideal::new(6, CounterKind::TwoBit).unwrap();
    let mut stats = SubstreamStats::new(6);
    for r in bench.spec().build().take_conditionals(len) {
        if r.kind == BranchKind::Conditional {
            ideal.predict(r.pc);
            ideal.update(r.pc, Outcome::from(r.taken));
        } else {
            ideal.record_unconditional(r.pc);
        }
        stats.observe(&r);
    }
    assert_eq!(ideal.distinct_pairs(), stats.distinct_pairs());
}

#[test]
fn every_spec_family_survives_a_real_workload() {
    let len = 5_000;
    for spec in [
        "bimodal:n=8",
        "gshare:n=8,h=4",
        "gselect:n=8,h=4",
        "gskew:n=8,h=4",
        "gskew:n=8,h=4,banks=5,update=total",
        "egskew:n=8,h=8",
        "ideal:h=4",
        "falru:cap=256,h=4",
        "setassoc:n=6,ways=4,h=4",
        "mcfarling:n=8,h=6",
        "2bcgskew:n=8,h=8",
        "always-taken",
        "always-nottaken",
    ] {
        let mut p = parse_spec(spec).unwrap();
        let r = engine::run(
            &mut p,
            IbsBenchmark::Verilog.spec().build().take_conditionals(len),
        );
        assert_eq!(r.conditional, len, "{spec}");
        assert!(r.mispredict_pct() <= 100.0, "{spec}");
        // Reset really resets: a second run from reset state matches a
        // fresh run.
        p.reset();
        let r2 = engine::run(
            &mut p,
            IbsBenchmark::Verilog.spec().build().take_conditionals(len),
        );
        assert_eq!(r, r2, "{spec}: reset() must restore initial state");
    }
}

#[test]
fn fa_lru_misses_equal_stack_distance_prediction() {
    // Two independent implementations of the same mathematical object:
    // an N-entry LRU table hits exactly when the last-use distance is
    // below N. The FA simulator and the Fenwick stack-distance tracker
    // must therefore agree miss-for-miss.
    use gskew::aliasing::cursor::PairCursor;
    use gskew::aliasing::distance::LastUseDistance;
    use gskew::aliasing::fully_assoc::TaggedFullyAssociative;

    let len = 40_000;
    for capacity in [64usize, 512, 4096] {
        let mut fa = TaggedFullyAssociative::new(capacity);
        let mut distances = LastUseDistance::new();
        let mut cursor = PairCursor::new(4);
        let mut predicted_misses = 0u64;
        for r in IbsBenchmark::Gs.spec().build().take_conditionals(len) {
            if r.kind == BranchKind::Conditional {
                let pair = cursor.pair(r.pc);
                let fa_miss = fa.access(pair);
                let sd_miss = match distances.observe(pair) {
                    None => true, // first use
                    Some(d) => d >= capacity as u64,
                };
                assert_eq!(fa_miss, sd_miss, "divergence at capacity {capacity}");
                predicted_misses += u64::from(sd_miss);
            }
            cursor.advance(&r);
        }
        assert_eq!(fa.misses(), predicted_misses);
    }
}

#[test]
fn predictors_and_substrates_are_send_and_sync() {
    // The parallel experiment runner moves predictors and workloads across
    // threads; regressions here would break every sweep.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Gskew>();
    assert_send_sync::<Gshare>();
    assert_send_sync::<Gselect>();
    assert_send_sync::<Bimodal>();
    assert_send_sync::<Ideal>();
    assert_send_sync::<FullyAssociative>();
    assert_send_sync::<SetAssociative>();
    assert_send_sync::<TwoBcGskew>();
    assert_send_sync::<Agree>();
    assert_send_sync::<BiMode>();
    assert_send_sync::<Pas>();
    assert_send_sync::<SkewedPas>();
    assert_send_sync::<SharedHysteresisGskew>();
    assert_send_sync::<gskew::trace::workload::Workload>();
    assert_send_sync::<gskew::trace::mix::MultiProgram>();
    assert_send_sync::<gskew::aliasing::distance::LastUseDistance>();
    assert_send_sync::<gskew::core::error::ConfigError>();
}

#[test]
fn storage_accounting_is_consistent_across_families() {
    // At the same (n, ctr) point, 3-bank gskew costs exactly 3x a
    // one-bank table; e-gskew costs the same as gskew; 2bc-gskew 4x.
    let one = parse_spec("gshare:n=12,h=8").unwrap().storage_bits();
    let three = parse_spec("gskew:n=12,h=8").unwrap().storage_bits();
    let enhanced = parse_spec("egskew:n=12,h=8").unwrap().storage_bits();
    let four = parse_spec("2bcgskew:n=12,h=8").unwrap().storage_bits();
    assert_eq!(three, 3 * one);
    assert_eq!(enhanced, three);
    assert_eq!(four, 4 * one);
}
