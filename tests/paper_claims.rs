//! End-to-end assertions of the paper's qualitative claims, run on
//! shortened workloads. Absolute numbers differ from the paper (synthetic
//! traces, 1/8 length); these tests pin the *shape*: who wins, and in
//! which direction the knobs move.

use gskew::core::index::IndexFunction;
use gskew::core::spec::parse_spec;
use gskew::sim::engine;
use gskew::trace::prelude::*;

const LEN: u64 = 200_000;

fn pct(spec: &str, bench: IbsBenchmark) -> f64 {
    let mut p = parse_spec(spec).expect("valid spec");
    engine::run(&mut p, bench.spec().build().take_conditionals(LEN)).mispredict_pct()
}

fn mean_pct(spec: &str) -> f64 {
    let sum: f64 = IbsBenchmark::all().iter().map(|&b| pct(spec, b)).sum();
    sum / IbsBenchmark::all().len() as f64
}

/// Section 5.1: "a skewed branch predictor with a partial update policy
/// achieves the same prediction accuracy as a 1-bank predictor, but
/// requires approximately half the storage resources". Two directions:
/// gskew must clearly beat a smaller gshare, and roughly match a gshare
/// of ~2.7x its storage.
#[test]
fn gskew_trades_storage_for_accuracy() {
    // On the synthetic workloads the storage-equivalence factor is ~1.33x
    // rather than the paper's ~2x (our traces keep more capacity pressure
    // at these sizes — see EXPERIMENTS.md); the direction of the tradeoff
    // is what this test pins.
    let gskew = mean_pct("gskew:n=12,h=8"); // 24 Kbit
    let gshare_small = mean_pct("gshare:n=13,h=8"); // 16 Kbit
    let gshare_matched = mean_pct("gshare:n=14,h=8"); // 32 Kbit
    assert!(
        gskew < gshare_small,
        "gskew {gskew:.3} should beat the 2/3-storage gshare {gshare_small:.3}"
    );
    assert!(
        gskew <= gshare_matched + 0.15,
        "gskew {gskew:.3} should match the 1.33x-storage gshare {gshare_matched:.3}"
    );
}

/// Figure 7: 3x4K gskew vs 16K gshare — gskew wins on most benchmarks
/// despite 25% less storage. The comparison point is h=4: the synthetic
/// traces carry more capacity pressure than the IBS traces at these table
/// sizes (see EXPERIMENTS.md), so the crossover where the 16K gshare's
/// extra capacity starts to pay off sits at a shorter history here; at
/// h=4 the conflict-removal effect the figure isolates is cleanly visible
/// on all six benchmarks.
#[test]
fn gskew_wins_most_benchmarks_with_less_storage() {
    let len = 600_000;
    let mut wins = 0;
    let mut losers = Vec::new();
    for bench in IbsBenchmark::all() {
        let gskew = {
            let mut p = parse_spec("gskew:n=12,h=4").expect("valid spec");
            engine::run(&mut p, bench.spec().build().take_conditionals(len)).mispredict_pct()
        };
        let gshare = {
            let mut p = parse_spec("gshare:n=14,h=4").expect("valid spec");
            engine::run(&mut p, bench.spec().build().take_conditionals(len)).mispredict_pct()
        };
        if gskew <= gshare + 0.05 {
            wins += 1;
        } else {
            losers.push(bench.name());
        }
    }
    assert!(
        wins >= 4,
        "gskew won only {wins}/6 benchmarks; lost {losers:?}"
    );
}

/// Section 5.1: partial update consistently outperforms total update.
#[test]
fn partial_update_beats_total_on_average() {
    let partial = mean_pct("gskew:n=10,h=4,update=partial");
    let total = mean_pct("gskew:n=10,h=4,update=total");
    assert!(
        partial <= total + 0.02,
        "partial {partial:.3} should not lose to total {total:.3}"
    );
}

/// Section 5.1: five banks bring "very little benefit" over three.
#[test]
fn five_banks_bring_little_benefit() {
    let three = mean_pct("gskew:n=10,h=4,banks=3");
    let five = mean_pct("gskew:n=10,h=4,banks=5");
    // "Very little benefit": the two must track each other closely in
    // either direction (the extra redundancy may help or hurt slightly).
    assert!(
        (five - three).abs() < 0.6,
        "5 banks should track 3 banks: {five:.3} vs {three:.3}"
    );
}

/// Section 6: e-gskew matches gskew at short histories and beats it at
/// long ones.
#[test]
fn egskew_helps_at_long_history() {
    let short_diff = mean_pct("egskew:n=10,h=3") - mean_pct("gskew:n=10,h=3");
    let long_diff = mean_pct("egskew:n=10,h=14") - mean_pct("gskew:n=10,h=14");
    assert!(
        long_diff <= short_diff + 0.02,
        "e-gskew's edge should grow with history: short diff {short_diff:.3}, \
         long diff {long_diff:.3}"
    );
    assert!(
        long_diff < 0.15,
        "e-gskew should at least match gskew at long history (diff {long_diff:.3})"
    );
}

/// Table 2: 2-bit saturating counters beat 1-bit automatons in the
/// unaliased predictor.
#[test]
fn two_bit_beats_one_bit_in_ideal_table() {
    use gskew::core::counter::CounterKind;
    use gskew::core::ideal::Ideal;
    use gskew::core::predictor::{BranchPredictor, Outcome};

    for bench in [IbsBenchmark::Groff, IbsBenchmark::Verilog] {
        let mut one = Ideal::new(4, CounterKind::OneBit).unwrap();
        let mut two = Ideal::new(4, CounterKind::TwoBit).unwrap();
        let (mut m1, mut m2, mut n) = (0u64, 0u64, 0u64);
        for r in bench.spec().build().take_conditionals(LEN) {
            if r.kind == BranchKind::Conditional {
                n += 1;
                let o = Outcome::from(r.taken);
                let p = one.predict(r.pc);
                if !p.novel && p.outcome != o {
                    m1 += 1;
                }
                one.update(r.pc, o);
                let p = two.predict(r.pc);
                if !p.novel && p.outcome != o {
                    m2 += 1;
                }
                two.update(r.pc, o);
            } else {
                one.record_unconditional(r.pc);
                two.record_unconditional(r.pc);
            }
        }
        assert!(n > 0);
        assert!(m2 < m1, "{bench}: 2-bit {m2} >= 1-bit {m1}");
    }
}

/// Figures 1/2: gselect aliases more than gshare, especially with long
/// histories (it retains very few address bits).
#[test]
fn gselect_aliases_more_than_gshare_at_long_history() {
    use gskew::aliasing::three_c::ThreeCClassifier;
    let records: Vec<_> = IbsBenchmark::RealGcc
        .spec()
        .build()
        .take_conditionals(LEN)
        .collect();
    let gshare = ThreeCClassifier::new(12, 12, IndexFunction::Gshare).run(records.iter().copied());
    let gselect =
        ThreeCClassifier::new(12, 12, IndexFunction::Gselect).run(records.iter().copied());
    assert!(
        gselect.total > gshare.total,
        "gselect {} <= gshare {}",
        gselect.total,
        gshare.total
    );
}

/// Figure 8: a 3xN gskew with partial update is approximately as good as
/// an N-entry fully-associative LRU predictor.
#[test]
fn gskew_rivals_fully_associative_lru() {
    let mut within = 0;
    for bench in IbsBenchmark::all() {
        let gskew = pct("gskew:n=10,h=4,update=partial", bench);
        let falru = pct("falru:cap=1024,h=4", bench);
        if gskew <= falru + 1.0 {
            within += 1;
        }
    }
    assert!(
        within >= 4,
        "gskew tracked the FA-LRU table on only {within}/6 benchmarks"
    );
}

/// The headline comparison with statistical teeth: at equal total entries
/// (3x4K gskew vs 4K+8K... use 16K gshare with MORE storage as handicap),
/// the per-branch paired McNemar test must be significant where the mean
/// comparison claims a winner.
#[test]
fn gskew_win_is_statistically_significant() {
    use gskew::sim::duel::duel;
    use gskew::sim::engine::NovelPolicy;
    // nroff is a consistent gskew win (see ext-seeds); verify the win is
    // not noise: pair gskew 3x4K against the same-storage-class 8K gshare.
    let mut gshare = parse_spec("gshare:n=13,h=6").expect("valid spec");
    let mut gskew = parse_spec("gskew:n=12,h=6").expect("valid spec");
    let result = duel(
        &mut gshare,
        &mut gskew,
        IbsBenchmark::Nroff
            .spec()
            .build()
            .take_conditionals(400_000),
        NovelPolicy::Count,
    );
    assert!(
        result.b_significantly_better(),
        "gskew should beat the 2/3-storage gshare decisively: z = {:.2}, \
         A = {:.3}%, B = {:.3}%",
        result.mcnemar_z(),
        result.a_pct(),
        result.b_pct()
    );
}

/// Bigger tables help gshare long after gskew has flattened (section 5.1:
/// "very little benefit in using more than 3x4K entries" at h=4).
#[test]
fn tables_grow_monotonically_better_on_average() {
    let small = mean_pct("gshare:n=8,h=4");
    let mid = mean_pct("gshare:n=12,h=4");
    let large = mean_pct("gshare:n=16,h=4");
    assert!(mid < small, "mid {mid:.3} !< small {small:.3}");
    assert!(large <= mid + 0.02, "large {large:.3} !<= mid {mid:.3}");
    let gskew_mid = mean_pct("gskew:n=12,h=4");
    let gskew_large = mean_pct("gskew:n=14,h=4");
    assert!(
        gskew_mid - gskew_large < mid - large + 0.5,
        "gskew should flatten at least as early as gshare"
    );
}
