//! The batched engine contract: `engine::run_many` over a materialized
//! trace must be bit-identical to running each predictor alone with
//! `engine::run_with` — for every predictor family and both novel-branch
//! accounting policies — and the trace cache must hand out the same
//! allocation for repeated materializations of the same key.

use gskew::core::spec::parse_spec;
use gskew::sim::engine::{self, NovelPolicy};
use gskew::trace::cache;
use gskew::trace::prelude::*;

/// One spec per predictor family the spec language exposes.
const FAMILY_SPECS: &[&str] = &[
    "gshare:n=8,h=4",
    "gselect:n=8,h=4",
    "bimodal:n=8",
    "gskew:n=8,h=4",
    "egskew:n=8,h=8",
    "mcfarling:n=8,h=6",
    "agree:n=13,h=8,bias=12",
    "bimode:n=12,h=8,choice=12",
];

fn assert_batch_matches_sequential(specs: &[&str], policy: NovelPolicy) {
    let bench = IbsBenchmark::Verilog;
    let len = 25_000;
    let trace = cache::materialize(bench, len);

    let mut batch: Vec<_> = specs.iter().map(|s| parse_spec(s).unwrap()).collect();
    let batched = engine::run_many(&mut batch, &trace, policy);

    for (spec, got) in specs.iter().zip(batched) {
        let mut alone = parse_spec(spec).unwrap();
        let want = engine::run_with(&mut alone, cache::iter(trace.clone()), policy);
        assert_eq!(got, want, "run_many diverged from run_with for {spec}");
    }
}

#[test]
fn run_many_matches_run_with_for_every_family() {
    assert_batch_matches_sequential(FAMILY_SPECS, NovelPolicy::Count);
}

#[test]
fn run_many_matches_run_with_under_exclude_policy() {
    // `ideal` and `falru` report novel branches, so Exclude actually
    // changes their accounting; the aliased families must agree too.
    let specs = ["ideal:h=6", "falru:cap=256,h=4", "gskew:n=8,h=4"];
    assert_batch_matches_sequential(&specs, NovelPolicy::Exclude);
}

#[test]
fn cache_returns_the_same_allocation_per_key() {
    let bench = IbsBenchmark::Groff;
    let len = 12_000;
    let a = cache::materialize(bench, len);
    let b = cache::materialize(bench, len);
    assert!(
        std::sync::Arc::ptr_eq(&a, &b),
        "two materializations of one (benchmark, len) key must share storage"
    );
    // Different keys must not share.
    let c = cache::materialize(bench, len + 1);
    assert!(!std::sync::Arc::ptr_eq(&a, &c));
}
