//! Property-based tests (proptest) over the core data structures and
//! invariants, spanning crates.

use gskew::aliasing::distance::LastUseDistance;
use gskew::core::counter::{CounterKind, SatCounter};
use gskew::core::history::GlobalHistory;
use gskew::core::index::IndexFunction;
use gskew::core::predictor::Outcome;
use gskew::core::skew::{h, h_inv, skew_index};
use gskew::core::vector::InfoVector;
use gskew::trace::io::{read_binary, read_text, write_binary, write_text};
use gskew::trace::record::{BranchKind, BranchRecord, Privilege};
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (
        0u64..=0x000F_FFFF_FFFF,
        prop_oneof![
            Just(BranchKind::Conditional),
            Just(BranchKind::Unconditional),
            Just(BranchKind::Call),
            Just(BranchKind::Return),
        ],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(pc, kind, taken, kernel)| BranchRecord {
            pc,
            kind,
            taken: if kind == BranchKind::Conditional {
                taken
            } else {
                true
            },
            privilege: if kernel {
                Privilege::Kernel
            } else {
                Privilege::User
            },
        })
}

proptest! {
    /// `H` is a bijection on every width: `H⁻¹(H(x)) = x`.
    #[test]
    fn h_roundtrips(n in 2u32..=30, x in any::<u64>()) {
        let x = x & ((1u64 << n) - 1);
        prop_assert_eq!(h_inv(h(x, n), n), x);
        prop_assert_eq!(h(h_inv(x, n), n), x);
    }

    /// Every skewing function stays within the bank.
    #[test]
    fn skew_index_in_range(bank in 0usize..5, n in 2u32..=30, v in any::<u64>()) {
        let v = if 2 * n >= 64 { v } else { v & ((1u64 << (2 * n)) - 1) };
        prop_assert!(skew_index(bank, v, n) < (1u64 << n));
    }

    /// The paper's dispersion property for f0..f2: two vectors colliding
    /// in one bank collide in another only when n % 3 == 2, and then only
    /// on a 2-dimensional kernel — for random vector pairs, effectively
    /// never.
    #[test]
    fn paper_banks_rarely_double_collide(
        n in 6u32..=16,
        v in any::<u64>(),
        w in any::<u64>(),
    ) {
        let mask = (1u64 << (2 * n)) - 1;
        let (v, w) = (v & mask, w & mask);
        prop_assume!(v != w);
        let collisions = (0..3)
            .filter(|&b| skew_index(b, v, n) == skew_index(b, w, n))
            .count();
        // Random pairs double-collide with probability ~2^(2-2n); with
        // 4096 cases and n >= 6 the chance of a false failure is ~1e-3
        // per full proptest run at the default case count — accept a
        // double collision only on the known-degenerate widths.
        if collisions >= 2 {
            prop_assert_eq!(n % 3, 2, "unexpected double collision at n={}", n);
        }
    }

    /// Saturating counters never leave their legal range and always
    /// predict the direction of saturation.
    #[test]
    fn counters_saturate(bits in 1u8..=7, outcomes in proptest::collection::vec(any::<bool>(), 0..200)) {
        let kind = CounterKind::from_bits(bits).unwrap();
        let mut c = SatCounter::new(kind);
        for taken in outcomes {
            c.train(Outcome::from(taken));
            prop_assert!(c.value() <= kind.max_value());
        }
        for _ in 0..(1 << bits) {
            c.train(Outcome::Taken);
        }
        prop_assert_eq!(c.predict(), Outcome::Taken);
        prop_assert!(c.is_strong());
    }

    /// The history register equals a reference bit-vector model.
    #[test]
    fn history_matches_reference(len in 0u32..=64, pushes in proptest::collection::vec(any::<bool>(), 0..100)) {
        let mut reg = GlobalHistory::new(len);
        let mut reference: Vec<bool> = Vec::new();
        for taken in pushes {
            reg.push(Outcome::from(taken));
            reference.push(taken);
        }
        let mut expected = 0u64;
        for &taken in reference.iter().rev().take(len as usize).rev() {
            expected = (expected << 1) | u64::from(taken);
        }
        prop_assert_eq!(reg.value(), expected);
    }

    /// All index functions stay in range for arbitrary vectors.
    #[test]
    fn index_functions_in_range(
        pc in any::<u64>(),
        hist in any::<u64>(),
        k in 0u32..=24,
        n in 1u32..=30,
    ) {
        let v = InfoVector::new(pc, hist, k);
        for f in [IndexFunction::Bimodal, IndexFunction::Gshare, IndexFunction::Gselect] {
            prop_assert!(f.index(&v, n) < (1u64 << n));
        }
    }

    /// Last-use distance agrees with the O(n²) definition on arbitrary
    /// reference streams.
    #[test]
    fn stack_distance_matches_naive(
        refs in proptest::collection::vec((0u64..24, 0u64..4), 0..400)
    ) {
        let mut fast = LastUseDistance::new();
        for (i, &pair) in refs.iter().enumerate() {
            let naive = refs[..i].iter().rposition(|&q| q == pair).map(|j| {
                refs[j + 1..i].iter().collect::<std::collections::HashSet<_>>().len() as u64
            });
            prop_assert_eq!(fast.observe(pair), naive, "at reference {}", i);
        }
    }

    /// Binary trace serialization round-trips arbitrary records.
    #[test]
    fn binary_trace_roundtrip(records in proptest::collection::vec(arb_record(), 0..200)) {
        let mut buf = Vec::new();
        write_binary(&mut buf, records.iter().copied()).unwrap();
        prop_assert_eq!(read_binary(buf.as_slice()).unwrap(), records);
    }

    /// Text trace serialization round-trips arbitrary records.
    #[test]
    fn text_trace_roundtrip(records in proptest::collection::vec(arb_record(), 0..100)) {
        let mut buf = Vec::new();
        write_text(&mut buf, records.iter().copied()).unwrap();
        prop_assert_eq!(read_text(buf.as_slice()).unwrap(), records);
    }

    /// Compact (BPT2) trace serialization round-trips arbitrary records.
    #[test]
    fn compact_trace_roundtrip(records in proptest::collection::vec(arb_record(), 0..200)) {
        use gskew::trace::io2::{read_compact, write_compact};
        let mut buf = Vec::new();
        write_compact(&mut buf, records.iter().copied()).unwrap();
        prop_assert_eq!(read_compact(buf.as_slice()).unwrap(), records);
    }

    /// The spec parser never panics, whatever garbage it receives.
    #[test]
    fn spec_parser_never_panics(input in "[a-z0-9:,=\\-{}]{0,40}") {
        let _ = gskew::core::spec::parse_spec(&input);
    }

    /// Valid gskew specs always parse and build at legal sizes.
    #[test]
    fn valid_gskew_specs_parse(n in 2u32..=16, h in 0u32..=16) {
        let spec = format!("gskew:n={n},h={h}");
        let p = gskew::core::spec::parse_spec(&spec).expect("legal spec");
        assert_eq!(p.storage_bits(), 3 * 2 * (1u64 << n));
    }

    /// The majority vote of a gskew predictor equals the majority of its
    /// exposed per-bank votes, whatever state training has left behind.
    #[test]
    fn gskew_prediction_is_vote_majority(
        seed in any::<u64>(),
        pcs in proptest::collection::vec(0u64..0x4000, 1..100),
    ) {
        use gskew::core::prelude::*;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut p = Gskew::builder()
            .bank_entries_log2(6)
            .history_bits(4)
            .build()
            .unwrap();
        for &pc in &pcs {
            let outcome = Outcome::from(rng.gen_bool(0.5));
            let votes = p.votes(pc);
            let taken = votes.iter().filter(|o| o.is_taken()).count();
            let expected = Outcome::from(2 * taken > votes.len());
            prop_assert_eq!(p.predict(pc).outcome, expected);
            p.update(pc, outcome);
        }
    }
}
