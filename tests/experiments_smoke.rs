//! Smoke-run every registered experiment in quick mode and validate the
//! structure of its output: tables exist, rows are populated, and the
//! numeric cells parse as finite percentages.

use gskew::sim::experiments::{self, ExperimentOpts, ALL_IDS};

fn tiny_opts() -> ExperimentOpts {
    ExperimentOpts {
        len_override: Some(8_000),
        quick: true,
        ..ExperimentOpts::default()
    }
}

#[test]
fn every_experiment_runs_and_renders() {
    let opts = tiny_opts();
    for &id in ALL_IDS {
        let output =
            experiments::run(id, &opts).unwrap_or_else(|| panic!("experiment {id} missing"));
        assert_eq!(output.id, id);
        assert!(!output.tables.is_empty(), "{id}: no tables");
        for table in &output.tables {
            assert!(
                !table.rows().is_empty(),
                "{id}: empty table {}",
                table.title()
            );
            assert!(table.columns().len() >= 2, "{id}: degenerate table");
        }
        let rendered = output.render();
        assert!(rendered.contains(id), "{id}: render lacks id header");
    }
}

#[test]
fn numeric_cells_are_finite_percentages() {
    let opts = tiny_opts();
    // The benchmark-sweep experiments: every non-label cell must be a
    // finite number in [0, 100].
    for id in ["fig5", "fig7", "fig8", "fig12", "ablation-update"] {
        let output = experiments::run(id, &opts).unwrap();
        for table in &output.tables {
            for row in table.rows() {
                for cell in &row[1..] {
                    let v: f64 = cell
                        .parse()
                        .unwrap_or_else(|_| panic!("{id}: non-numeric cell `{cell}`"));
                    assert!(
                        v.is_finite() && (0.0..=100.0).contains(&v),
                        "{id}: out-of-range cell {v}"
                    );
                }
            }
        }
    }
}

#[test]
fn csv_rendering_is_parseable() {
    let output = experiments::run("table1", &tiny_opts()).unwrap();
    let csv = output.tables[0].to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 7, "header + six benchmarks");
    let header_fields = lines[0].split(',').count();
    for line in &lines[1..] {
        assert_eq!(line.split(',').count(), header_fields, "ragged CSV: {line}");
    }
}

#[test]
fn experiment_output_is_deterministic() {
    let opts = tiny_opts();
    let a = experiments::run("fig3", &opts).unwrap().render();
    let b = experiments::run("fig3", &opts).unwrap().render();
    assert_eq!(a, b);
    let a = experiments::run("table2", &opts).unwrap().render();
    let b = experiments::run("table2", &opts).unwrap().render();
    assert_eq!(a, b);
}
