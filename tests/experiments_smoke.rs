//! Smoke-run every registered experiment in quick mode and validate the
//! structure of its output: tables exist, rows are populated, and the
//! numeric cells parse as finite percentages. Also exercises the resume
//! layer end to end: a warm rerun of the three-C sweep must simulate
//! nothing and render byte-identical tables.

use gskew::results::store::ResultsStore;
use gskew::sim::experiments::{self, ExperimentOpts, ALL_IDS};
use gskew::sim::resume;
use std::sync::Mutex;

/// The resume context is process-global, so the test that attaches a
/// results store must not overlap with any other experiment run in this
/// binary — every test serializes on this lock.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn tiny_opts() -> ExperimentOpts {
    ExperimentOpts {
        len_override: Some(8_000),
        quick: true,
        ..ExperimentOpts::default()
    }
}

#[test]
fn every_experiment_runs_and_renders() {
    let _guard = lock();
    let opts = tiny_opts();
    for &id in ALL_IDS {
        let output =
            experiments::run(id, &opts).unwrap_or_else(|| panic!("experiment {id} missing"));
        assert_eq!(output.id, id);
        assert!(!output.tables.is_empty(), "{id}: no tables");
        for table in &output.tables {
            assert!(
                !table.rows().is_empty(),
                "{id}: empty table {}",
                table.title()
            );
            assert!(table.columns().len() >= 2, "{id}: degenerate table");
        }
        let rendered = output.render();
        assert!(rendered.contains(id), "{id}: render lacks id header");
    }
}

#[test]
fn numeric_cells_are_finite_percentages() {
    let _guard = lock();
    let opts = tiny_opts();
    // The benchmark-sweep experiments: every non-label cell must be a
    // finite number in [0, 100].
    for id in ["fig5", "fig7", "fig8", "fig12", "ablation-update"] {
        let output = experiments::run(id, &opts).unwrap();
        for table in &output.tables {
            for row in table.rows() {
                for cell in &row[1..] {
                    let v: f64 = cell
                        .parse()
                        .unwrap_or_else(|_| panic!("{id}: non-numeric cell `{cell}`"));
                    assert!(
                        v.is_finite() && (0.0..=100.0).contains(&v),
                        "{id}: out-of-range cell {v}"
                    );
                }
            }
        }
    }
}

#[test]
fn csv_rendering_is_parseable() {
    let _guard = lock();
    let output = experiments::run("table1", &tiny_opts()).unwrap();
    let csv = output.tables[0].to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 7, "header + six benchmarks");
    let header_fields = lines[0].split(',').count();
    for line in &lines[1..] {
        assert_eq!(line.split(',').count(), header_fields, "ragged CSV: {line}");
    }
}

#[test]
fn experiment_output_is_deterministic() {
    let _guard = lock();
    let opts = tiny_opts();
    let a = experiments::run("fig3", &opts).unwrap().render();
    let b = experiments::run("fig3", &opts).unwrap().render();
    assert_eq!(a, b);
    let a = experiments::run("table2", &opts).unwrap().render();
    let b = experiments::run("table2", &opts).unwrap().render();
    assert_eq!(a, b);
}

#[test]
fn three_c_resumes_with_zero_simulations_and_identical_tables() {
    let _guard = lock();
    let dir = std::env::temp_dir().join(format!("gskew-3c-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = tiny_opts();

    // Cold run: everything simulates and every cell lands in the store.
    resume::configure(
        ResultsStore::open(dir.to_str().unwrap()).unwrap(),
        true,
        true,
    );
    let before = resume::stats();
    let cold = experiments::run("three-c", &opts).unwrap().render();
    let after_cold = resume::stats();
    resume::deconfigure();
    let cold_simulated = after_cold.cells_simulated - before.cells_simulated;
    assert!(cold_simulated > 0, "cold run simulated nothing");
    assert!(
        after_cold.records_saved > before.records_saved,
        "cold run saved nothing"
    );

    // Warm run against the same store: every cell must be served from
    // disk — zero simulations — and the rendered tables must be
    // byte-identical to the cold run's.
    resume::configure(
        ResultsStore::open(dir.to_str().unwrap()).unwrap(),
        true,
        true,
    );
    let warm = experiments::run("three-c", &opts).unwrap().render();
    let after_warm = resume::stats();
    resume::deconfigure();
    assert_eq!(
        after_warm.cells_simulated, after_cold.cells_simulated,
        "warm three-C run re-simulated cells"
    );
    assert!(
        after_warm.cells_skipped > after_cold.cells_skipped,
        "warm run served nothing from the store"
    );
    assert_eq!(cold, warm, "warm render differs from cold render");

    let _ = std::fs::remove_dir_all(&dir);
}
