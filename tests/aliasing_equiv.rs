//! Differential tests for the batched three-C engine: on arbitrary
//! workloads and arbitrary `(size, history, index-fn)` grids, the
//! single-pass batched classification must produce counts bit-identical
//! to the per-configuration `ThreeCClassifier` walking the same records —
//! including the signed-conflict edge where LRU loses to direct mapping.

use gskew::aliasing::batch::ThreeCCell;
use gskew::aliasing::three_c::ThreeCClassifier;
use gskew::core::index::IndexFunction;
use gskew::sim::kernel;
use gskew::trace::record::{BranchKind, BranchRecord, Privilege};
use gskew::trace::soa::TraceColumns;
use proptest::prelude::*;

/// Branches drawn from a small pc pool so tiny tables actually alias,
/// with a sprinkle of unconditional branches (they advance history but
/// are never classified).
fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (0u64..24, any::<bool>(), 0u8..8).prop_map(|(slot, taken, kind)| BranchRecord {
        pc: 0x1000 + slot * 4,
        kind: if kind == 0 {
            BranchKind::Unconditional
        } else {
            BranchKind::Conditional
        },
        taken: if kind == 0 { true } else { taken },
        privilege: Privilege::User,
    })
}

fn arb_cell() -> impl Strategy<Value = ThreeCCell> {
    (1u32..=8, 0u32..=16, any::<bool>()).prop_map(|(entries_log2, history_bits, gshare)| {
        ThreeCCell {
            entries_log2,
            history_bits,
            func: if gshare {
                IndexFunction::Gshare
            } else {
                IndexFunction::Gselect
            },
        }
    })
}

fn classify_per_config(
    cell: &ThreeCCell,
    records: &[BranchRecord],
) -> gskew::aliasing::three_c::ThreeCCounts {
    ThreeCClassifier::new(cell.entries_log2, cell.history_bits, cell.func)
        .run_counts(records.iter().copied())
}

proptest! {
    /// The tentpole contract: for any workload and any grid, every
    /// batched cell equals the per-config classifier — in raw integer
    /// counts and in every derived float, bit for bit — regardless of
    /// worker-thread count.
    #[test]
    fn batched_grid_matches_per_config_classifier(
        records in proptest::collection::vec(arb_record(), 0..300),
        cells in proptest::collection::vec(arb_cell(), 1..6),
        threads in 1usize..=4,
    ) {
        let columns = TraceColumns::from_records(&records);
        let batched = kernel::run_three_c(&cells, &columns, threads);
        prop_assert_eq!(batched.len(), cells.len());
        for (cell, got) in cells.iter().zip(&batched) {
            let want = classify_per_config(cell, &records);
            prop_assert_eq!(*got, want, "counts diverge for {:?}", cell);
            let (gb, wb) = (got.breakdown(), want.breakdown());
            prop_assert_eq!(gb.total.to_bits(), wb.total.to_bits(), "{:?}", cell);
            prop_assert_eq!(gb.compulsory.to_bits(), wb.compulsory.to_bits(), "{:?}", cell);
            prop_assert_eq!(gb.capacity.to_bits(), wb.capacity.to_bits(), "{:?}", cell);
            prop_assert_eq!(gb.conflict.to_bits(), wb.conflict.to_bits(), "{:?}", cell);
            prop_assert_eq!(
                gb.fully_associative.to_bits(),
                wb.fully_associative.to_bits(),
                "{:?}",
                cell
            );
        }
    }

    /// Duplicate cells in one grid are legal (the resume layer can ask
    /// twice) and must all come back with the same answer.
    #[test]
    fn duplicate_cells_agree(
        records in proptest::collection::vec(arb_record(), 0..200),
        cell in arb_cell(),
    ) {
        let columns = TraceColumns::from_records(&records);
        let cells = [cell, cell, cell];
        let batched = kernel::run_three_c(&cells, &columns, 2);
        prop_assert_eq!(batched[0], batched[1]);
        prop_assert_eq!(batched[1], batched[2]);
        prop_assert_eq!(batched[0], classify_per_config(&cell, &records));
    }
}

/// A crafted signed-conflict workload: five addresses cycled through a
/// four-entry table. Direct mapping pins three of them in private
/// entries and only thrashes the fourth, while four-entry LRU sees a
/// cyclic working set of five and misses every single access — so
/// conflict = total − FA is strongly negative, and both engines must
/// agree on it exactly.
#[test]
fn signed_conflict_edge_case_is_preserved() {
    let records: Vec<BranchRecord> = (0..200)
        .map(|i| BranchRecord {
            pc: (i % 5) * 4,
            kind: BranchKind::Conditional,
            taken: true,
            privilege: Privilege::User,
        })
        .collect();
    let cell = ThreeCCell {
        entries_log2: 2,
        history_bits: 0,
        func: IndexFunction::Gshare,
    };
    let columns = TraceColumns::from_records(&records);
    let batched = kernel::run_three_c(&[cell], &columns, 1)[0];
    let reference = classify_per_config(&cell, &records);
    assert_eq!(batched, reference);
    // LRU misses everything; DM only thrashes the entry shared by
    // addresses 0 and 4.
    assert_eq!(batched.references, 200);
    assert_eq!(batched.fa_misses, 200);
    assert!(batched.dm_misses < batched.fa_misses);
    let b = batched.breakdown();
    assert!(
        b.conflict < -0.2,
        "expected strongly negative conflict, got {}",
        b.conflict
    );
    // The components are constructed to telescope back to the total; a
    // signed conflict is exactly what keeps the identity intact here.
    let sum = b.compulsory + b.capacity + b.conflict;
    assert!((sum - b.total).abs() < 1e-12, "{sum} vs {}", b.total);
}
