//! End-to-end claims for the extensions: the future-work features of
//! section 7 realized, and the aliasing-taxonomy measurements.

use gskew::aliasing::nature::AliasingNature;
use gskew::core::counter::CounterKind;
use gskew::core::index::IndexFunction;
use gskew::core::spec::parse_spec;
use gskew::model::skew::{p_dm, p_sk_general};
use gskew::sim::engine;
use gskew::trace::mix::MultiProgram;
use gskew::trace::prelude::*;

const LEN: u64 = 200_000;

fn pct(spec: &str, bench: IbsBenchmark) -> f64 {
    let mut p = parse_spec(spec).expect("valid spec");
    engine::run(&mut p, bench.spec().build().take_conditionals(LEN)).mispredict_pct()
}

fn mean_pct(spec: &str) -> f64 {
    IbsBenchmark::all()
        .iter()
        .map(|&b| pct(spec, b))
        .sum::<f64>()
        / 6.0
}

/// Figure 12's storage claim: 3x4K e-gskew performs like a 32K gshare at
/// long history lengths, with less than half the storage.
#[test]
fn egskew_rivals_double_storage_gshare_at_long_history() {
    let egskew = mean_pct("egskew:n=12,h=12"); // 24.6 Kbit
    let gshare = mean_pct("gshare:n=15,h=12"); // 65.5 Kbit
    assert!(
        egskew <= gshare + 0.5,
        "e-gskew {egskew:.3} should rival the 2.7x-storage gshare {gshare:.3}"
    );
}

/// Destructive aliasing must dominate constructive on every workload —
/// the Young/Gloy/Smith result the paper cites, and the reason the
/// figure 11 model errs on the high side.
#[test]
fn destructive_dominates_constructive_everywhere() {
    for bench in IbsBenchmark::all() {
        let counts = AliasingNature::new(10, 8, IndexFunction::Gshare, CounterKind::TwoBit)
            .run(bench.spec().build().take_conditionals(100_000));
        assert!(counts.aliased() > 0, "{bench}: no aliasing measured");
        assert!(
            counts.destructive > 2 * counts.constructive,
            "{bench}: destructive {} vs constructive {}",
            counts.destructive,
            counts.constructive
        );
        assert!(counts.net_overhead() > 0.0, "{bench}");
    }
}

/// The identical-indexing ablation: removing the distinct functions must
/// cost accuracy on every benchmark (the voting redundancy alone is
/// worthless).
#[test]
fn inter_bank_dispersion_is_the_point() {
    for bench in IbsBenchmark::all() {
        let skewed = pct("gskew:n=10,h=4", bench);
        let same = pct("gskew:n=10,h=4,skew=off", bench);
        assert!(
            skewed < same,
            "{bench}: skewed {skewed:.3} should beat same-index {same:.3}"
        );
    }
}

/// The shared-hysteresis encoding keeps accuracy close to the full 2-bit
/// structure at 75 % of the storage — the affirmative answer to
/// section 7's "distributed encodings" question.
#[test]
fn shared_hysteresis_accuracy_close_to_full_encoding() {
    let full = mean_pct("gskew:n=12,h=6");
    let shared = mean_pct("shgskew:n=12,h=6");
    assert!(
        shared <= full + 0.4,
        "shared-hysteresis {shared:.3} too far from full {full:.3}"
    );
    // And it must clearly beat spending the same area on a smaller full
    // structure is NOT guaranteed (the paper's open question) — only
    // check that it doesn't collapse.
    let small = mean_pct("gskew:n=11,h=6");
    assert!(
        shared <= small + 0.4,
        "shared-hysteresis {shared:.3} should be competitive with the 2/3-size full {small:.3}"
    );
}

/// A *negative* result worth pinning: transplanting skewing to local
/// histories (section 7's suggestion) LOSES on these workloads. PAs-style
/// concatenated indexing shares pattern entries between branches with the
/// same local history — and that sharing is largely *constructive*
/// (branches with the same loop pattern want the same prediction), so
/// dispersing it across banks throws the benefit away. Skewing pays off
/// when aliasing is destructive (global history), not when it is
/// constructive.
#[test]
fn skewing_local_histories_forfeits_constructive_aliasing() {
    let mut pas_wins = 0;
    for bench in IbsBenchmark::all() {
        let spas = pct("spas:bht=10,l=8,n=12", bench); // 3x4K pattern entries
        let pas = pct("pas:bht=10,l=8,n=13", bench); // 8K entries, 2/3 the bits
        if pas < spas {
            pas_wins += 1;
        }
    }
    assert!(
        pas_wins >= 4,
        "expected plain PAs to win on most benchmarks, won {pas_wins}/6"
    );
}

/// Multiprogramming degrades every predictor, and by more than trivial
/// noise for the global-history designs.
#[test]
fn multiprogramming_degrades_prediction() {
    let mix = [IbsBenchmark::Groff, IbsBenchmark::Gs, IbsBenchmark::Verilog];
    for spec in ["gshare:n=13,h=8", "gskew:n=11,h=8"] {
        let solo = mix.iter().map(|&b| pct(spec, b)).sum::<f64>() / 3.0;
        let mut predictor = parse_spec(spec).expect("valid spec");
        let mixed_stream = MultiProgram::new(mix.iter().map(|b| b.spec()).collect(), 20_000)
            .take_conditionals(LEN);
        let mixed = engine::run(&mut predictor, mixed_stream).mispredict_pct();
        assert!(
            mixed > solo + 0.2,
            "{spec}: mixed {mixed:.3} should exceed solo mean {solo:.3}"
        );
    }
}

/// The generalized analytical formula stays a probability and preserves
/// the polynomial-vs-linear relationship at every bias.
#[test]
fn general_model_bounds_and_ordering() {
    for m in [1u32, 3, 5] {
        for p in [0.0, 0.1, 0.5, 0.9, 1.0] {
            for b in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let v = p_sk_general(p, b, m);
                assert!((0.0..=1.0).contains(&v), "m={m} p={p} b={b}: {v}");
            }
        }
    }
    for p in [0.05, 0.2, 0.5, 0.8] {
        for b in [0.3, 0.5, 0.7] {
            assert!(
                p_sk_general(p, b, 3) <= p_dm(p, b) + 1e-12,
                "3-bank should not exceed 1-bank at equal p (p={p}, b={b})"
            );
        }
    }
}

/// Agree and bi-mode genuinely reduce misprediction relative to a plain
/// gshare of the same counter budget on at least half the benchmarks
/// (they were published for a reason).
#[test]
fn antialias_designs_competitive_with_plain_gshare() {
    let mut agree_ok = 0;
    let mut bimode_ok = 0;
    for bench in IbsBenchmark::all() {
        let gshare = pct("gshare:n=13,h=6", bench); // 16.4 Kbit
        if pct("agree:n=13,h=6,bias=12", bench) <= gshare + 0.6 {
            agree_ok += 1;
        }
        if pct("bimode:n=12,h=6,choice=12", bench) <= gshare + 0.6 {
            bimode_ok += 1;
        }
    }
    assert!(agree_ok >= 3, "agree competitive on only {agree_ok}/6");
    assert!(bimode_ok >= 3, "bimode competitive on only {bimode_ok}/6");
}
