//! Figure 3 and figure 4, interactively: show that *which* pairs conflict
//! depends on the mapping function, and that the skewing functions
//! disperse the conflicts of either single mapping.
//!
//! ```text
//! cargo run --example mapping_conflicts
//! ```

use gskew::core::index::IndexFunction;
use gskew::core::skew::skew_index;
use gskew::core::vector::InfoVector;

fn main() {
    let n = 4; // 16-entry tables, as in the paper's figure 3

    // A handful of (address, history) pairs, 4-bit each.
    let pairs: Vec<InfoVector> = [
        (0b0011u64, 0b0101u64),
        (0b1100, 0b1010),
        (0b0110, 0b0110),
        (0b1011, 0b0101),
        (0b1011, 0b1101),
        (0b0100, 0b0100),
    ]
    .into_iter()
    .map(|(a, h)| InfoVector::new(a << 2, h, 4))
    .collect();

    println!("pair                     gshare  gselect    f0   f1   f2");
    for v in &pairs {
        println!(
            "(a={:04b}, h={:04b})       {:>4}  {:>7} {:>5} {:>4} {:>4}",
            v.addr(),
            v.hist(),
            IndexFunction::Gshare.index(v, n),
            IndexFunction::Gselect.index(v, n),
            skew_index(0, v.packed(), n),
            skew_index(1, v.packed(), n),
            skew_index(2, v.packed(), n),
        );
    }

    println!();
    for func in [IndexFunction::Gshare, IndexFunction::Gselect] {
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                let (v, w) = (&pairs[i], &pairs[j]);
                if func.index(v, n) == func.index(w, n) {
                    // Conflicting under `func` — count skewed banks where
                    // they also collide.
                    let shared = (0..3)
                        .filter(|&b| skew_index(b, v.packed(), n) == skew_index(b, w.packed(), n))
                        .count();
                    println!(
                        "{func}: {v} and {w} share an entry; \
                         they collide in {shared}/3 skewed banks — majority vote survives"
                    );
                }
            }
        }
    }
}
