//! Three-Cs aliasing analysis of one workload: classify aliasing into
//! compulsory / capacity / conflict across table sizes, and report the
//! substream and bias statistics that drive the paper's analytical model.
//!
//! ```text
//! cargo run --release --example aliasing_analysis [workload] [branches]
//! ```

use gskew::aliasing::bias::BiasStats;
use gskew::aliasing::distance::{DistanceHistogram, LastUseDistance};
use gskew::aliasing::substream::SubstreamStats;
use gskew::aliasing::three_c::ThreeCClassifier;
use gskew::core::index::IndexFunction;
use gskew::trace::prelude::*;

fn main() {
    let bench = std::env::args()
        .nth(1)
        .and_then(|s| IbsBenchmark::from_name(&s))
        .unwrap_or(IbsBenchmark::Gs);
    let len: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    let history = 4;

    println!("workload {bench}, {len} conditional branches, {history}-bit history\n");

    // --- three-Cs breakdown across table sizes -------------------------
    println!(
        "{:>8} {:>9} {:>11} {:>10} {:>10}",
        "entries", "total %", "compulsory %", "capacity %", "conflict %"
    );
    for n in [8u32, 10, 12, 14, 16] {
        let breakdown = ThreeCClassifier::new(n, history, IndexFunction::Gshare)
            .run(bench.spec().build().take_conditionals(len));
        println!(
            "{:>8} {:>9.3} {:>11.3} {:>10.3} {:>10.3}",
            1u64 << n,
            100.0 * breakdown.total,
            100.0 * breakdown.compulsory,
            100.0 * breakdown.capacity,
            100.0 * breakdown.conflict
        );
    }

    // --- substream and bias statistics ----------------------------------
    let substreams = SubstreamStats::new(history).run(bench.spec().build().take_conditionals(len));
    let bias = BiasStats::new(history).run(bench.spec().build().take_conditionals(len));
    println!(
        "\ndistinct addresses:        {}",
        substreams.distinct_addresses()
    );
    println!("distinct (addr, history):  {}", substreams.distinct_pairs());
    println!(
        "substream ratio:           {:.2}",
        substreams.substream_ratio()
    );
    println!(
        "compulsory aliasing:       {:.3}%",
        100.0 * substreams.compulsory_ratio()
    );
    println!("bias b (static taken):     {:.3}", bias.static_bias_taken());
    println!(
        "majority-agreement bound:  {:.2}%",
        100.0 * bias.majority_agreement()
    );

    // --- top interfering branch pairs ------------------------------------
    let offenders =
        gskew::aliasing::offenders::OffenderAnalysis::new(12, history, IndexFunction::Gshare)
            .run(bench.spec().build().take_conditionals(len));
    println!(
        "\nworst interfering branch pairs in a 4K gshare table \
         ({} aliasing events, {:.1}% self-aliasing):",
        offenders.total_aliasing(),
        100.0 * offenders.self_aliasing() as f64 / offenders.total_aliasing().max(1) as f64
    );
    for pair in offenders.top(8) {
        println!(
            "  {:#010x} <-> {:#010x}: {:>6} collisions",
            pair.branches.0, pair.branches.1, pair.occurrences
        );
    }
    println!(
        "  (top 20 pairs carry {:.1}% of all inter-branch aliasing)",
        100.0 * offenders.concentration(20)
    );

    // --- last-use distance profile --------------------------------------
    let mut cursor = gskew::aliasing::cursor::PairCursor::new(history);
    let mut distances = LastUseDistance::new();
    let mut histogram = DistanceHistogram::new();
    for record in bench.spec().build().take_conditionals(len) {
        if record.kind == BranchKind::Conditional {
            histogram.record(distances.observe(cursor.pair(record.pc)));
        }
        cursor.advance(&record);
    }
    println!("\nlast-use distance profile (hit ratio of an N-entry FA-LRU table):");
    for n in [256u64, 1024, 4096, 16384, 65536] {
        println!(
            "  N = {:>6}: {:>6.2}%",
            n,
            100.0 * histogram.hit_ratio_at(n)
        );
    }
}
