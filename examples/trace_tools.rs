//! Trace tooling tour: generate a workload, write it in all three file
//! formats, stream it back, filter it, and compare sizes — the round trip
//! a user would take to exchange traces with another simulator.
//!
//! ```text
//! cargo run --release --example trace_tools [branches]
//! ```

use gskew::trace::io::{read_text, write_binary, write_text, BinaryReader};
use gskew::trace::io2::{write_compact, CompactReader};
use gskew::trace::prelude::*;
use gskew::trace::record::Privilege;
use std::io;

fn main() -> io::Result<()> {
    let len: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);

    let records: Vec<BranchRecord> = IbsBenchmark::MpegPlay
        .spec()
        .build()
        .take_conditionals(len)
        .collect();
    let stats = TraceStats::collect(records.iter().copied());
    println!(
        "generated {} records ({} conditional, {} static sites, {:.1}% kernel)\n",
        stats.total_records,
        stats.dynamic_conditional,
        stats.static_conditional,
        100.0 * stats.kernel_ratio()
    );

    // --- all three formats, in memory ----------------------------------
    let mut flat = Vec::new();
    write_binary(&mut flat, records.iter().copied())?;
    let mut compact = Vec::new();
    write_compact(&mut compact, records.iter().copied())?;
    let mut text = Vec::new();
    write_text(&mut text, records.iter().copied())?;
    println!("format sizes for {} records:", records.len());
    println!(
        "  BPT1 (flat)    {:>9} bytes  ({:.2} B/record)",
        flat.len(),
        flat.len() as f64 / records.len() as f64
    );
    println!(
        "  BPT2 (compact) {:>9} bytes  ({:.2} B/record)",
        compact.len(),
        compact.len() as f64 / records.len() as f64
    );
    println!(
        "  text           {:>9} bytes  ({:.2} B/record)",
        text.len(),
        text.len() as f64 / records.len() as f64
    );

    // --- streaming readers return the identical stream ------------------
    let from_flat: Vec<BranchRecord> =
        BinaryReader::new(flat.as_slice())?.collect::<io::Result<_>>()?;
    let from_compact: Vec<BranchRecord> =
        CompactReader::new(compact.as_slice())?.collect::<io::Result<_>>()?;
    let from_text = read_text(text.as_slice())?;
    assert_eq!(from_flat, records);
    assert_eq!(from_compact, records);
    assert_eq!(from_text, records);
    println!("\nall three formats round-trip identically");

    // --- stream adapters -------------------------------------------------
    let user_only = records
        .iter()
        .copied()
        .privilege_only(Privilege::User)
        .count();
    let relocated: Vec<BranchRecord> = records
        .iter()
        .copied()
        .relocate(0x1000_0000)
        .take(1)
        .collect();
    println!(
        "user-only view: {user_only}/{} records; first pc relocated {:#x} -> {:#x}",
        records.len(),
        records[0].pc,
        relocated[0].pc
    );
    Ok(())
}
