//! The paper's analytical model in action: the figure 9/10 curves, the
//! `D ≈ N/10` crossover, and a figure 11-style extrapolation-vs-simulation
//! comparison on a synthetic workload.
//!
//! ```text
//! cargo run --release --example analytical_model
//! ```

use gskew::model::curves::destructive_aliasing_curve;
use gskew::model::extrapolate::Extrapolator;
use gskew::model::skew::crossover_distance;
use gskew::sim::engine;
use gskew::trace::prelude::*;

fn main() {
    // --- figures 9/10: polynomial vs linear growth ----------------------
    println!("destructive-aliasing probability (b = 0.5):");
    println!("{:>6} {:>10} {:>10}", "p", "P_dm", "P_sk");
    for point in destructive_aliasing_curve(1.0, 11) {
        println!(
            "{:>6.2} {:>10.5} {:>10.5}",
            point.p, point.direct_mapped, point.skewed
        );
    }

    // --- the D ~ N/10 crossover -----------------------------------------
    println!("\ncrossover last-use distance (3x(N/3) skewed vs N-entry DM):");
    for n in [12_288u64, 49_152, 196_608] {
        let d = crossover_distance(n);
        println!(
            "  N = {n:>7}: D* = {d:>6}  (D*/N = {:.3})",
            d as f64 / n as f64
        );
    }

    // --- figure 11: extrapolation vs simulation --------------------------
    let bench = IbsBenchmark::Verilog;
    let len = 300_000;
    println!("\nextrapolated vs measured gskew misprediction ({bench}, {len} branches):");
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>12}",
        "bank", "bias b", "unaliased %", "model %", "measured %"
    );
    for bank_log2 in [8u32, 10, 12] {
        let model = Extrapolator {
            bank_entries: 1 << bank_log2,
            history_bits: 4,
        }
        .run(
            bench.spec().build().take_conditionals(len),
            bench.spec().build().take_conditionals(len),
        );
        let mut sim =
            gskew::core::spec::parse_spec(&format!("gskew:n={bank_log2},h=4,ctr=1,update=total"))
                .expect("valid spec");
        let measured = engine::run(&mut sim, bench.spec().build().take_conditionals(len));
        println!(
            "{:>10} {:>8.3} {:>11.2}% {:>11.2}% {:>11.2}%",
            format!("3x{}", 1u64 << bank_log2),
            model.bias,
            100.0 * model.unaliased_rate,
            100.0 * model.extrapolated_rate,
            measured.mispredict_pct()
        );
    }
    println!("\n(the model slightly over-estimates: constructive aliasing is unmodeled)");
}
