//! Multiprogrammed aliasing stress: interleave several workloads the way
//! an operating system does and watch every predictor degrade — the
//! motivating scenario of the paper's introduction ("large workloads
//! consisting of multiple processes and operating-system code").
//!
//! ```text
//! cargo run --release --example multiprogramming [branches] [slice]
//! ```

use gskew::core::spec::parse_spec;
use gskew::sim::engine;
use gskew::trace::mix::MultiProgram;
use gskew::trace::prelude::*;

fn main() {
    let len: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400_000);
    let slice: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let mix = [IbsBenchmark::Groff, IbsBenchmark::Gs, IbsBenchmark::Verilog];

    println!(
        "mixing {} ({} conditional branches, {} records per slice)\n",
        mix.map(|b| b.name()).join(" + "),
        len,
        slice
    );
    println!(
        "{:<36} {:>10} {:>10} {:>12}",
        "predictor", "solo mean", "mixed", "degradation"
    );

    for spec in [
        "bimodal:n=14",
        "gshare:n=14,h=8",
        "gskew:n=12,h=8",
        "egskew:n=12,h=10",
        "shgskew:n=12,h=8",
        "agree:n=13,h=8,bias=12",
        "bimode:n=12,h=8,choice=12",
        "2bcgskew:n=12,h=10",
    ] {
        let solo_mean = mix
            .iter()
            .map(|&bench| {
                let mut p = parse_spec(spec).expect("valid spec");
                engine::run(&mut p, bench.spec().build().take_conditionals(len)).mispredict_pct()
            })
            .sum::<f64>()
            / mix.len() as f64;

        let mut predictor = parse_spec(spec).expect("valid spec");
        let mixed =
            MultiProgram::new(mix.iter().map(|b| b.spec()).collect(), slice).take_conditionals(len);
        let mixed_pct = engine::run(&mut predictor, mixed).mispredict_pct();

        println!(
            "{:<36} {:>9.2}% {:>9.2}% {:>+11.2}%",
            predictor.name(),
            solo_mean,
            mixed_pct,
            mixed_pct - solo_mean
        );
    }
    println!(
        "\nEvery design pays for the enlarged working set; the skewed and\n\
         population-splitting designs recover part of the conflict component,\n\
         but capacity aliasing (paper section 5.2) cannot be voted away."
    );
}
