//! Compare every predictor family in the crate across the six IBS-like
//! workloads at roughly comparable storage budgets (~24-32 Kbit).
//!
//! ```text
//! cargo run --release --example compare_predictors [branches-per-workload]
//! ```

use gskew::core::spec::parse_spec;
use gskew::sim::engine;
use gskew::sim::runner::parallel_map;
use gskew::trace::prelude::*;

fn main() {
    let len: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);

    // Spec, at a roughly equal storage point (see storage column).
    let specs = [
        "always-taken",
        "bimodal:n=14",
        "gselect:n=14,h=8",
        "gshare:n=14,h=8",
        "gskew:n=12,h=8,update=total",
        "gskew:n=12,h=8",
        "egskew:n=12,h=11",
        "mcfarling:n=12,h=10",
        "2bcgskew:n=12,h=12",
    ];

    println!("{len} conditional branches per workload\n");
    print!("{:<34} {:>9}", "predictor", "bits");
    for b in IbsBenchmark::all() {
        print!(" {:>9}", b.name());
    }
    println!(" {:>9}", "mean");

    for spec in specs {
        let results = parallel_map(IbsBenchmark::all().to_vec(), 6, |bench| {
            let mut p = parse_spec(spec).expect("spec is valid");
            engine::run(&mut p, bench.spec().build().take_conditionals(len)).mispredict_pct()
        });
        let p = parse_spec(spec).expect("spec is valid");
        print!("{:<34} {:>9}", p.name(), p.storage_bits());
        for r in &results {
            print!(" {:>8.2}%", r);
        }
        let mean = results.iter().sum::<f64>() / results.len() as f64;
        println!(" {:>8.2}%", mean);
    }
}
