//! Build a branch workload by hand with the program-model API — a tiny
//! interpreter-style loop with a correlated guard — and show how history
//! length changes what a predictor can learn.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use gskew::core::prelude::*;
use gskew::sim::engine;
use gskew::trace::prelude::*;

/// A hand-written CFG:
///
/// ```text
/// b0: loop branch (8 iterations)      -> b1 each iteration, b4 on exit
/// b1: 75%-taken data branch           -> b2 / b2
/// b2: parity of the previous branch   -> b3 / b3   (fully correlated)
/// b3: jump back to the loop head
/// b4: return to b0 (restart)
/// ```
fn build_program() -> Program {
    let branch = |pc, behavior, taken, fallthrough| Block {
        pc,
        terminator: Terminator::Branch {
            behavior,
            taken,
            fallthrough,
        },
    };
    Program::new(
        vec![
            branch(0x100, Behavior::Loop { trip: 8 }, 1, 4),
            branch(0x104, Behavior::Bias { taken_prob: 0.75 }, 2, 2),
            branch(
                0x108,
                Behavior::HistoryParity {
                    mask: 0b1,
                    depth: 1,
                    flip_prob: 0.0,
                },
                3,
                3,
            ),
            Block {
                pc: 0x10c,
                terminator: Terminator::Jump { target: 0 },
            },
            Block {
                pc: 0x110,
                terminator: Terminator::Jump { target: 0 },
            },
        ],
        0,
    )
    .expect("well-formed CFG")
}

fn main() -> Result<(), ConfigError> {
    let program = build_program();
    println!(
        "custom program: {} blocks, {} conditional sites\n",
        program.blocks().len(),
        program.static_conditionals()
    );

    println!("{:<26} {:>11}", "predictor", "mispredict");
    for h in [0u32, 1, 2, 4, 8] {
        let mut p = Gshare::new(10, h, CounterKind::TwoBit)?;
        let walker = Walker::new(program.clone(), 42);
        let result = engine::run(&mut p, walker.take_conditionals(200_000));
        println!("{:<26} {:>10.2}%", p.name(), result.mispredict_pct());
    }

    // The parity branch (b2) copies the previous outcome, so a single
    // history bit predicts it perfectly — hence the big drop from h=0 to
    // h=1. The loop exit would need the history register to span a whole
    // iteration count (4 records per iteration x 8 trips = 32 bits), so
    // it stays mispredicted, and the 75% data branch is irreducible
    // (~25% of its executions): exactly the history-length tradeoff the
    // paper's section 6 discusses.

    let mut gskew = Gskew::standard(10, 8)?;
    let walker = Walker::new(program, 42);
    let result = engine::run(&mut gskew, walker.take_conditionals(200_000));
    println!("{:<26} {:>10.2}%", gskew.name(), result.mispredict_pct());
    Ok(())
}
