//! Quickstart: build a skewed branch predictor, drive it with a synthetic
//! workload, and compare it against gshare at equal storage.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gskew::core::prelude::*;
use gskew::sim::engine;
use gskew::trace::prelude::*;

fn main() -> Result<(), ConfigError> {
    let workload = IbsBenchmark::Groff;
    let branches = 500_000;

    // The paper's centerpiece: 3 banks of 4K 2-bit counters, indexed by
    // the skewing functions f0..f2, majority-voted, partial update.
    let mut gskew = Gskew::builder()
        .banks(3)
        .bank_entries_log2(12)
        .history_bits(8)
        .counter(CounterKind::TwoBit)
        .update_policy(UpdatePolicy::Partial)
        .build()?; // 3 x 4096 = 12K entries, 24 Kbit

    // A gshare with MORE storage (16K entries, 32 Kbit) to beat.
    let mut gshare = Gshare::new(14, 8, CounterKind::TwoBit)?;

    println!("workload: {workload} ({branches} conditional branches)\n");
    for (name, predictor) in [
        (gskew.name(), &mut gskew as &mut dyn BranchPredictor),
        (gshare.name(), &mut gshare as &mut dyn BranchPredictor),
    ] {
        let trace = workload.spec().build().take_conditionals(branches);
        let result = engine::run(predictor, trace);
        println!(
            "{name:<34} storage {:>6} bits   mispredict {:>5.2}%",
            predictor.storage_bits(),
            result.mispredict_pct()
        );
    }

    println!("\nPer-bank votes for one lookup:");
    let pc = 0x0040_2000;
    let votes = gskew.votes(pc);
    for (bank, vote) in votes.iter().enumerate() {
        println!(
            "  bank {bank} (index {:>4}): {vote}",
            gskew.bank_index(bank, pc)
        );
    }
    println!("  majority: {}", gskew.predict(pc));
    Ok(())
}
