//! Drive the results store and campaign diffing directly: simulate two
//! predictors on one benchmark, persist every cell, reload the store in
//! a fresh handle, and print a cell-by-cell diff of the two predictors.
//!
//! ```sh
//! cargo run --release --example campaign
//! ```

use gskew::results::campaign::{diff, CampaignArtifact, ExperimentData, TableData};
use gskew::results::record::{CellKey, ResultRecord};
use gskew::results::store::ResultsStore;
use gskew::sim::engine::{self, NovelPolicy};
use gskew::sim::resume::ENGINE_VERSION;
use gskew::trace::prelude::*;
use gskew::trace::workload::DEFAULT_SEED_BASE;

fn main() -> Result<(), String> {
    let bench = IbsBenchmark::Gs;
    let len = 100_000;
    let specs = ["gshare:n=12,h=8", "gskew:n=12,h=8"];

    // 1. Simulate both predictors and persist one fingerprinted record
    //    per cell, exactly as `bpsim --save-results` would.
    let root = std::env::temp_dir().join(format!("gskew-example-campaign-{}", std::process::id()));
    let mut store = ResultsStore::open(&root)?;
    for spec in specs {
        let key = CellKey {
            bench: bench.name().to_string(),
            spec: spec.to_string(),
            len,
            seed: DEFAULT_SEED_BASE,
            policy: "count".to_string(),
        };
        let workload_params = format!("{:?}", bench.spec_seeded(DEFAULT_SEED_BASE));
        let fingerprint = key.fingerprint(&workload_params, ENGINE_VERSION);
        let mut predictor =
            gskew::core::spec::parse_spec(spec).map_err(|e| format!("{spec}: {e}"))?;
        let start = std::time::Instant::now();
        let result = engine::run_with(
            &mut predictor,
            bench
                .spec_seeded(DEFAULT_SEED_BASE)
                .build()
                .take_conditionals(len),
            NovelPolicy::Count,
        );
        store.put(&ResultRecord {
            experiment: "example".to_string(),
            key,
            fingerprint,
            engine_version: ENGINE_VERSION.to_string(),
            conditional: result.conditional,
            mispredicted: result.mispredicted,
            novel: result.novel,
            elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
        })?;
    }

    // 2. Reload through a brand-new handle: everything below reads only
    //    what survived the trip through disk.
    let reloaded = ResultsStore::open(&root)?;
    println!(
        "store at {} holds {} records ({} bytes)\n",
        root.display(),
        reloaded.len(),
        reloaded.total_bytes()
    );

    // 3. Shape each predictor's stored cells as a one-row artifact and
    //    diff them — the same machinery `bpsim campaign diff` runs on
    //    committed baselines.
    let records = reloaded.records();
    let artifact_for = |spec: &str| -> CampaignArtifact {
        let rows = records
            .iter()
            .filter(|r| r.key.spec == spec)
            .map(|r| vec![r.key.bench.clone(), format!("{:.2}", r.mispredict_pct())])
            .collect();
        CampaignArtifact {
            name: "example".to_string(),
            engine_version: ENGINE_VERSION.to_string(),
            seed: DEFAULT_SEED_BASE,
            experiments: vec![ExperimentData {
                id: "example".to_string(),
                title: format!("{spec} on {}", bench.name()),
                tables: vec![TableData {
                    title: "mispredict %".to_string(),
                    columns: vec!["benchmark".to_string(), "%".to_string()],
                    rows,
                }],
            }],
        }
    };
    let a = artifact_for(specs[0]);
    let b = artifact_for(specs[1]);
    for artifact in [&a, &b] {
        println!("{}:", artifact.experiments[0].title);
        for row in &artifact.experiments[0].tables[0].rows {
            println!("  {:<12} {}%", row[0], row[1]);
        }
    }
    let d = diff(&a, &b, 0.0);
    println!(
        "\ndiff (tolerance 0): {} cell(s) compared",
        d.cells_compared
    );
    if d.is_clean() {
        println!("no differences — both predictors mispredict identically");
    } else {
        print!("{}", d.report());
    }

    std::fs::remove_dir_all(&root).map_err(|e| e.to_string())?;
    Ok(())
}
