//! `gskew` binary — the same CLI as `bpsim`, exposed from the workspace
//! root so `cargo run --release -- <command>` works without `-p`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bpred_cli::cli_main()
}
