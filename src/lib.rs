//! # gskew — a reproduction of the ISCA'97 skewed branch predictor paper
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] ([`bpred_core`]) — the predictors: gskew, enhanced gskew,
//!   gshare, gselect, bimodal, tagged associative tables, hybrids.
//! * [`trace`] ([`bpred_trace`]) — branch traces and the synthetic
//!   IBS-like workload generator.
//! * [`aliasing`] ([`bpred_aliasing`]) — the three-Cs aliasing
//!   classification machinery.
//! * [`model`] ([`bpred_model`]) — the paper's analytical model.
//! * [`sim`] ([`bpred_sim`]) — the simulation engine and the experiment
//!   harness reproducing every table and figure.
//! * [`results`] ([`bpred_results`]) — the persistent results store
//!   (fingerprinted cells, resume) and campaign artifacts/diffing.
//!
//! See the repository `README.md` for a tour, `DESIGN.md` for the system
//! inventory, `EXPERIMENTS.md` for paper-vs-measured results, and
//! `docs/paper-map.md` for a section-by-section paper → code index.
//!
//! ## A three-minute tour
//!
//! Build any predictor, by constructor or spec string:
//!
//! ```
//! use gskew::core::prelude::*;
//!
//! let by_hand = Gskew::standard(12, 8)?;                 // 3x4K, h=8, partial
//! let by_spec = parse_spec("egskew:n=12,h=11")?;         // enhanced variant
//! assert_eq!(by_hand.storage_bits(), by_spec.storage_bits());
//! # Ok::<(), gskew::core::error::ConfigError>(())
//! ```
//!
//! Drive it over a synthetic IBS-like workload:
//!
//! ```
//! use gskew::core::prelude::*;
//! use gskew::sim::engine;
//! use gskew::trace::prelude::*;
//!
//! let mut p = Gskew::standard(10, 6)?;
//! let result = engine::run(
//!     &mut p,
//!     IbsBenchmark::Verilog.spec().build().take_conditionals(20_000),
//! );
//! assert!(result.mispredict_pct() < 25.0);
//! # Ok::<(), gskew::core::error::ConfigError>(())
//! ```
//!
//! Classify its aliasing into the paper's three Cs:
//!
//! ```
//! use gskew::aliasing::three_c::ThreeCClassifier;
//! use gskew::core::index::IndexFunction;
//! use gskew::trace::prelude::*;
//!
//! let breakdown = ThreeCClassifier::new(10, 4, IndexFunction::Gshare)
//!     .run(IbsBenchmark::Groff.spec().build().take_conditionals(20_000));
//! assert!(breakdown.total >= breakdown.fully_associative - 0.02);
//! ```
//!
//! And ask the analytical model where skewing pays:
//!
//! ```
//! use gskew::model::skew::crossover_distance;
//!
//! let n = 3 * 4096;
//! let d_star = crossover_distance(n as u64);
//! assert!((d_star as f64 / n as f64 - 0.105).abs() < 0.01); // ~ N/10
//! ```
//!
//! ```
//! use gskew::core::prelude::*;
//!
//! let mut p = Gskew::standard(12, 8)?;
//! let _ = p.predict(0x4000_0000);
//! p.update(0x4000_0000, Outcome::Taken);
//! # Ok::<(), gskew::core::error::ConfigError>(())
//! ```

#![forbid(unsafe_code)]

pub use bpred_aliasing as aliasing;
pub use bpred_core as core;
pub use bpred_model as model;
pub use bpred_results as results;
pub use bpred_sim as sim;
pub use bpred_trace as trace;
